//! A dedup-style pipeline built directly on the public API: three stages
//! connected by bounded transactional buffers, with the final stage's
//! "file write" happening inside its transaction (the situation that makes
//! dedup the paper's pathological TM case).
//!
//! The example runs the same pipeline under `Retry` and under transactional
//! condition variables, and prints how often each mechanism slept and woke.
//!
//! ```text
//! cargo run --release --example pipeline
//! ```

use std::sync::Arc;

use tm_repro::prelude::*;

const CHUNKS: u64 = 2_000;
const QUEUE_CAP: usize = 8;
const POISON: u64 = u64::MAX;

/// Toy "compression": a few rounds of mixing.
fn crunch(mut x: u64) -> u64 {
    for _ in 0..16 {
        x = x.rotate_left(13) ^ 0x9E37_79B9_7F4A_7C15;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    }
    x
}

fn run(mechanism: Mechanism) {
    let rt = RuntimeKind::EagerStm.build(TmConfig::default());
    let system = Arc::clone(rt.system());

    let stage1 = TmBoundedBuffer::new(&system, QUEUE_CAP);
    let stage2 = TmBoundedBuffer::new(&system, QUEUE_CAP);

    let start = std::time::Instant::now();
    let written = std::thread::scope(|scope| {
        // Producer: streams chunk ids.
        {
            let (rt, system, stage1) = (rt.clone(), Arc::clone(&system), Arc::clone(&stage1));
            scope.spawn(move || {
                let th = system.register_thread();
                for i in 1..=CHUNKS {
                    rt.atomically(&th, |tx| stage1.produce(mechanism, tx, i));
                }
                rt.atomically(&th, |tx| stage1.produce(mechanism, tx, POISON));
            });
        }
        // Compressor: transforms chunks.
        {
            let (rt, system) = (rt.clone(), Arc::clone(&system));
            let (stage1, stage2) = (Arc::clone(&stage1), Arc::clone(&stage2));
            scope.spawn(move || {
                let th = system.register_thread();
                loop {
                    let chunk = rt.atomically(&th, |tx| stage1.consume(mechanism, tx));
                    if chunk == POISON {
                        rt.atomically(&th, |tx| stage2.produce(mechanism, tx, POISON));
                        break;
                    }
                    let compressed = crunch(chunk);
                    rt.atomically(&th, |tx| stage2.produce(mechanism, tx, compressed));
                }
            });
        }
        // Writer: consumes and "writes" inside the transaction.
        let writer = {
            let (rt, system, stage2) = (rt.clone(), Arc::clone(&system), Arc::clone(&stage2));
            scope.spawn(move || {
                let th = system.register_thread();
                let mut written = 0u64;
                loop {
                    let done = rt.atomically(&th, |tx| {
                        let c = stage2.consume(mechanism, tx)?;
                        if c == POISON {
                            return Ok(true);
                        }
                        // Simulated I/O inside the critical section.
                        std::hint::black_box(crunch(c));
                        Ok(false)
                    });
                    if done {
                        break;
                    }
                    written += 1;
                }
                written
            })
        };
        writer.join().expect("writer")
    });
    let elapsed = start.elapsed();

    let stats = system.stats();
    println!(
        "{:<12} wrote {written} chunks in {:>7.3}s  (sleeps={}, wakeups={}, aborts={})",
        mechanism.label(),
        elapsed.as_secs_f64(),
        stats.sleeps,
        stats.wakeups,
        stats.sw_aborts,
    );
}

fn main() {
    println!("dedup-style 3-stage pipeline, {CHUNKS} chunks, queue capacity {QUEUE_CAP}\n");
    for mechanism in [
        Mechanism::Retry,
        Mechanism::Await,
        Mechanism::WaitPred,
        Mechanism::TmCondVar,
    ] {
        run(mechanism);
    }
}
