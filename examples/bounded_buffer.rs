//! The paper's running example: a multi-producer, multi-consumer bounded
//! buffer (Algorithm 2 / Figure 2.2), exercised with every condition-
//! synchronization mechanism.
//!
//! Two producers and two consumers move 10 000 elements through a 16-slot
//! buffer; the example prints the wall-clock time and the mechanism-level
//! statistics for each of the seven mechanisms on the eager STM, which is a
//! miniature version of one Figure 2.3 panel.
//!
//! ```text
//! cargo run --release --example bounded_buffer
//! ```

use tm_repro::prelude::*;
use tm_repro::workloads::pc::{run_pc, PcParams};

fn main() {
    const ITEMS: u64 = 10_000;
    println!("bounded buffer: 2 producers, 2 consumers, 16 slots, {ITEMS} items (eager STM)\n");
    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "mechanism", "seconds", "commits", "aborts", "sleeps", "wakeups"
    );

    for mechanism in Mechanism::ALL {
        let params = PcParams::new(2, 2, 16, ITEMS, mechanism);
        let result = run_pc(RuntimeKind::EagerStm, &params);
        assert!(result.checksum_ok, "element conservation must hold");
        println!(
            "{:<12} {:>10.4} {:>10} {:>10} {:>10} {:>10}",
            mechanism.label(),
            result.seconds(),
            result.stats.sw_commits + result.stats.hw_commits,
            result.stats.sw_aborts + result.stats.hw_aborts,
            result.stats.sleeps,
            result.stats.wakeups,
        );
    }

    println!("\nNote: Pthreads uses locks and condition variables (no transactions), so its");
    println!("transaction counters are zero; Restart never sleeps, it aborts and re-executes.");
}
