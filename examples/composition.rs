//! The composability argument of §2.2.1 / §2.3 (Algorithm 3), demonstrated.
//!
//! `Produce1Consume2` produces one element and then atomically consumes two.
//! With the paper's mechanisms the whole composition is one atomic action: if
//! the second consume cannot proceed, the *entire* transaction — including
//! the produce and the `inprogress` flag — is rolled back and the thread
//! sleeps, so no other thread ever observes the intermediate state.
//!
//! With transactional condition variables, the wait point *commits* the
//! transaction so far (that is what "breaking atomicity" means), and other
//! threads can observe `inprogress = true` and the partially-completed
//! produce while the waiter sleeps.
//!
//! The example runs both versions against an adversarial observer and reports
//! how often the intermediate state leaked.
//!
//! ```text
//! cargo run --release --example composition
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tm_repro::prelude::*;

const ROUNDS: u64 = 200;

fn run(mechanism: Mechanism) -> u64 {
    let rt = RuntimeKind::EagerStm.build(TmConfig::default());
    let system = Arc::clone(rt.system());

    let buffer = TmBoundedBuffer::new(&system, 8);
    // The `inprogress` flag of Algorithm 3: set at the start of the composed
    // transaction, cleared at its end.  Under a mechanism that preserves
    // atomicity it must never be visible as `1` to any other transaction.
    let inprogress = TmVar::<u64>::alloc(&system, 0);
    let leaks = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // The observer: repeatedly reads the flag transactionally.
        {
            let (rt, system) = (rt.clone(), Arc::clone(&system));
            let (inprogress, leaks, stop) =
                (inprogress.clone(), Arc::clone(&leaks), Arc::clone(&stop));
            scope.spawn(move || {
                let th = system.register_thread();
                while !stop.load(Ordering::Relaxed) {
                    let seen = rt.atomically(&th, |tx| inprogress.get(tx));
                    if seen != 0 {
                        leaks.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }

        // A helper producer that keeps the buffer from starving the composed
        // transaction forever (it is the "subsequent call to Produce" that
        // wakes the waiter in §2.2.1's scenario).
        {
            let (rt, system, buffer) = (rt.clone(), Arc::clone(&system), Arc::clone(&buffer));
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let th = system.register_thread();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    // Only top the buffer up when it has run dry, so the
                    // composed transaction's own produce can never block on a
                    // full buffer that nobody else drains.
                    rt.atomically(&th, |tx| {
                        if buffer.empty(tx)? {
                            // Use the mechanism-aware produce so TMCondVar
                            // waiters get their signal.
                            buffer.produce(mechanism, tx, 1_000 + i)?;
                        }
                        Ok(())
                    });
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }

        // The composed transaction, run repeatedly from an empty-ish buffer.
        let main = {
            let (rt, system, buffer) = (rt.clone(), Arc::clone(&system), Arc::clone(&buffer));
            let inprogress = inprogress.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let th = system.register_thread();
                for round in 0..ROUNDS {
                    rt.atomically(&th, |tx| {
                        inprogress.set(tx, 1)?;
                        buffer.produce(mechanism, tx, round)?;
                        let _a = buffer.consume(mechanism, tx)?;
                        let _b = buffer.consume(mechanism, tx)?;
                        inprogress.set(tx, 0)?;
                        Ok(())
                    });
                }
                stop.store(true, Ordering::Relaxed);
            })
        };
        main.join().expect("composed transaction thread");
    });

    leaks.load(Ordering::Relaxed)
}

fn main() {
    println!("Produce1Consume2 composition, {ROUNDS} rounds, adversarial observer\n");
    for mechanism in [Mechanism::Retry, Mechanism::Await, Mechanism::TmCondVar] {
        let leaks = run(mechanism);
        let verdict = if leaks == 0 {
            "atomicity preserved"
        } else {
            "intermediate state leaked (atomicity broken at the wait point)"
        };
        println!(
            "{:<12} observer saw inprogress=1 {leaks} times — {verdict}",
            mechanism.label()
        );
    }
    println!(
        "\nRetry/Await keep the composition atomic because a deschedule rolls the whole\n\
         transaction back; TMCondVar commits at the wait point, exposing partial state."
    );
}
