//! Timed waits: `retry_for`, `consume_timeout` and `pop_timeout`.
//!
//! A consumer that refuses to stall forever: it drains a bounded buffer
//! with per-operation deadlines, rides out a slow producer's stalls as
//! timeouts, and gives up cleanly once the producer is done.
//!
//! Run with:
//!
//! ```sh
//! cargo run --example timeouts
//! ```

use std::sync::Arc;
use std::time::Duration;

use tm_repro::prelude::*;

fn main() {
    let rt = RuntimeKind::EagerStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let buf = TmBoundedBuffer::new(&system, 4);

    // A deliberately slow producer: 12 items with a stall every 4.
    let (rt2, system2, buf2) = (rt.clone(), Arc::clone(&system), Arc::clone(&buf));
    let producer = std::thread::spawn(move || {
        let th = system2.register_thread();
        for item in 1..=12u64 {
            if item % 4 == 1 {
                std::thread::sleep(Duration::from_millis(40));
            }
            rt2.atomically(&th, |tx| buf2.produce(Mechanism::Retry, tx, item));
        }
    });

    // The lossy consumer: each wait is bounded by 10ms.  `None` means the
    // deadline fired — the paper's unbounded `retry` would have slept
    // through the stall instead.
    let th = system.register_thread();
    let mut got = Vec::new();
    let mut timeouts = 0u32;
    while got.len() < 12 {
        match rt.atomically(&th, |tx| {
            buf.consume_timeout(Mechanism::Retry, tx, Duration::from_millis(10))
        }) {
            Some(v) => got.push(v),
            None => timeouts += 1,
        }
    }
    producer.join().unwrap();
    println!("consumed {:?}", got);
    println!("deadlines fired {timeouts} times while the producer stalled");

    // The same idea on the unbounded queue: a deadline-bounded pop returns
    // `None` instead of blocking when upstream is empty.
    let q = TmQueue::new(&system);
    let miss = rt.atomically(&th, |tx| {
        q.pop_timeout(Mechanism::Await, tx, Duration::from_millis(5))
    });
    assert_eq!(miss, None);
    rt.atomically(&th, |tx| q.enqueue(tx, 99));
    let hit = rt.atomically(&th, |tx| {
        q.pop_timeout(Mechanism::Await, tx, Duration::from_millis(5))
    });
    assert_eq!(hit, Some(99));
    println!("queue: miss -> None, then hit -> Some(99)");

    let stats = system.stats();
    println!(
        "runtime counted {} timeout-ended sleeps, {} wake-ups, {} timer ticks",
        stats.wake_timeouts, stats.wakeups, stats.timer_ticks
    );
}
