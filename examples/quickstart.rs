//! Quickstart: condition synchronization between two transactions.
//!
//! A waiter transaction wants to withdraw more money than the account holds,
//! so it calls `retry()`; a writer transaction deposits enough, and its
//! commit wakes the waiter, which then completes atomically.  The same
//! program is run on all three runtimes (eager STM, lazy STM, simulated HTM)
//! to show that the mechanism is runtime-agnostic.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use tm_repro::prelude::*;

fn demo(kind: RuntimeKind) {
    println!("--- {} ---", kind.label());
    let rt = kind.build(TmConfig::default());
    let system = Arc::clone(rt.system());

    let balance = TmVar::<u64>::alloc(&system, 100);

    // Waiter: withdraw 150 once the balance allows it.
    let rt_w = rt.clone();
    let system_w = Arc::clone(&system);
    let balance_w = balance.clone();
    let waiter = std::thread::spawn(move || {
        let th = system_w.register_thread();
        let before = rt_w.atomically(&th, |tx| {
            let b = balance_w.get(tx)?;
            if b < 150 {
                // Roll everything back and sleep until a committed writer
                // changes something this transaction read.
                return retry(tx);
            }
            balance_w.set(tx, b - 150)?;
            Ok(b)
        });
        println!("waiter: withdrew 150 from a balance of {before}");
    });

    // Give the waiter time to publish itself and go to sleep (not required
    // for correctness — the double-check handles the race — just makes the
    // example's output deterministic-looking).
    std::thread::sleep(std::time::Duration::from_millis(50));

    // Writer: deposit 100.  The commit itself is ordinary; after it commits
    // the runtime evaluates the sleeping waiter's condition and wakes it.
    let th = system.register_thread();
    rt.atomically(&th, |tx| {
        let b = balance.get(tx)?;
        balance.set(tx, b + 100)
    });
    println!("writer: deposited 100");

    waiter.join().expect("waiter thread");
    println!("final balance: {}", balance.load_direct(&system));

    let stats = system.stats();
    println!(
        "stats: commits={} descheds={} sleeps={} wakeups={}",
        stats.sw_commits + stats.hw_commits,
        stats.descheds,
        stats.sleeps,
        stats.wakeups
    );
    println!();
}

fn main() {
    for kind in RuntimeKind::ALL {
        demo(kind);
    }
}
