//! Dataflow scheduling with condition synchronization: each node of a small
//! task graph stores its result in a transactional once-cell, and worker
//! threads *wait transactionally* for a node's inputs before computing it.
//!
//! This is the paper's framing of `Retry` as scheduling ("this transaction
//! should not have run yet") applied literally: a node's transaction runs,
//! discovers an input is missing, rolls back and sleeps; the commit that
//! fills the input wakes it.  No scheduler, no polling, no callbacks — the
//! dependency graph is enforced entirely by the condition-synchronization
//! mechanism, and the same code runs under `Retry`, `Await` or `WaitPred`.
//!
//! ```text
//! cargo run --release --example dataflow
//! ```

use std::sync::Arc;

use tm_repro::prelude::*;

/// A node: `value = op(inputs...) `, where inputs are earlier nodes' ids.
struct Node {
    name: &'static str,
    inputs: Vec<usize>,
    op: fn(&[u64]) -> u64,
}

fn graph() -> Vec<Node> {
    // A tiny diamond-with-tail DAG:
    //
    //   a = 7            b = 35
    //   c = a + b        d = a * 2
    //   e = c - d        f = e * e
    vec![
        Node {
            name: "a",
            inputs: vec![],
            op: |_| 7,
        },
        Node {
            name: "b",
            inputs: vec![],
            op: |_| 35,
        },
        Node {
            name: "c",
            inputs: vec![0, 1],
            op: |v| v[0] + v[1],
        },
        Node {
            name: "d",
            inputs: vec![0],
            op: |v| v[0] * 2,
        },
        Node {
            name: "e",
            inputs: vec![2, 3],
            op: |v| v[0] - v[1],
        },
        Node {
            name: "f",
            inputs: vec![4],
            op: |v| v[0] * v[0],
        },
    ]
}

fn run(mechanism: Mechanism) {
    let rt = RuntimeKind::EagerStm.build(TmConfig::default());
    let system = Arc::clone(rt.system());
    let nodes = graph();
    let cells: Arc<Vec<TmOnceCell>> =
        Arc::new((0..nodes.len()).map(|_| TmOnceCell::new(&system)).collect());

    // Hand each node to a worker thread in *reverse* order, so dependents
    // start (and go to sleep) before their inputs exist — the worst case for
    // a wait-free scheduler and the natural case for condition
    // synchronization.
    std::thread::scope(|scope| {
        for (id, node) in nodes.iter().enumerate().rev() {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let cells = Arc::clone(&cells);
            scope.spawn(move || {
                let th = system.register_thread();
                let result = rt.atomically(&th, |tx| {
                    // Gather inputs, waiting for any that are not ready yet.
                    let mut inputs = Vec::with_capacity(node.inputs.len());
                    for &dep in &node.inputs {
                        inputs.push(cells[dep].get_waiting(mechanism, tx)?);
                    }
                    let value = (node.op)(&inputs);
                    cells[id].try_set(tx, value)?;
                    Ok(value)
                });
                println!("  {} = {}", node.name, result);
            });
        }
    });

    let th = system.register_thread();
    let final_value = rt
        .atomically(&th, |tx| cells[5].try_get(tx))
        .expect("graph completed");
    let stats = system.stats();
    println!(
        "[{}] f = {final_value}  (descheds={}, sleeps={}, wakeups={})\n",
        mechanism.label(),
        stats.descheds,
        stats.sleeps,
        stats.wakeups
    );
    assert_eq!(final_value, ((7 + 35) - 14) * ((7 + 35) - 14));
}

fn main() {
    println!("dataflow graph evaluated purely through condition synchronization\n");
    for mechanism in [Mechanism::Retry, Mechanism::Await, Mechanism::WaitPred] {
        run(mechanism);
    }
}
