//! Heap-plane properties: word conservation under multi-thread churn with
//! cross-thread frees, carve integrity (no two threads are ever handed
//! overlapping blocks), exhaustion parity between the bare heap and the
//! arena front-end, and the memory-plane environment knobs.

use std::sync::{mpsc, Arc};

use tm_core::{Addr, TmConfig, TmSystem};

const THREADS: usize = 4;
const ITERS: usize = 3_000;
/// Blocks each worker keeps live before it starts freeing.
const LIVE_CAP: usize = 16;
/// Every n-th retired block is sent to the next worker, whose free then
/// lands on a block another thread's arena owns.
const DONATE_EVERY: usize = 5;

/// Fills every word of a block with a tag unique to (thread, iteration) and
/// verifies the tag right before the block is freed.  If the allocator ever
/// carved overlapping blocks for two threads, the later tag fill clobbers
/// the earlier block and the verification fails.
fn churn(arenas: bool) -> tm_core::StatsSnapshot {
    let system = TmSystem::new(
        TmConfig::default()
            .with_heap_words(1 << 16)
            .with_max_threads(8)
            .with_heap_arenas(arenas),
    );
    assert_eq!(system.heap.has_arenas(), arenas);
    let (mut senders, receivers): (Vec<_>, Vec<_>) = (0..THREADS)
        .map(|_| {
            let (tx, rx) = mpsc::channel::<(Addr, usize, u64)>();
            (Some(tx), rx)
        })
        .unzip();
    std::thread::scope(|s| {
        for (t, rx) in receivers.into_iter().enumerate() {
            // Ring topology: worker t donates to worker t+1.  Each channel
            // has exactly one sender, so `recv` disconnects once the donor
            // finishes and drops its end.
            let donate = senders[(t + 1) % THREADS].take().expect("one donor each");
            let system = Arc::clone(&system);
            s.spawn(move || {
                let th = system.register_thread();
                let verify_and_free = |addr: Addr, words: usize, tag: u64, donated: bool| {
                    for w in 0..words {
                        assert_eq!(
                            system.heap.load(Addr(addr.0 + w)),
                            tag,
                            "arenas={arenas}: word {w} of a {}block was clobbered — \
                             overlapping carve or double-carve",
                            if donated { "donated " } else { "" }
                        );
                    }
                    system.heap.dealloc_for(&th, addr, words);
                };
                let mut live: Vec<(Addr, usize, u64)> = Vec::new();
                let mut rng = 0x9E37_79B9_7F4A_7C15u64.wrapping_add(t as u64);
                for i in 0..ITERS {
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    // 1..=32 words: spans every arena size class, and 32 is
                    // the largest small block the arenas front.
                    let words = 1 + (rng >> 33) as usize % 32;
                    let tag = ((t as u64) << 48) | ((i as u64) << 8) | 0xA5;
                    let addr = system
                        .heap
                        .alloc_for(&th, words)
                        .expect("churn heap exhausted");
                    for w in 0..words {
                        system.heap.store(Addr(addr.0 + w), tag);
                    }
                    live.push((addr, words, tag));
                    if live.len() > LIVE_CAP {
                        let pick = ((rng >> 16) as usize) % live.len();
                        let (a, n, tag) = live.swap_remove(pick);
                        if i.is_multiple_of(DONATE_EVERY) {
                            donate.send((a, n, tag)).expect("receiver alive");
                        } else {
                            verify_and_free(a, n, tag, false);
                        }
                    }
                    while let Ok((a, n, tag)) = rx.try_recv() {
                        verify_and_free(a, n, tag, true);
                    }
                }
                for (a, n, tag) in live.drain(..) {
                    verify_and_free(a, n, tag, false);
                }
                // Drop our sender *before* blocking on the final drain, so
                // the ring of receivers cannot deadlock waiting on each
                // other's disconnects.
                drop(donate);
                while let Ok((a, n, tag)) = rx.recv() {
                    verify_and_free(a, n, tag, true);
                }
            });
        }
    });
    assert_eq!(
        system.heap.allocated_words(),
        0,
        "arenas={arenas}: churn leaked heap words"
    );
    system.stats()
}

#[test]
fn multi_thread_churn_conserves_every_word_without_arenas() {
    let stats = churn(false);
    assert_eq!(stats.heap_arena_allocs, 0, "bare heap served arena allocs");
    assert_eq!(stats.heap_global_refills, 0, "bare heap recorded refills");
    assert_eq!(
        stats.heap_remote_frees, 0,
        "bare heap recorded remote frees"
    );
}

#[test]
fn multi_thread_churn_conserves_every_word_with_arenas() {
    let stats = churn(true);
    assert!(
        stats.heap_arena_allocs > 0,
        "arenas never served an allocation"
    );
    assert!(
        stats.heap_global_refills > 0,
        "arenas never refilled from the global allocator"
    );
    assert!(
        stats.heap_remote_frees > 0,
        "ring donations never exercised the remote-free path"
    );
}

#[test]
fn exhaustion_is_identical_with_and_without_arenas() {
    // The arena front-end spills its caches and retries before reporting
    // out-of-memory, so the same request sequence must succeed and fail at
    // exactly the same points as the bare heap.
    let outcomes: Vec<Vec<bool>> = [false, true]
        .into_iter()
        .map(|arenas| {
            let system = TmSystem::new(
                TmConfig::default()
                    .with_heap_words(128)
                    .with_max_threads(4)
                    .with_heap_arenas(arenas),
            );
            let th = system.register_thread();
            let mut got = Vec::new();
            // A large block, an impossible one, a small (arena-fronted)
            // one while nearly full, then the same small one after the
            // large block is freed.
            let big = system.heap.alloc_for(&th, 100);
            got.push(big.is_some());
            got.push(system.heap.alloc_for(&th, 500).is_some());
            got.push(system.heap.alloc_for(&th, 32).is_some());
            if let Some(addr) = big {
                system.heap.dealloc_for(&th, addr, 100);
            }
            got.push(system.heap.alloc_for(&th, 32).is_some());
            got
        })
        .collect();
    assert_eq!(
        outcomes[0], outcomes[1],
        "exhaustion behavior diverged between bare heap and arenas"
    );
    assert_eq!(outcomes[0], vec![true, false, false, true]);
}

#[test]
fn memory_plane_env_knobs_parse() {
    // No other test in this binary reads TM_OREC_SHARDS or TM_HEAP_ARENAS
    // (the churn tests build their configs with explicit builders), so
    // mutating the process environment here cannot race them.
    std::env::set_var("TM_OREC_SHARDS", "8");
    std::env::set_var("TM_HEAP_ARENAS", "0");
    let c = TmConfig::default().with_mem_plane_env();
    assert_eq!(c.orec_shards, 8);
    assert!(!c.heap_arenas);
    let c = TmConfig::from_env();
    assert_eq!(c.orec_shards, 8);
    assert!(!c.heap_arenas);

    // Unset knobs leave the defaults untouched; junk is ignored.
    std::env::remove_var("TM_OREC_SHARDS");
    std::env::set_var("TM_HEAP_ARENAS", "banana");
    let d = TmConfig::default();
    let c = TmConfig::default().with_mem_plane_env();
    assert_eq!(c.orec_shards, d.orec_shards);
    assert_eq!(c.heap_arenas, d.heap_arenas);
    std::env::remove_var("TM_HEAP_ARENAS");
}
