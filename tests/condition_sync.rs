//! Integration tests for the condition-synchronization semantics themselves:
//! lost-wake-up freedom, selective wake-up, silent-store immunity and
//! multi-address Await, each exercised through the full runtime stack
//! (driver loop → rollback → deschedule → wakeWaiters), on all runtimes.

use std::sync::Arc;
use std::time::Duration;

use condsync::Mechanism;
use tm_repro::prelude::*;
use tm_repro::workloads::runtime::RuntimeKind;

/// Spawns `waiters` threads that each wait (with `mechanism`) until a shared
/// counter reaches `threshold`, while the main thread increments it one step
/// at a time.  Termination proves no wake-up was lost.
fn countdown(kind: RuntimeKind, mechanism: Mechanism, waiters: usize, threshold: u64) {
    let rt = kind.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let counter = TmCounter::new(&system, 0);

    std::thread::scope(|scope| {
        for _ in 0..waiters {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let counter = counter.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                let v = rt.atomically(&th, |tx| {
                    counter.wait_for_at_least(mechanism, tx, threshold)
                });
                assert!(v >= threshold);
            });
        }

        let th = system.register_thread();
        for _ in 0..threshold {
            // A tiny pause makes it likely the waiters are actually asleep,
            // covering the sleep-then-wake path rather than the double-check
            // fast path every time.
            std::thread::sleep(Duration::from_millis(1));
            rt.atomically(&th, |tx| counter.increment(tx).map(|_| ()));
        }
    });
    assert_eq!(counter.load_direct(&system), threshold);
}

#[test]
fn no_lost_wakeups_retry_all_runtimes() {
    for kind in RuntimeKind::ALL {
        countdown(kind, Mechanism::Retry, 3, 5);
    }
}

#[test]
fn no_lost_wakeups_await_all_runtimes() {
    for kind in RuntimeKind::ALL {
        countdown(kind, Mechanism::Await, 3, 5);
    }
}

#[test]
fn no_lost_wakeups_waitpred_all_runtimes() {
    for kind in RuntimeKind::ALL {
        countdown(kind, Mechanism::WaitPred, 3, 5);
    }
}

#[test]
fn no_lost_wakeups_retry_orig_on_stms() {
    countdown(RuntimeKind::EagerStm, Mechanism::RetryOrig, 2, 4);
    countdown(RuntimeKind::LazyStm, Mechanism::RetryOrig, 2, 4);
}

#[test]
fn restart_spins_to_completion() {
    countdown(RuntimeKind::EagerStm, Mechanism::Restart, 2, 3);
}

/// A predicate waiter must not wake for writes that do not establish its
/// predicate, while a Retry waiter wakes for any change to what it read.
#[test]
fn waitpred_is_more_selective_than_retry() {
    let rt = RuntimeKind::EagerStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let value = TmVar::<u64>::alloc(&system, 0);

    fn reached_ten(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
        Ok(tx.read(Addr(args[0] as usize))? >= 10)
    }

    let rt_w = rt.clone();
    let system_w = Arc::clone(&system);
    let value_w = value.clone();
    let waiter = std::thread::spawn(move || {
        let th = system_w.register_thread();
        rt_w.atomically(&th, |tx| {
            let v = value_w.get(tx)?;
            if v < 10 {
                return wait_pred(tx, reached_ten, &[value_w.addr().0 as u64]);
            }
            Ok(v)
        })
    });

    // Wait for the waiter to be registered.
    while system.waiters.is_empty() {
        std::thread::yield_now();
    }

    let th = system.register_thread();
    // Nine writes that do not establish the predicate: the waiter's condition
    // is evaluated but it must stay asleep.
    for i in 1..=9u64 {
        rt.atomically(&th, |tx| value.set(tx, i));
    }
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(
        system.waiters.len(),
        1,
        "WaitPred waiter woke for a write that did not establish its predicate"
    );
    assert_eq!(system.stats().wakeups, 0);

    // The tenth write establishes it.
    rt.atomically(&th, |tx| value.set(tx, 10));
    assert_eq!(waiter.join().unwrap(), 10);
    assert!(system.waiters.is_empty());
}

/// A silent store (same value re-written) must not wake a Retry waiter,
/// thanks to value-based validation.
#[test]
fn silent_stores_do_not_wake_retry_waiters() {
    let rt = RuntimeKind::EagerStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let flag = TmVar::<u64>::alloc(&system, 0);

    let rt_w = rt.clone();
    let system_w = Arc::clone(&system);
    let flag_w = flag.clone();
    let waiter = std::thread::spawn(move || {
        let th = system_w.register_thread();
        rt_w.atomically(&th, |tx| {
            let v = flag_w.get(tx)?;
            if v == 0 {
                return retry(tx);
            }
            Ok(v)
        })
    });

    while system.waiters.is_empty() {
        std::thread::yield_now();
    }
    std::thread::sleep(Duration::from_millis(10));

    let th = system.register_thread();
    // Silent store: writes the value that is already there.
    for _ in 0..3 {
        rt.atomically(&th, |tx| flag.set(tx, 0));
    }
    std::thread::sleep(Duration::from_millis(20));
    assert_eq!(system.stats().wakeups, 0, "silent store caused a wake-up");
    assert_eq!(system.waiters.len(), 1);

    rt.atomically(&th, |tx| flag.set(tx, 42));
    assert_eq!(waiter.join().unwrap(), 42);
}

/// Await with several addresses wakes when any one of them changes.
#[test]
fn await_on_multiple_addresses_wakes_on_any() {
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let a = TmVar::<u64>::alloc(&system, 0);
        let b = TmVar::<u64>::alloc(&system, 0);

        let rt_w = rt.clone();
        let system_w = Arc::clone(&system);
        let (a_w, b_w) = (a.clone(), b.clone());
        let waiter = std::thread::spawn(move || {
            let th = system_w.register_thread();
            rt_w.atomically(&th, |tx| {
                let x = a_w.get(tx)?;
                let y = b_w.get(tx)?;
                if x == 0 && y == 0 {
                    return await_addrs(tx, &[a_w.addr(), b_w.addr()]);
                }
                Ok(x + y)
            })
        });

        std::thread::sleep(Duration::from_millis(10));
        let th = system.register_thread();
        // Change only the *second* address.
        rt.atomically(&th, |tx| b.set(tx, 7));
        assert_eq!(waiter.join().unwrap(), 7, "{kind}");
    }
}

/// Multiple sleepers with different thresholds: each writer commit may wake a
/// different subset; everybody must eventually finish (Figure 2.1's protocol
/// repeated across a population of waiters).
#[test]
fn staggered_thresholds_all_waiters_finish() {
    let rt = RuntimeKind::EagerStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let counter = TmCounter::new(&system, 0);

    std::thread::scope(|scope| {
        for threshold in 1..=6u64 {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let counter = counter.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                let v = rt.atomically(&th, |tx| {
                    counter.wait_for_at_least(Mechanism::WaitPred, tx, threshold)
                });
                assert!(v >= threshold);
            });
        }
        let th = system.register_thread();
        for _ in 0..6 {
            std::thread::sleep(Duration::from_millis(2));
            rt.atomically(&th, |tx| counter.increment(tx).map(|_| ()));
        }
    });
    assert!(system.waiters.is_empty());
}

/// The TMCondVar baseline still synchronizes correctly (it just breaks
/// atomicity, which `composition.rs` covers).
#[test]
fn tmcondvar_signal_wakes_waiter() {
    let rt = RuntimeKind::EagerStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let ready = TmVar::<u64>::alloc(&system, 0);
    let cv = Arc::new(TmCondVar::new());

    let rt_w = rt.clone();
    let system_w = Arc::clone(&system);
    let ready_w = ready.clone();
    let cv_w = Arc::clone(&cv);
    let waiter = std::thread::spawn(move || {
        let th = system_w.register_thread();
        loop {
            let done = rt_w.atomically(&th, |tx| {
                if ready_w.get(tx)? != 0 {
                    return Ok(true);
                }
                cv_w.wait(tx)?;
                Ok(ready_w.get(tx)? != 0)
            });
            if done {
                return;
            }
        }
    });

    std::thread::sleep(Duration::from_millis(20));
    let th = system.register_thread();
    rt.atomically(&th, |tx| {
        ready.set(tx, 1)?;
        cv.signal_from(tx);
        Ok(())
    });
    waiter.join().expect("TMCondVar waiter");
}
