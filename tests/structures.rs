//! Integration tests for the auxiliary transactional data structures
//! (once-cell, latch, hash map) under real concurrency on all three
//! runtimes: these are the "library code" consumers the paper argues the
//! composable mechanisms enable.

use std::sync::Arc;
use std::time::Duration;

use condsync::Mechanism;
use tm_repro::prelude::*;
use tm_repro::workloads::runtime::RuntimeKind;

#[test]
fn once_cell_hand_off_wakes_the_reader() {
    for kind in RuntimeKind::ALL {
        for mechanism in [Mechanism::Retry, Mechanism::Await, Mechanism::WaitPred] {
            let rt = kind.build(TmConfig::small());
            let system = Arc::clone(rt.system());
            let cell = TmOnceCell::new(&system);

            let (rt_r, system_r, cell_r) = (rt.clone(), Arc::clone(&system), cell.clone());
            let reader = std::thread::spawn(move || {
                let th = system_r.register_thread();
                rt_r.atomically(&th, |tx| cell_r.get_waiting(mechanism, tx))
            });

            std::thread::sleep(Duration::from_millis(5));
            let th = system.register_thread();
            let was_first = rt.atomically(&th, |tx| cell.try_set(tx, 4242));
            assert!(was_first, "{kind} {mechanism}");
            assert_eq!(reader.join().unwrap(), 4242, "{kind} {mechanism}");
        }
    }
}

#[test]
fn once_cell_racing_writers_agree_on_one_value() {
    let rt = RuntimeKind::EagerStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let cell = TmOnceCell::new(&system);

    let winners = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..4u64 {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let cell = cell.clone();
            handles.push(scope.spawn(move || {
                let th = system.register_thread();
                rt.atomically(&th, |tx| cell.try_set(tx, 100 + tid))
            }));
        }
        handles
            .into_iter()
            .filter(|_| true)
            .map(|h| h.join().expect("writer"))
            .filter(|&won| won)
            .count()
    });
    assert_eq!(winners, 1, "exactly one writer may win a once-cell");

    let th = system.register_thread();
    let v = rt
        .atomically(&th, |tx| cell.try_get(tx))
        .expect("value present");
    assert!((100..104).contains(&v));
}

#[test]
fn latch_releases_waiters_once_all_events_arrive() {
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let latch = TmLatch::new(&system, 4);
        let results = TmCounter::new(&system, 0);

        std::thread::scope(|scope| {
            // Two waiters using different mechanisms.
            for mechanism in [Mechanism::Retry, Mechanism::WaitPred] {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let latch = latch.clone();
                let results = results.clone();
                scope.spawn(move || {
                    let th = system.register_thread();
                    rt.atomically(&th, |tx| {
                        latch.wait_open(mechanism, tx)?;
                        results.increment(tx).map(|_| ())
                    });
                });
            }
            // Four workers count down, one each.
            for _ in 0..4 {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let latch = latch.clone();
                scope.spawn(move || {
                    let th = system.register_thread();
                    std::thread::sleep(Duration::from_millis(2));
                    rt.atomically(&th, |tx| latch.count_down(tx).map(|_| ()));
                });
            }
        });

        assert_eq!(latch.remaining_direct(&system), 0, "{kind}");
        assert_eq!(
            results.load_direct(&system),
            2,
            "{kind}: both waiters ran after the latch opened"
        );
    }
}

#[test]
fn hash_map_concurrent_inserts_are_all_visible() {
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::default().with_heap_words(1 << 14));
        let system = Arc::clone(rt.system());
        let map = TmHashMap::new(&system, 256);
        const PER_THREAD: u64 = 40;
        const THREADS: u64 = 4;

        std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let map = map.clone();
                scope.spawn(move || {
                    let th = system.register_thread();
                    for i in 0..PER_THREAD {
                        let key = tid * PER_THREAD + i;
                        rt.atomically(&th, |tx| map.insert(tx, key, key * 10).map(|_| ()));
                    }
                });
            }
        });

        assert_eq!(map.len_direct(&system), THREADS * PER_THREAD, "{kind}");
        let th = system.register_thread();
        for key in 0..THREADS * PER_THREAD {
            let got = rt.atomically(&th, |tx| map.get(tx, key));
            assert_eq!(got, Some(key * 10), "{kind}: key {key}");
        }
    }
}

#[test]
fn ordered_map_range_composes_with_map_updates() {
    // Store + index updated in one transaction: a concurrent range scan
    // (declared read-only) must never observe a key in one structure but
    // not the other, and the scan result is always sorted and in-bounds.
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::default().with_heap_words(1 << 14));
        let system = Arc::clone(rt.system());
        let store = TmHashMap::<u64, u64>::with_layout(&system, 128, MapLayout::StripeAligned);
        let index = TmOrderedMap::<u64, u64>::new(&system);
        let th = system.register_thread();

        for key in (0..40u64).rev() {
            rt.atomically(&th, |tx| {
                store.insert(tx, key, key + 100)?;
                index.insert(tx, key, key + 100)?;
                Ok(())
            });
        }
        let window = rt.atomically_read(&th, |tx| index.range(tx, 10, 19));
        assert_eq!(window.len(), 10, "{kind}");
        assert!(
            window.windows(2).all(|w| w[0].0 < w[1].0),
            "{kind}: scan out of order"
        );
        for &(k, v) in &window {
            assert_eq!(v, k + 100, "{kind}");
            let stored = rt.atomically_read(&th, |tx| store.get(tx, k));
            assert_eq!(stored, Some(v), "{kind}: store and index disagree");
        }

        rt.atomically(&th, |tx| {
            store.remove(tx, 15)?;
            index.remove(tx, 15)?;
            Ok(())
        });
        let after = rt.atomically_read(&th, |tx| index.range(tx, 10, 19));
        assert_eq!(after.len(), 9, "{kind}");
        assert!(after.iter().all(|&(k, _)| k != 15), "{kind}");
        assert_eq!(store.dump_direct(&system), index.dump_direct(&system));
    }
}

#[test]
fn hash_map_get_waiting_sees_a_later_insert() {
    for mechanism in [Mechanism::Retry, Mechanism::Await, Mechanism::WaitPred] {
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let map = TmHashMap::new(&system, 32);

        let (rt_r, system_r, map_r) = (rt.clone(), Arc::clone(&system), map.clone());
        let reader = std::thread::spawn(move || {
            let th = system_r.register_thread();
            rt_r.atomically(&th, |tx| map_r.get_waiting(mechanism, tx, 77))
        });

        std::thread::sleep(Duration::from_millis(5));
        let th = system.register_thread();
        // An unrelated insertion may wake the reader (it watches the map's
        // size), but the reader must keep waiting until key 77 appears.
        rt.atomically(&th, |tx| map.insert(tx, 5, 50).map(|_| ()));
        std::thread::sleep(Duration::from_millis(5));
        rt.atomically(&th, |tx| map.insert(tx, 77, 770).map(|_| ()));

        assert_eq!(reader.join().unwrap(), 770, "{mechanism}");
    }
}

#[test]
fn dataflow_pipeline_of_once_cells_composes_across_threads() {
    // stage1 -> cell_a -> stage2 -> cell_b -> main, a miniature dataflow DAG
    // built only from the public API.
    let rt = RuntimeKind::LazyStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let cell_a = TmOnceCell::new(&system);
    let cell_b = TmOnceCell::new(&system);

    std::thread::scope(|scope| {
        {
            let (rt, system, cell_a) = (rt.clone(), Arc::clone(&system), cell_a.clone());
            scope.spawn(move || {
                let th = system.register_thread();
                std::thread::sleep(Duration::from_millis(3));
                rt.atomically(&th, |tx| cell_a.try_set(tx, 21).map(|_| ()));
            });
        }
        {
            let (rt, system) = (rt.clone(), Arc::clone(&system));
            let (cell_a, cell_b) = (cell_a.clone(), cell_b.clone());
            scope.spawn(move || {
                let th = system.register_thread();
                rt.atomically(&th, |tx| {
                    let upstream = cell_a.get_waiting(Mechanism::Retry, tx)?;
                    cell_b.try_set(tx, upstream * 2).map(|_| ())
                });
            });
        }
        let th = system.register_thread();
        let result = rt.atomically(&th, |tx| cell_b.get_waiting(Mechanism::WaitPred, tx));
        assert_eq!(result, 42);
    });
}
