//! Timed and cancellable waiting, end to end on all three runtimes.
//!
//! Covers the timeout state machine's three exits and its races:
//!
//! * deterministic expiry — no writer ever establishes the condition, so
//!   the wait *must* end as `WakeReason::Timeout`, delivered exactly once,
//! * wake-beats-deadline — a writer establishes the condition well before a
//!   generous deadline, so no timeout may be recorded,
//! * cancel-vs-commit — a canceller and a producer race; whatever happens,
//!   the sleeper is woken exactly once and the outcome is consistent with
//!   the single recorded `WakeReason`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use condsync::Mechanism;
use tm_core::TmConfig;
use tm_repro::prelude::*;
use tm_sync::BarrierWait;

const MECHS: [Mechanism; 3] = [Mechanism::Retry, Mechanism::Await, Mechanism::WaitPred];

#[test]
fn consume_timeout_expires_deterministically() {
    for kind in RuntimeKind::ALL {
        for mechanism in MECHS {
            let rt = kind.build(TmConfig::small());
            let system = Arc::clone(rt.system());
            let buf = TmBoundedBuffer::new(&system, 4);
            let th = system.register_thread();

            let start = Instant::now();
            let got = rt.atomically(&th, |tx| {
                buf.consume_timeout(mechanism, tx, Duration::from_millis(30))
            });
            assert_eq!(got, None, "{kind}/{mechanism}: nothing was ever produced");
            assert!(
                start.elapsed() >= Duration::from_millis(25),
                "{kind}/{mechanism}: must actually wait out the deadline"
            );

            let stats = system.stats();
            assert_eq!(stats.wake_timeouts, 1, "{kind}/{mechanism}");
            assert_eq!(stats.sleeps, 1, "{kind}/{mechanism}: exactly one sleep");
            assert_eq!(
                stats.wakeups, 0,
                "{kind}/{mechanism}: nobody may claim a condition-based wake"
            );
            assert!(
                system.waiters.is_empty() && system.timers.idle(),
                "{kind}/{mechanism}: no residue in the registries"
            );
        }
    }
}

#[test]
fn wake_beats_deadline() {
    for kind in RuntimeKind::ALL {
        for mechanism in MECHS {
            let rt = kind.build(TmConfig::small());
            let system = Arc::clone(rt.system());
            let buf = TmBoundedBuffer::new(&system, 4);

            let (rt2, system2, buf2) = (rt.clone(), Arc::clone(&system), Arc::clone(&buf));
            let consumer = std::thread::spawn(move || {
                let th = system2.register_thread();
                rt2.atomically(&th, |tx| {
                    buf2.consume_timeout(mechanism, tx, Duration::from_secs(30))
                })
            });

            // Wait for the consumer to publish its waiter, then produce.
            while system.waiters.is_empty() {
                std::thread::yield_now();
            }
            let th = system.register_thread();
            rt.atomically(&th, |tx| buf.produce(mechanism, tx, 7));

            assert_eq!(
                consumer.join().unwrap(),
                Some(7),
                "{kind}/{mechanism}: the produced value must arrive"
            );
            let stats = system.stats();
            assert_eq!(
                stats.wake_timeouts, 0,
                "{kind}/{mechanism}: the wake clearly beat the 30s deadline"
            );
            assert!(
                system.timers.idle(),
                "{kind}/{mechanism}: the woken sleeper must disarm its timer"
            );
        }
    }
}

#[test]
fn cancelled_consumer_gives_up() {
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let buf = TmBoundedBuffer::new(&system, 4);

        let (rt2, system2, buf2) = (rt.clone(), Arc::clone(&system), Arc::clone(&buf));
        let consumer = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                buf2.consume_timeout(Mechanism::Retry, tx, Duration::from_secs(30))
            })
        });

        while system.waiters.is_empty() {
            std::thread::yield_now();
        }
        // Find the published waiter and cancel it; retry until the claim
        // lands on the sleep (the waiter may still be in its double-check).
        let mut cancelled = false;
        for _ in 0..1000 {
            let Some(w) = system.waiters.snapshot().into_iter().next() else {
                break;
            };
            if condsync::cancel(&w) {
                cancelled = true;
                break;
            }
            std::thread::yield_now();
        }
        assert!(cancelled, "{kind}: the sleeping consumer must be claimable");
        assert_eq!(
            consumer.join().unwrap(),
            None,
            "{kind}: a cancelled wait reports no result"
        );
        assert_eq!(system.stats().wake_cancels, 1, "{kind}");
        assert!(system.waiters.is_empty() && system.timers.idle(), "{kind}");
    }
}

#[test]
fn cancel_vs_commit_race_wakes_exactly_once() {
    // A canceller and a producer race for the sleeping consumer.  Whoever
    // wins, the consumer must return exactly once, and the outcome must be
    // consistent: a produced-and-consumed element, or a cancellation with
    // the element still in (or never entering) the buffer.
    // Scaled by the `TM_STRESS_ITERS` multiplier (the scheduled CI `stress`
    // job sets it to 10 to soak this race without slowing the PR gate).
    let rounds = 10 * tm_repro::workloads::stress_iters();
    for kind in RuntimeKind::ALL {
        for round in 0..rounds {
            let rt = kind.build(TmConfig::small());
            let system = Arc::clone(rt.system());
            let buf = TmBoundedBuffer::new(&system, 4);

            let (rt2, system2, buf2) = (rt.clone(), Arc::clone(&system), Arc::clone(&buf));
            let consumer = std::thread::spawn(move || {
                let th = system2.register_thread();
                rt2.atomically(&th, |tx| {
                    buf2.consume_timeout(Mechanism::Retry, tx, Duration::from_secs(30))
                })
            });
            while system.waiters.is_empty() {
                std::thread::yield_now();
            }

            let system3 = Arc::clone(&system);
            let tid = system.waiters.snapshot()[0].thread;
            let canceller = std::thread::spawn(move || condsync::cancel_thread(&system3, tid));
            let (rt4, system4, buf4) = (rt.clone(), Arc::clone(&system), Arc::clone(&buf));
            let producer = std::thread::spawn(move || {
                let th = system4.register_thread();
                rt4.atomically(&th, |tx| buf4.produce(Mechanism::Retry, tx, 9));
            });

            let got = consumer.join().unwrap();
            canceller.join().unwrap();
            producer.join().unwrap();

            let left = buf.len_direct(&system);
            match got {
                // Consumer got the element: buffer drained again.
                Some(v) => {
                    assert_eq!(v, 9, "{kind} round {round}");
                    assert_eq!(left, 0, "{kind} round {round}");
                }
                // Cancelled before consuming: the produced element stays.
                None => assert_eq!(left, 1, "{kind} round {round}"),
            }
            let stats = system.stats();
            assert!(
                stats.wake_cancels <= 1,
                "{kind} round {round}: at most one cancel can land"
            );
            assert!(
                system.waiters.is_empty() && system.timers.idle(),
                "{kind} round {round}"
            );
        }
    }
}

#[test]
fn queue_pop_timeout_and_latch_wait_for() {
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let th = system.register_thread();

        let q = TmQueue::new(&system);
        let got = rt.atomically(&th, |tx| {
            q.pop_timeout(Mechanism::Await, tx, Duration::from_millis(20))
        });
        assert_eq!(got, None, "{kind}: empty queue times out");
        rt.atomically(&th, |tx| q.enqueue(tx, 5));
        let got = rt.atomically(&th, |tx| {
            q.pop_timeout(Mechanism::Await, tx, Duration::from_millis(20))
        });
        assert_eq!(got, Some(5), "{kind}: element arrives without waiting");

        let latch = TmLatch::new(&system, 1);
        let opened = rt.atomically(&th, |tx| {
            latch.wait_for(Mechanism::WaitPred, tx, Duration::from_millis(20))
        });
        assert!(!opened, "{kind}: closed latch times out");
        rt.atomically(&th, |tx| latch.count_down(tx).map(|_| ()));
        let opened = rt.atomically(&th, |tx| {
            latch.wait_for(Mechanism::WaitPred, tx, Duration::from_millis(20))
        });
        assert!(opened, "{kind}: open latch passes");
        assert!(system.stats().wake_timeouts >= 2, "{kind}");
    }
}

#[test]
fn watchdogged_barrier_times_out_without_stragglers() {
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let th = system.register_thread();

        // Two parties, only one arrives: the watchdog fires.
        let barrier = TmBarrier::new(&system, 2);
        let outcome = barrier.wait_for(&rt, &th, Mechanism::Retry, Duration::from_millis(30));
        assert_eq!(outcome, BarrierWait::TimedOut, "{kind}");

        // The timed-out arrival still counts: a late second arriver releases
        // the phase immediately.
        let outcome = barrier.wait_for(&rt, &th, Mechanism::Retry, Duration::from_millis(30));
        assert_eq!(outcome, BarrierWait::Released, "{kind}");
        assert_eq!(barrier.generation_direct(&system), 1, "{kind}");

        // A fully attended phase passes both ways.
        let (rt2, system2) = (rt.clone(), Arc::clone(&system));
        let b2 = barrier.clone();
        let peer = std::thread::spawn(move || {
            let th = system2.register_thread();
            b2.wait_for(&rt2, &th, Mechanism::Retry, Duration::from_secs(30))
        });
        // Let the peer arrive first (usually), then complete the phase.
        std::thread::sleep(Duration::from_millis(10));
        let mine = barrier.wait_for(&rt, &th, Mechanism::Retry, Duration::from_secs(30));
        let theirs = peer.join().unwrap();
        let outcomes = [mine, theirs];
        assert!(
            outcomes.contains(&BarrierWait::Released),
            "{kind}: someone must release"
        );
        assert!(
            !outcomes.contains(&BarrierWait::TimedOut),
            "{kind}: nobody may time out in an attended phase"
        );
    }
}

#[test]
fn timeout_semantics_agree_across_runtimes() {
    // WakeReason parity: the same timed scenario must produce the same
    // reason-level statistics on every runtime.
    #[derive(Debug, PartialEq, Eq)]
    struct Observed {
        expired: Option<u64>,
        timeouts_after_expiry: u64,
        woken: Option<u64>,
        timeouts_after_wake: u64,
    }

    let observe = |kind: RuntimeKind| -> Observed {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let buf = TmBoundedBuffer::new(&system, 4);
        let th = system.register_thread();

        // Phase 1: guaranteed expiry.
        let expired = rt.atomically(&th, |tx| {
            buf.consume_timeout(Mechanism::Retry, tx, Duration::from_millis(25))
        });
        let timeouts_after_expiry = system.stats().wake_timeouts;

        // Phase 2: guaranteed wake.
        let (rt2, system2, buf2) = (rt.clone(), Arc::clone(&system), Arc::clone(&buf));
        let consumer = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                buf2.consume_timeout(Mechanism::Retry, tx, Duration::from_secs(30))
            })
        });
        while system.waiters.is_empty() {
            std::thread::yield_now();
        }
        rt.atomically(&th, |tx| buf.produce(Mechanism::Retry, tx, 3));
        let woken = consumer.join().unwrap();
        Observed {
            expired,
            timeouts_after_expiry,
            woken,
            timeouts_after_wake: system.stats().wake_timeouts,
        }
    };

    let golden = Observed {
        expired: None,
        timeouts_after_expiry: 1,
        woken: Some(3),
        timeouts_after_wake: 1,
    };
    for kind in RuntimeKind::ALL {
        assert_eq!(observe(kind), golden, "{kind}");
    }
}
