//! HTM-specific integration tests: the architectural properties the paper's
//! design depends on (capacity limits, serial fallback, software-mode
//! descheduling) must be visible in the simulator's behaviour, and condition
//! synchronization must keep working across all of them.

use std::sync::Arc;
use std::time::Duration;

use condsync::Mechanism;
use tm_repro::prelude::*;
use tm_repro::workloads::runtime::RuntimeKind;

use tm_repro::core::HtmConfig;

fn htm(config: TmConfig) -> (AnyRuntime, Arc<TmSystem>) {
    let rt = RuntimeKind::Htm.build(config);
    let system = Arc::clone(rt.system());
    (rt, system)
}

#[test]
fn small_transactions_commit_in_hardware() {
    let (rt, system) = htm(TmConfig::small());
    let v = TmVar::<u64>::alloc(&system, 0);
    let th = system.register_thread();
    for i in 1..=50u64 {
        rt.atomically(&th, |tx| v.set(tx, i));
    }
    let stats = system.stats();
    assert!(
        stats.hw_commits >= 50,
        "expected hardware commits, got {stats:?}"
    );
    assert_eq!(v.load_direct(&system), 50);
}

#[test]
fn capacity_overflow_falls_back_to_serial_and_still_commits() {
    // Write far more distinct lines than the configured write capacity: every
    // hardware attempt must abort on capacity and the fallback must finish
    // the job.
    let config = TmConfig::default()
        .with_heap_words(1 << 14)
        .with_htm(HtmConfig {
            max_read_lines: 64,
            max_write_lines: 4,
            max_attempts: 2,
        });
    let (rt, system) = htm(config);
    let arr = TmArray::<u64>::alloc(&system, 512, 0);
    let th = system.register_thread();

    rt.atomically(&th, |tx| {
        for i in 0..512 {
            arr.set(tx, i, i as u64 + 1)?;
        }
        Ok(())
    });

    for i in 0..512 {
        assert_eq!(arr.load_direct(&system, i), i as u64 + 1);
    }
    let stats = system.stats();
    assert!(stats.hw_aborts > 0, "capacity aborts expected: {stats:?}");
    assert!(
        stats.serial_acquires + stats.sw_commits > 0,
        "the overflowing transaction must have finished outside hardware: {stats:?}"
    );
}

#[test]
fn descheduling_from_hardware_switches_to_software_mode() {
    // A waiter that must sleep cannot do so inside a hardware transaction
    // (no escape actions); the runtime re-executes it in a software mode.
    let (rt, system) = htm(TmConfig::small());
    let flag = TmVar::<u64>::alloc(&system, 0);

    let (rt_w, system_w, flag_w) = (rt.clone(), Arc::clone(&system), flag.clone());
    let waiter = std::thread::spawn(move || {
        let th = system_w.register_thread();
        rt_w.atomically(&th, |tx| {
            let v = flag_w.get(tx)?;
            if v == 0 {
                return retry(tx);
            }
            Ok(v)
        })
    });

    std::thread::sleep(Duration::from_millis(20));
    let th = system.register_thread();
    rt.atomically(&th, |tx| flag.set(tx, 3));
    assert_eq!(waiter.join().unwrap(), 3);

    let stats = system.stats();
    assert!(
        stats.descheds >= 1,
        "the waiter must have descheduled: {stats:?}"
    );
    // The writer that woke it ran in hardware; the waiter's sleeping attempt
    // could not have.
    assert!(stats.hw_commits >= 1);
}

#[test]
fn explicit_abort_codes_reach_the_restart_baseline() {
    let (rt, system) = htm(TmConfig::small());
    let gate = TmVar::<u64>::alloc(&system, 0);
    let th = system.register_thread();

    let mut attempts = 0u32;
    let got = rt.atomically(&th, |tx| {
        attempts += 1;
        let v = gate.get(tx)?;
        if v == 0 && attempts < 4 {
            // xabort-style explicit abort (the Restart baseline's code path).
            return restart(tx);
        }
        gate.set(tx, 9)?;
        Ok(attempts)
    });
    assert!(got >= 4);
    assert_eq!(gate.load_direct(&system), 9);
    assert!(system.stats().explicit_aborts >= 3);
}

#[test]
fn wake_scan_conflicts_do_not_lose_elements() {
    // The paper notes TSX aborts read-only wakeWaiters scans that collide
    // with writers; correctness must not depend on those scans succeeding on
    // the first try.  A tiny buffer with several threads maximises collisions
    // between scans, producers and consumers.
    use tm_repro::workloads::pc::{run_pc, PcParams};
    let params = PcParams::new(2, 2, 2, 256, Mechanism::WaitPred);
    let result = run_pc(RuntimeKind::Htm, &params);
    assert!(result.checksum_ok);
    assert!(result.stats.hw_commits > 0);
}

#[test]
fn serial_fallback_threshold_is_respected() {
    // With max_attempts = 1 every conflicting transaction goes serial after a
    // single speculative failure; the counter must still end exactly right.
    let config = TmConfig::small().with_htm(HtmConfig {
        max_read_lines: 512,
        max_write_lines: 64,
        max_attempts: 1,
    });
    let (rt, system) = htm(config);
    let counter = TmCounter::new(&system, 0);
    const THREADS: usize = 4;
    const PER_THREAD: u64 = 100;

    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let counter = counter.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                for _ in 0..PER_THREAD {
                    rt.atomically(&th, |tx| counter.increment(tx).map(|_| ()));
                }
            });
        }
    });
    assert_eq!(counter.load_direct(&system), THREADS as u64 * PER_THREAD);
}
