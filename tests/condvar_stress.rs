//! Hang-free TMCondVar: the regression soak for the signal-before-commit
//! window.
//!
//! The `TMCondVar` baseline commits the in-flight transaction at the wait
//! point, so on the HTM and hybrid runtimes a signaler's generation bump and
//! its data commit are separate events.  A waiter that sampled its ticket
//! after the signal but checked its predicate against pre-commit state used
//! to sleep forever — a roughly 1-in-120 `producer_consumer` hang before the
//! watchdog in `condsync::condvar` bounded the window.
//!
//! These tests soak exactly that workload under a hard wall-clock deadline:
//! each trial runs in its own thread and must report back within
//! [`TRIAL_DEADLINE`], otherwise the suite fails loudly instead of hanging
//! CI.  The iteration count scales with `TM_STRESS_ITERS` (the scheduled
//! stress job runs 5 x 50 = 250 trials per runtime).

use std::sync::mpsc;
use std::time::Duration;

use tm_repro::sync::Mechanism;
use tm_repro::workloads::pc::{run_pc, PcParams};
use tm_repro::workloads::runtime::RuntimeKind;
use tm_repro::workloads::stress_iters;

/// Items per trial — matches the `producer_consumer` suite, where the hang
/// historically reproduced.
const ITEMS: u64 = 384;

/// Hard per-trial deadline.  A healthy trial finishes in well under a
/// second; a lost wake-up without the watchdog never finishes at all.
const TRIAL_DEADLINE: Duration = Duration::from_secs(60);

/// Runs `5 * stress_iters()` TMCondVar producer/consumer trials on `kind`,
/// each under the hard deadline, and asserts conservation on every one.
fn soak(kind: RuntimeKind) {
    let trials = 5 * stress_iters();
    for trial in 0..trials {
        let (done, rx) = mpsc::channel();
        let worker = std::thread::spawn(move || {
            let params = PcParams::new(2, 2, 8, ITEMS, Mechanism::TmCondVar);
            let result = run_pc(kind, &params);
            // A dropped receiver (deadline already missed) is fine: the
            // suite has failed and this thread is just draining.
            let _ = done.send((params, result));
        });
        match rx.recv_timeout(TRIAL_DEADLINE) {
            Ok((params, result)) => {
                worker.join().expect("trial thread panicked");
                assert!(
                    result.checksum_ok,
                    "conservation failed on {kind} trial {trial}/{trials}"
                );
                assert_eq!(result.produced, params.effective_total());
                assert_eq!(result.consumed, params.effective_total());
            }
            Err(_) => panic!(
                "hang detected: TMCondVar producer/consumer on {kind} \
                 (trial {trial}/{trials}) missed the {TRIAL_DEADLINE:?} deadline \
                 — a wait slept past the watchdog"
            ),
        }
    }
}

#[test]
fn htm_tmcondvar_soak_never_hangs() {
    soak(RuntimeKind::Htm);
}

#[test]
fn hybrid_tmcondvar_soak_never_hangs() {
    soak(RuntimeKind::Hybrid);
}

#[test]
fn software_tmcondvar_soak_never_hangs() {
    // The software runtimes commit at the wait point synchronously, so the
    // historical window is narrower there — but the watchdog protocol is
    // shared, and this pins it on every runtime.
    soak(RuntimeKind::EagerStm);
    soak(RuntimeKind::LazyStm);
}
