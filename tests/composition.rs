//! Integration tests for the composability argument (§2.2.1, §2.3,
//! Algorithm 3): composing `Produce` and `Consume` into `Produce1Consume2`
//! stays atomic under the paper's mechanisms, and the intermediate state of
//! the composition is never visible to other transactions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use condsync::Mechanism;
use tm_repro::prelude::*;
use tm_repro::workloads::runtime::RuntimeKind;

const ROUNDS: u64 = 30;

/// Runs `Produce1Consume2` rounds against an adversarial observer and returns
/// how often the observer saw the in-progress flag set in *committed* state.
fn observed_leaks(kind: RuntimeKind, mechanism: Mechanism) -> u64 {
    let rt = kind.build(TmConfig::default());
    let system = Arc::clone(rt.system());
    let buffer = TmBoundedBuffer::new(&system, 8);
    let inprogress = TmVar::<u64>::alloc(&system, 0);
    let leaks = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Observer.
        {
            let (rt, system) = (rt.clone(), Arc::clone(&system));
            let (inprogress, leaks, stop) =
                (inprogress.clone(), Arc::clone(&leaks), Arc::clone(&stop));
            scope.spawn(move || {
                let th = system.register_thread();
                while !stop.load(Ordering::Relaxed) {
                    if rt.atomically(&th, |tx| inprogress.get(tx)) != 0 {
                        leaks.fetch_add(1, Ordering::Relaxed);
                    }
                    // A short sleep keeps the observer honest without starving
                    // the composed transaction on a single-core host.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        // Refill helper: keeps two spare elements around so the composed
        // transaction's "consume two" precondition (count ≥ 2 for WaitPred)
        // can always be established by someone else's commit.
        {
            let (rt, system, buffer) = (rt.clone(), Arc::clone(&system), Arc::clone(&buffer));
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let th = system.register_thread();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    rt.atomically(&th, |tx| {
                        let count = tx.read(buffer.count_addr())?;
                        if count < 2 {
                            buffer.produce(mechanism, tx, 10_000 + i)?;
                        }
                        Ok(())
                    });
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            });
        }
        // The composed transaction.
        let main = {
            let (rt, system, buffer) = (rt.clone(), Arc::clone(&system), Arc::clone(&buffer));
            let inprogress = inprogress.clone();
            let stop = Arc::clone(&stop);
            scope.spawn(move || {
                let th = system.register_thread();
                for round in 0..ROUNDS {
                    rt.atomically(&th, |tx| {
                        inprogress.set(tx, 1)?;
                        let (_a, _b) = buffer.produce1_consume2(mechanism, tx, round)?;
                        inprogress.set(tx, 0)
                    });
                }
                stop.store(true, Ordering::Relaxed);
            })
        };
        main.join().expect("composed transaction");
    });

    leaks.load(Ordering::Relaxed)
}

#[test]
fn retry_preserves_composition_atomicity_on_eager_stm() {
    assert_eq!(observed_leaks(RuntimeKind::EagerStm, Mechanism::Retry), 0);
}

#[test]
fn retry_preserves_composition_atomicity_on_lazy_stm() {
    assert_eq!(observed_leaks(RuntimeKind::LazyStm, Mechanism::Retry), 0);
}

#[test]
fn retry_preserves_composition_atomicity_on_htm() {
    assert_eq!(observed_leaks(RuntimeKind::Htm, Mechanism::Retry), 0);
}

#[test]
fn await_and_waitpred_preserve_composition_atomicity() {
    assert_eq!(observed_leaks(RuntimeKind::EagerStm, Mechanism::Await), 0);
    assert_eq!(
        observed_leaks(RuntimeKind::EagerStm, Mechanism::WaitPred),
        0
    );
}

#[test]
fn restart_preserves_composition_atomicity() {
    assert_eq!(observed_leaks(RuntimeKind::EagerStm, Mechanism::Restart), 0);
}

/// The composed transaction's results are two consecutive elements when the
/// buffer is drained by nobody else — the property §2.2.1 shows condition
/// variables cannot provide.
#[test]
fn produce1_consume2_returns_consecutive_elements_single_threaded() {
    let rt = RuntimeKind::EagerStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let buffer = TmBoundedBuffer::new(&system, 8);
    buffer.prefill(&system, 2); // elements 1 and 2
    let th = system.register_thread();
    let (a, b) = rt.atomically(&th, |tx| buffer.produce1_consume2(Mechanism::Retry, tx, 99));
    // FIFO: the two consumed elements are the two oldest, in order.
    assert_eq!((a, b), (1, 2));
    assert_eq!(
        buffer.len_direct(&system),
        1,
        "the produced element remains"
    );
}

/// Nested library-style use: a transaction that calls a helper which itself
/// may retry composes into one atomic action (flat nesting).
#[test]
fn waiting_inside_a_helper_function_composes() {
    let rt = RuntimeKind::EagerStm.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let queue = TmQueue::new(&system);
    let log = TmVar::<u64>::alloc(&system, 0);

    let rt_w = rt.clone();
    let system_w = Arc::clone(&system);
    let queue_w = queue.clone();
    let log_w = log.clone();
    let consumer = std::thread::spawn(move || {
        let th = system_w.register_thread();
        rt_w.atomically(&th, |tx| {
            // Outer transaction writes something first…
            log_w.set(tx, 1)?;
            // …then calls a library helper that waits inside the same
            // transaction.  If the wait rolls back, the log write must roll
            // back with it (no partial state is ever committed).
            let v = queue_w.dequeue_waiting(Mechanism::Retry, tx)?;
            log_w.set(tx, v)?;
            Ok(v)
        })
    });

    std::thread::sleep(std::time::Duration::from_millis(20));
    // Before the producer acts, the consumer must not have committed the
    // `log = 1` prefix.
    assert_eq!(log.load_direct(&system), 0, "partial state leaked");

    let th = system.register_thread();
    rt.atomically(&th, |tx| queue.enqueue(tx, 55));
    assert_eq!(consumer.join().unwrap(), 55);
    assert_eq!(log.load_direct(&system), 55);
}
