//! Property tests for the shared access-set layer (`tm_core::access`) and
//! its integration into the three runtimes.
//!
//! Deterministic xorshift-driven cases (same style as `tests/properties.rs`):
//! every run explores the same inputs, so failures reproduce trivially.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use tm_core::access::{IndexSet, ReadSet, WriteLog};
use tm_core::backoff::XorShift64;
use tm_repro::prelude::*;
use tm_repro::workloads::runtime::RuntimeKind;

/// A 10k-entry read set behaves exactly like a set model: deduplicated
/// membership, first-insertion iteration order, and a sorted cover equal to
/// the model's distinct stripes.
#[test]
fn read_set_matches_model_at_ten_thousand_entries() {
    let mut rng = XorShift64::new(0xACCE55);
    let orecs = tm_core::OrecTable::new(1 << 10);
    let mut rs = ReadSet::new();
    let mut model_addrs: Vec<Addr> = Vec::new();
    let mut model_set: BTreeSet<usize> = BTreeSet::new();
    let mut model_cover: BTreeSet<usize> = BTreeSet::new();

    while model_addrs.len() < 10_000 {
        // Bias towards re-reads so deduplication is exercised constantly.
        let addr = Addr((rng.next() % 16_384) as usize);
        let stripe = orecs.index_for(addr);
        let fresh = rs.record(addr, stripe);
        assert_eq!(fresh, model_set.insert(addr.0), "dedup must match model");
        if fresh {
            model_addrs.push(addr);
            model_cover.insert(stripe);
        }
    }

    assert_eq!(rs.len(), 10_000);
    let addrs: Vec<Addr> = rs.iter().map(|e| e.addr).collect();
    assert_eq!(addrs, model_addrs, "first-read order is preserved");
    assert!(
        rs.iter().all(|e| e.stripe == orecs.index_for(e.addr)),
        "cached stripes stay correct"
    );
    let cover: Vec<usize> = model_cover.into_iter().collect();
    assert_eq!(
        rs.orec_cover(),
        &cover[..],
        "cover = sorted distinct stripes"
    );
}

/// Write-after-write keeps exactly one entry per address with the latest
/// value (redo) or the first value (undo), in first-write order.
#[test]
fn write_log_overwrite_order_matches_models() {
    let mut rng = XorShift64::new(0x1066);
    for case in 0..16 {
        let mut redo = WriteLog::new();
        let mut undo = WriteLog::new();
        let mut first_order: Vec<Addr> = Vec::new();
        let mut last_val: HashMap<usize, u64> = HashMap::new();
        let mut first_val: HashMap<usize, u64> = HashMap::new();

        for _ in 0..2_000 {
            let addr = Addr((rng.next() % 256) as usize);
            let val = rng.next();
            redo.record(addr, val, || addr.0 % 31);
            undo.record_first(addr, val, || addr.0 % 31);
            if !last_val.contains_key(&addr.0) {
                first_order.push(addr);
                first_val.insert(addr.0, val);
            }
            last_val.insert(addr.0, val);
        }

        assert_eq!(redo.len(), first_order.len(), "case {case}");
        let redo_order: Vec<Addr> = redo.iter().map(|e| e.addr).collect();
        assert_eq!(redo_order, first_order, "case {case}: insertion order");
        for &addr in &first_order {
            assert_eq!(redo.lookup(addr), Some(last_val[&addr.0]), "case {case}");
            assert_eq!(undo.lookup(addr), Some(first_val[&addr.0]), "case {case}");
        }
        assert_eq!(redo.lookup(Addr(9999)), None, "case {case}");
    }
}

/// The index set agrees with a set model over a long random insert stream.
#[test]
fn index_set_matches_model() {
    let mut rng = XorShift64::new(0x5E7);
    let mut s = IndexSet::new();
    let mut model: BTreeSet<usize> = BTreeSet::new();
    for _ in 0..5_000 {
        let idx = (rng.next() % 700) as usize;
        assert_eq!(s.insert(idx), model.insert(idx));
        assert!(s.contains(idx));
    }
    assert_eq!(s.len(), model.len());
    for idx in 0..700 {
        assert_eq!(s.contains(idx), model.contains(&idx));
    }
}

/// Deep read-after-write chains: a transaction interleaving random writes
/// and reads over a small address range must always read its own latest
/// write, on every runtime, exactly as a map model predicts.
#[test]
fn read_after_write_chains_match_model_on_all_runtimes() {
    for kind in RuntimeKind::ALL {
        let mut rng = XorShift64::new(0xC4A1);
        for case in 0..8 {
            let rt = kind.build(TmConfig::small());
            let system = Arc::clone(rt.system());
            let th = system.register_thread();
            // Pre-fill so untouched reads return a recognisable value.
            let addrs: Vec<Addr> = (0..64).map(|i| Addr(128 + i)).collect();
            for &a in &addrs {
                system.heap.store(a, 7_000 + a.0 as u64);
            }
            // The op schedule must be fixed before the body runs: the body
            // may re-execute (HTM capacity/conflict paths), and replaying
            // identical ops is exactly what the runtimes guarantee.
            let ops: Vec<(bool, usize, u64)> = (0..400)
                .map(|_| {
                    (
                        rng.next().is_multiple_of(2),
                        (rng.next() % 64) as usize,
                        rng.next() % 1_000_000,
                    )
                })
                .collect();

            let (sum, model_sum) = rt.atomically(&th, |tx| {
                let mut model: HashMap<usize, u64> = HashMap::new();
                let mut sum = 0u64;
                let mut model_sum = 0u64;
                for &(is_write, i, val) in &ops {
                    if is_write {
                        tx.write(addrs[i], val)?;
                        model.insert(i, val);
                    } else {
                        sum = sum.wrapping_add(tx.read(addrs[i])?);
                        model_sum = model_sum
                            .wrapping_add(*model.get(&i).unwrap_or(&(7_000 + addrs[i].0 as u64)));
                    }
                }
                Ok((sum, model_sum))
            });
            assert_eq!(sum, model_sum, "{kind} case {case}: read-your-writes");

            // After commit, memory holds the latest write per address.
            let mut model: HashMap<usize, u64> = HashMap::new();
            for &(is_write, i, val) in &ops {
                if is_write {
                    model.insert(i, val);
                }
            }
            for (i, &a) in addrs.iter().enumerate() {
                let expect = *model.get(&i).unwrap_or(&(7_000 + a.0 as u64));
                assert_eq!(
                    system.heap.load(a),
                    expect,
                    "{kind} case {case}: committed value at {a:?}"
                );
            }
        }
    }
}

/// Re-executed attempts recycle their log capacity: a transaction that
/// explicitly restarts several times performs pool takes on every attempt
/// after the first, and still commits the right values.
#[test]
fn aborted_attempts_reuse_pooled_logs_on_all_runtimes() {
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let th = system.register_thread();
        let addrs: Vec<Addr> = (0..32).map(|i| Addr(512 + i)).collect();

        let mut remaining_restarts = 3u32;
        rt.atomically(&th, |tx| {
            for (i, &a) in addrs.iter().enumerate() {
                tx.write(a, i as u64 + 1)?;
                let _ = tx.read(a)?;
            }
            if remaining_restarts > 0 {
                remaining_restarts -= 1;
                return condsync::restart(tx);
            }
            Ok(())
        });

        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(system.heap.load(a), i as u64 + 1, "{kind}");
        }
        let stats = th.stats.snapshot();
        assert!(
            stats.log_pool_reuses >= 3,
            "{kind}: re-executed attempts must draw from the pool \
             (got {} reuses)",
            stats.log_pool_reuses
        );
        assert!(
            stats.write_set_max >= 32,
            "{kind}: write-set high-water mark must reflect the attempt \
             (got {})",
            stats.write_set_max
        );
    }
}

/// The `Retry` value log (now a pooled write log) still records the first
/// observed value per address and substitutes pre-transaction values for
/// written locations, on every runtime.
#[test]
fn retry_value_log_keeps_first_observed_values() {
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let flag = TmVar::<u64>::alloc(&system, 0);
        let obs = TmVar::<u64>::alloc(&system, 41);

        let (rt2, system2) = (rt.clone(), Arc::clone(&system));
        let (flag2, obs2) = (flag.clone(), obs.clone());
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                // Read, overwrite, and re-read a location: the value log
                // must keep the pre-transaction value so the post-rollback
                // wake check compares against what memory actually holds.
                let seen = obs2.get(tx)?;
                obs2.set(tx, seen + 1)?;
                let _ = obs2.get(tx)?;
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry(tx);
                }
                Ok(v + seen)
            })
        });

        while system.waiters.is_empty() {
            std::thread::yield_now();
        }
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 9));
        assert_eq!(waiter.join().unwrap(), 50, "{kind}");
    }
}
