//! Linearizability-style stress for the KV plane: concurrent get/put/
//! delete/range traffic over a [`TmHashMap`] + [`TmOrderedMap`] pair on
//! every runtime and both map layouts, checked against per-key models.
//!
//! Each worker owns a disjoint slice of the key space for writes (keys
//! congruent to its id) while reads and range scans roam the whole space.
//! Values encode `(key, owner, seq)`, which gives every observation a
//! machine-checkable consistency claim without a full history checker:
//!
//! * a lookup that returns a value must return one the key's owner actually
//!   wrote *to that key* (no torn values, no cross-key leakage);
//! * a range scan must come back strictly sorted, in-bounds, and
//!   well-formed entry by entry — a snapshot of the index mid-rebalance
//!   would violate this immediately;
//! * after the barrier, the final store image must equal the union of the
//!   owners' models (the last committed write per key), and the ordered
//!   index must agree with the store entry-for-entry.
//!
//! Iteration counts scale with `TM_STRESS_ITERS` (the scheduled CI `stress`
//! job sets it to 50) so the nightly soak explores far more interleavings
//! than the PR gate.

use std::collections::HashMap;
use std::sync::{Arc, Barrier};

use tm_repro::prelude::*;
use tm_repro::workloads::stress_iters;

const WORKERS: usize = 4;
const KEYSPACE: u64 = 128;

/// Packs `(key, owner, seq)` into a value word.
fn encode(key: u64, owner: usize, seq: u64) -> u64 {
    (key << 32) | ((owner as u64) << 24) | (seq & 0xFF_FFFF)
}

/// Asserts that an observed value is one `key`'s owner could have written.
fn check_value(kind: RuntimeKind, key: u64, value: u64) {
    let owner = (key % WORKERS as u64) as usize;
    assert_eq!(value >> 32, key, "{kind}: value leaked across keys");
    assert_eq!(
        (value >> 24) & 0xFF,
        owner as u64,
        "{kind}: key {key} holds a value written by a non-owner"
    );
}

/// One full stress round on `kind` × `layout` under `config`.
fn stress_round(kind: RuntimeKind, layout: MapLayout, ops_per_worker: u64, config: TmConfig) {
    let rt = kind.build(config);
    let system = Arc::clone(rt.system());
    let store = Arc::new(TmHashMap::<u64, u64>::with_layout(&system, 512, layout));
    let index = Arc::new(TmOrderedMap::<u64, u64>::new(&system));
    let barrier = Barrier::new(WORKERS);

    let models: Vec<HashMap<u64, u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..WORKERS)
            .map(|worker| {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let store = Arc::clone(&store);
                let index = Arc::clone(&index);
                let barrier = &barrier;
                s.spawn(move || {
                    let th = system.register_thread();
                    let mut model: HashMap<u64, u64> = HashMap::new();
                    let mut rng = tm_core::backoff::XorShift64::new(0x57E5 ^ (worker as u64 + 1));
                    barrier.wait();
                    for seq in 0..ops_per_worker {
                        let roll = rng.next() % 10;
                        match roll {
                            // Point lookup anywhere (declared read-only).
                            0..=3 => {
                                let key = rng.next() % KEYSPACE;
                                let got = rt.atomically_read(&th, |tx| store.get(tx, key));
                                if let Some(v) = got {
                                    check_value(kind, key, v);
                                }
                            }
                            // Range scan anywhere (declared read-only).
                            4..=5 => {
                                let lo = rng.next() % KEYSPACE;
                                let hi = lo + rng.next() % 24;
                                let entries = rt.atomically_read(&th, |tx| index.range(tx, lo, hi));
                                let mut prev = None;
                                for &(k, v) in &entries {
                                    assert!(
                                        (lo..=hi).contains(&k),
                                        "{kind}: scan [{lo}, {hi}] returned key {k}"
                                    );
                                    assert!(
                                        prev.is_none_or(|p| p < k),
                                        "{kind}: scan keys out of order"
                                    );
                                    check_value(kind, k, v);
                                    prev = Some(k);
                                }
                            }
                            // Delete an owned key from both structures.
                            6..=7 => {
                                let key = (rng.next() % (KEYSPACE / WORKERS as u64))
                                    * WORKERS as u64
                                    + worker as u64;
                                let old = rt.atomically(&th, |tx| {
                                    let old = store.remove(tx, key)?;
                                    if old.is_some() {
                                        index.remove(tx, key)?;
                                    }
                                    Ok(old)
                                });
                                if let Some(v) = old {
                                    check_value(kind, key, v);
                                }
                                model.remove(&key);
                            }
                            // Insert/update an owned key in both structures.
                            _ => {
                                let key = (rng.next() % (KEYSPACE / WORKERS as u64))
                                    * WORKERS as u64
                                    + worker as u64;
                                let value = encode(key, worker, seq);
                                let old = rt.atomically(&th, |tx| {
                                    let old = store.insert(tx, key, value)?;
                                    index.insert(tx, key, value)?;
                                    Ok(old)
                                });
                                if let Some(v) = old {
                                    check_value(kind, key, v);
                                }
                                model.insert(key, value);
                            }
                        }
                    }
                    model
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Final-state check: the store must be exactly the union of the owners'
    // models, and the ordered index must mirror the store.
    let mut expected: Vec<(u64, u64)> = models.into_iter().flatten().collect();
    expected.sort_unstable();
    let mut dump = store.dump_direct(&system);
    dump.sort_unstable();
    assert_eq!(
        dump,
        expected,
        "{kind} with {} layout: final store diverged from the owner models",
        layout.label()
    );
    let mut index_dump = index.dump_direct(&system);
    index_dump.sort_unstable();
    assert_eq!(
        index_dump,
        dump,
        "{kind} with {} layout: ordered index diverged from the store",
        layout.label()
    );
}

#[test]
fn concurrent_kv_traffic_stays_consistent_on_every_runtime_and_layout() {
    let ops = 400 * stress_iters();
    for kind in RuntimeKind::ALL {
        for layout in MapLayout::ALL {
            stress_round(kind, layout, ops, TmConfig::default());
        }
    }
}

#[test]
fn concurrent_kv_traffic_stays_consistent_across_snapshot_modes() {
    // The same claims must hold whether lookups run logged or on the
    // snapshot fast path: the consistency argument is the TM's, not the
    // snapshot's.
    use tm_repro::core::SnapshotMode;
    let ops = 200 * stress_iters();
    for mode in [SnapshotMode::Off, SnapshotMode::On, SnapshotMode::Extend] {
        for kind in [RuntimeKind::EagerStm, RuntimeKind::LazyStm] {
            stress_round(
                kind,
                MapLayout::StripeAligned,
                ops,
                TmConfig::default().with_snapshot(mode),
            );
        }
    }
}
