//! Stress tests for the sharded, address-indexed wake path.
//!
//! The waiter registry indexes sleepers by ownership-record stripe so that a
//! committing writer only scans the shards its write set covers.  These
//! tests drive that machinery through the full runtime stack on all three
//! runtimes, in the `tests/properties.rs` style: a deterministic xorshift
//! generator varies the shape of every iteration, so failures reproduce.
//!
//! Two properties are checked:
//!
//! * **No lost wakeups** — N sleepers on disjoint and overlapping address
//!   sets (plus a predicate sleeper in the unindexed shard) are all released
//!   by concurrent writers; every iteration terminates with every sleeper
//!   woken exactly once per sleep.
//! * **No spurious-wake storms** — a writer whose write set maps to shards
//!   disjoint from every sleeper's performs *zero* wake-condition
//!   evaluations, on all three runtimes (the linear scan this PR replaces
//!   evaluated every sleeper on every commit).

use std::sync::Arc;
use std::time::{Duration, Instant};

use tm_repro::core::backoff::XorShift64;
use tm_repro::core::Addr;
use tm_repro::prelude::*;
use tm_repro::sync::{await_one, retry, wait_pred};
use tm_repro::workloads::runtime::RuntimeKind;

/// Consecutive iterations per runtime (the acceptance bar for this PR).
const ITERATIONS: u64 = 50;

/// Iteration count scaled by the `TM_STRESS_ITERS` multiplier (the
/// scheduled CI `stress` job sets it to 10 for soak coverage without
/// slowing the PR gate).
fn iterations() -> u64 {
    ITERATIONS * tm_repro::workloads::stress_iters()
}

/// Waits until `n` waiters are registered, with a liveness deadline so a
/// lost registration fails loudly instead of hanging the suite.
fn wait_for_sleepers(system: &TmSystem, n: usize) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while system.waiters.len() < n {
        assert!(
            Instant::now() < deadline,
            "only {} of {n} sleepers registered",
            system.waiters.len()
        );
        std::thread::yield_now();
    }
}

fn pred_nonzero(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? != 0)
}

/// One stress iteration: a rng-shaped mix of Retry/Await sleepers on
/// disjoint slots, two sleepers overlapping on a shared slot, and a
/// WaitPred sleeper, released by two concurrent writers.
fn stress_iteration(kind: RuntimeKind, rng: &mut XorShift64) {
    let rt = kind.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let slots = TmArray::<u64>::alloc(&system, 32, 0);

    let n_disjoint = 2 + (rng.next() % 3) as usize; // 2..=4
    let shared_slot = n_disjoint; // slots 0..n_disjoint are the disjoint ones
    let pred_slot = shared_slot + 1;
    let total = n_disjoint + 2 + 1;

    std::thread::scope(|scope| {
        // Disjoint sleepers: each waits for its own slot, via Retry or Await.
        for i in 0..n_disjoint {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let slots = slots.clone();
            let use_retry = rng.next().is_multiple_of(2);
            scope.spawn(move || {
                let th = system.register_thread();
                let got = rt.atomically(&th, |tx| {
                    let v = slots.get(tx, i)?;
                    if v == 0 {
                        return if use_retry {
                            retry(tx)
                        } else {
                            await_one(tx, slots.addr_of(i))
                        };
                    }
                    Ok(v)
                });
                assert_eq!(got, (i + 1) as u64, "disjoint sleeper {i}");
            });
        }
        // Overlapping sleepers: two wait on the same slot, one per mechanism.
        for use_retry in [false, true] {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let slots = slots.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                let got = rt.atomically(&th, |tx| {
                    let v = slots.get(tx, shared_slot)?;
                    if v == 0 {
                        return if use_retry {
                            retry(tx)
                        } else {
                            await_one(tx, slots.addr_of(shared_slot))
                        };
                    }
                    Ok(v)
                });
                assert_eq!(got, 77, "overlapping sleeper");
            });
        }
        // A predicate sleeper exercises the unindexed shard.
        {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let slots = slots.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                let got = rt.atomically(&th, |tx| {
                    let v = slots.get(tx, pred_slot)?;
                    if v == 0 {
                        return wait_pred(tx, pred_nonzero, &[slots.addr_of(pred_slot).0 as u64]);
                    }
                    Ok(v)
                });
                assert_eq!(got, 99, "predicate sleeper");
            });
        }

        wait_for_sleepers(&system, total);

        // Writer 1 releases the disjoint sleepers in a rng-shuffled order.
        let mut order: Vec<usize> = (0..n_disjoint).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, (rng.next() % (i as u64 + 1)) as usize);
        }
        {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let slots = slots.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                for i in order {
                    rt.atomically(&th, |tx| slots.set(tx, i, (i + 1) as u64));
                }
            });
        }
        // Writer 2 releases the overlapping pair and the predicate sleeper.
        {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let slots = slots.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                rt.atomically(&th, |tx| slots.set(tx, shared_slot, 77));
                rt.atomically(&th, |tx| slots.set(tx, pred_slot, 99));
            });
        }
    });

    // Every sleeper deregistered itself on the way out.
    assert!(system.waiters.is_empty(), "{kind}: registry must drain");
    let stats = system.stats();
    assert_eq!(stats.descheds, total as u64, "{kind}: one deschedule each");
    assert_eq!(
        stats.sleeps + stats.desched_skips,
        stats.descheds,
        "{kind}: every deschedule either slept or skipped"
    );
    // Nothing lost, no storms: every sleeper that actually slept was
    // signalled (the scope join proves it), and nobody was signalled more
    // than once per deschedule.  A writer may also claim a waiter between
    // its registration and its double-check (the waiter then skips the
    // sleep), so wakeups can exceed sleeps but never descheds.
    assert!(stats.wakeups >= stats.sleeps, "{kind}: a sleeper was lost");
    assert!(
        stats.wakeups <= stats.descheds,
        "{kind}: at most one signal per deschedule"
    );
}

#[test]
fn stress_no_lost_wakeups_eager() {
    let mut rng = XorShift64::new(0xEA6E_0001);
    for _ in 0..iterations() {
        stress_iteration(RuntimeKind::EagerStm, &mut rng);
    }
}

#[test]
fn stress_no_lost_wakeups_lazy() {
    let mut rng = XorShift64::new(0x1A2_0002);
    for _ in 0..iterations() {
        stress_iteration(RuntimeKind::LazyStm, &mut rng);
    }
}

#[test]
fn stress_no_lost_wakeups_htm() {
    let mut rng = XorShift64::new(0x547_0003);
    for _ in 0..iterations() {
        stress_iteration(RuntimeKind::Htm, &mut rng);
    }
}

#[test]
fn stress_no_lost_wakeups_hybrid() {
    let mut rng = XorShift64::new(0x8B1D_0004);
    for _ in 0..iterations() {
        stress_iteration(RuntimeKind::Hybrid, &mut rng);
    }
}

/// Sleeper addresses whose registry shards avoid `forbidden`, scanning raw
/// heap words deterministically.
fn pick_sleeper_addrs(system: &TmSystem, n: usize, forbidden: &[usize]) -> Vec<Addr> {
    let mut picked = Vec::new();
    let mut shards_used: Vec<usize> = forbidden.to_vec();
    for word in 64..system.heap.len() {
        let addr = Addr(word);
        let shard = system.waiters.shard_of(system.orecs.index_for(addr));
        if !shards_used.contains(&shard) {
            shards_used.push(shard);
            picked.push(addr);
            if picked.len() == n {
                return picked;
            }
        }
    }
    panic!("heap too small to find {n} shard-distinct sleeper addresses");
}

/// The registry shards a write to `addr` can touch on any runtime: the
/// shards of every word of its cache line (hardware commits report the line
/// cover via the same `OrecTable::line_indices`; software commits report a
/// subset of it).
fn writer_shards(system: &TmSystem, addr: Addr) -> Vec<usize> {
    system
        .orecs
        .line_indices(addr.line())
        .map(|stripe| system.waiters.shard_of(stripe))
        .collect()
}

/// A writer hammering stripes disjoint from every sleeper's must not
/// evaluate a single wait condition — the storm the sharded registry exists
/// to prevent — and the zero-waiter fast path must do no shard work at all.
fn disjoint_writer_scans_nothing(kind: RuntimeKind) {
    let rt = kind.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let writer = system.register_thread();

    // Fast path: committing with an empty registry touches no shards.
    let writer_addr = Addr(2048);
    rt.atomically(&writer, |tx| tx.write(writer_addr, 1));
    let s = writer.stats.snapshot();
    assert_eq!(s.wake_shard_scans, 0, "{kind}: empty-registry fast path");
    assert_eq!(s.wake_shard_skips, 0, "{kind}: empty-registry fast path");

    let n_sleepers = 4;
    let sleeper_addrs =
        pick_sleeper_addrs(&system, n_sleepers, &writer_shards(&system, writer_addr));

    std::thread::scope(|scope| {
        for &addr in &sleeper_addrs {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            scope.spawn(move || {
                let th = system.register_thread();
                let got = rt.atomically(&th, |tx| {
                    let v = tx.read(addr)?;
                    if v == 0 {
                        return await_one(tx, addr);
                    }
                    Ok(v)
                });
                assert_eq!(got, 5);
            });
        }
        wait_for_sleepers(&system, n_sleepers);

        // Phase 1: commits on shards none of the sleepers occupy.
        let before = writer.stats.snapshot();
        for round in 0..100u64 {
            rt.atomically(&writer, |tx| tx.write(writer_addr, round + 2));
        }
        let after = writer.stats.snapshot();
        assert_eq!(
            after.wake_checks - before.wake_checks,
            0,
            "{kind}: disjoint commits must not evaluate any wait condition"
        );
        assert!(
            after.wake_shard_skips > before.wake_shard_skips,
            "{kind}: disjoint commits should be skipping shards"
        );
        assert_eq!(after.wakeups - before.wakeups, 0, "{kind}: nobody woken");

        // Phase 2: release the sleepers through their own stripes.
        for &addr in &sleeper_addrs {
            rt.atomically(&writer, |tx| tx.write(addr, 5));
        }
    });

    assert!(system.waiters.is_empty(), "{kind}: registry must drain");
    assert_eq!(
        system.stats().wakeups,
        n_sleepers as u64,
        "{kind}: each sleeper woken exactly once"
    );
}

#[test]
fn disjoint_writer_scans_nothing_eager() {
    disjoint_writer_scans_nothing(RuntimeKind::EagerStm);
}

#[test]
fn disjoint_writer_scans_nothing_lazy() {
    disjoint_writer_scans_nothing(RuntimeKind::LazyStm);
}

#[test]
fn disjoint_writer_scans_nothing_htm() {
    disjoint_writer_scans_nothing(RuntimeKind::Htm);
}

#[test]
fn disjoint_writer_scans_nothing_hybrid() {
    disjoint_writer_scans_nothing(RuntimeKind::Hybrid);
}
