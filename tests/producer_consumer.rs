//! Cross-crate integration tests: the bounded-buffer producer/consumer
//! workload must conserve elements for every mechanism on every runtime.
//!
//! These mirror §2.4.1's micro-benchmark at a much smaller scale; what is
//! being checked is correctness (no lost or duplicated elements, no lost
//! wake-ups leading to deadlock), not performance.

use condsync::Mechanism;
use tm_repro::workloads::pc::{run_pc, PcParams};
use tm_repro::workloads::runtime::RuntimeKind;

const ITEMS: u64 = 384;

fn conserves(kind: RuntimeKind, mechanism: Mechanism, p: usize, c: usize, cap: usize) {
    let params = PcParams::new(p, c, cap, ITEMS, mechanism);
    let result = run_pc(kind, &params);
    assert!(
        result.checksum_ok,
        "{mechanism} on {kind} (p{p}, c{c}, cap {cap}): elements were lost or duplicated"
    );
    assert_eq!(result.produced, params.effective_total());
    assert_eq!(result.consumed, params.effective_total());
}

#[test]
fn eager_stm_every_mechanism_balanced_two_by_two() {
    for mechanism in Mechanism::ALL {
        conserves(RuntimeKind::EagerStm, mechanism, 2, 2, 8);
    }
}

#[test]
fn lazy_stm_every_mechanism_balanced_two_by_two() {
    for mechanism in Mechanism::ALL {
        conserves(RuntimeKind::LazyStm, mechanism, 2, 2, 8);
    }
}

#[test]
fn htm_every_supported_mechanism_balanced_two_by_two() {
    for mechanism in Mechanism::HTM_SET {
        conserves(RuntimeKind::Htm, mechanism, 2, 2, 8);
    }
}

#[test]
fn tiny_buffer_many_sleepers_eager() {
    // A 2-slot buffer with 3 producers and 3 consumers maximises sleeping and
    // waking; any lost wake-up deadlocks the test.
    for mechanism in [Mechanism::Retry, Mechanism::Await, Mechanism::WaitPred] {
        conserves(RuntimeKind::EagerStm, mechanism, 3, 3, 2);
    }
}

#[test]
fn tiny_buffer_many_sleepers_htm() {
    for mechanism in [Mechanism::Retry, Mechanism::WaitPred] {
        conserves(RuntimeKind::Htm, mechanism, 3, 3, 2);
    }
}

#[test]
fn imbalanced_producers_and_consumers() {
    // Imbalance exercises the broadcast-wake behaviour §2.4.1 discusses.
    conserves(RuntimeKind::EagerStm, Mechanism::Retry, 1, 4, 4);
    conserves(RuntimeKind::EagerStm, Mechanism::Await, 4, 1, 4);
    conserves(RuntimeKind::LazyStm, Mechanism::WaitPred, 1, 3, 4);
    conserves(RuntimeKind::Htm, Mechanism::Retry, 3, 1, 4);
}

#[test]
fn pthreads_and_tmcondvar_with_imbalance() {
    conserves(RuntimeKind::EagerStm, Mechanism::Pthreads, 1, 4, 4);
    conserves(RuntimeKind::EagerStm, Mechanism::TmCondVar, 4, 1, 8);
}

#[test]
fn large_buffer_rarely_waits_but_still_conserves() {
    conserves(RuntimeKind::EagerStm, Mechanism::Retry, 2, 2, 128);
    conserves(RuntimeKind::LazyStm, Mechanism::Restart, 2, 2, 128);
}

#[test]
fn retry_orig_matches_retry_behaviour_on_both_stms() {
    conserves(RuntimeKind::EagerStm, Mechanism::RetryOrig, 2, 2, 4);
    conserves(RuntimeKind::LazyStm, Mechanism::RetryOrig, 2, 2, 4);
}

#[test]
fn mechanism_activity_is_visible_in_statistics() {
    let params = PcParams::new(2, 2, 2, ITEMS, Mechanism::Retry);
    let result = run_pc(RuntimeKind::EagerStm, &params);
    assert!(result.checksum_ok);
    let stats = result.stats;
    // With a 2-slot buffer the mechanisms must have been exercised: either a
    // thread slept or the double-check saved it from sleeping.
    assert!(
        stats.descheds + stats.desched_skips > 0,
        "expected deschedule activity, got {stats:?}"
    );
    // Every sleep must eventually be matched by a wake-up for the run to have
    // terminated.
    assert!(stats.wakeups <= stats.wake_checks);
}
