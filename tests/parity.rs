//! Cross-runtime parity: the same condition-synchronization scenario must
//! produce identical results on all three runtimes (eager STM, lazy STM,
//! simulated HTM), and must actually exercise the Deschedule machinery
//! (non-zero wake-ups), now that all three share the one driver loop in
//! `tm_core::driver`.

use std::sync::Arc;

use condsync::Mechanism;
use tm_core::{Addr, ClockMode, StatsSnapshot, TmConfig, Tx, TxResult};
use tm_repro::prelude::*;

/// Both clock-plane schemes: the deterministic GV1 baseline and the
/// decentralized lazy-GV5 default.  Every parity scenario must produce the
/// same golden results under either.
const CLOCK_MODES: [ClockMode; 2] = [ClockMode::Gv1, ClockMode::LazyGv5];

/// Outcome of one scenario run: what the waiters observed, plus the
/// system-wide statistics at the end.
#[derive(Debug)]
struct ScenarioResult {
    observed: Vec<u64>,
    final_count: u64,
    stats: StatsSnapshot,
}

/// One waiter per deschedule-based mechanism blocks until a shared counter
/// reaches `TARGET`; a writer then establishes the condition step by step.
/// Every waiter must observe a value `>= TARGET` regardless of mechanism or
/// runtime, and at least one of them must have gone through a real
/// sleep/wake cycle.
fn run_scenario(kind: RuntimeKind) -> ScenarioResult {
    run_scenario_configured(kind, TmConfig::small())
}

/// As [`run_scenario`], with an explicit configuration (used by the
/// clock-plane sweep).
fn run_scenario_configured(kind: RuntimeKind, config: TmConfig) -> ScenarioResult {
    const TARGET: u64 = 3;

    let rt = kind.build(config);
    let system = Arc::clone(rt.system());
    let count = TmVar::<u64>::alloc(&system, 0);

    fn reached_target(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
        Ok(tx.read(Addr(args[0] as usize))? >= args[1])
    }

    let mut waiters = Vec::new();
    for mechanism in [Mechanism::Retry, Mechanism::Await, Mechanism::WaitPred] {
        let rt = rt.clone();
        let system = Arc::clone(&system);
        let count = count.clone();
        waiters.push(std::thread::spawn(move || {
            let th = system.register_thread();
            rt.atomically(&th, |tx| {
                let v = count.get(tx)?;
                if v < TARGET {
                    return match mechanism {
                        Mechanism::Retry => retry(tx),
                        Mechanism::Await => await_one(tx, count.addr()),
                        Mechanism::WaitPred => {
                            wait_pred(tx, reached_target, &[count.addr().0 as u64, TARGET])
                        }
                        _ => unreachable!("scenario only runs deschedule-based mechanisms"),
                    };
                }
                Ok(v)
            })
        }));
    }

    // Wait until all three waiters have published their wait records; the
    // condition cannot hold before the writer runs, so each stays registered
    // (and headed for a real sleep) once it appears.  This makes the
    // writer's wakeWaiters traffic deterministic instead of timing-based.
    while rt.system().waiters.len() < 3 {
        std::thread::yield_now();
    }

    let th = system.register_thread();
    for _ in 0..TARGET {
        rt.atomically(&th, |tx| {
            let v = count.get(tx)?;
            count.set(tx, v + 1)
        });
    }

    let mut observed: Vec<u64> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
    observed.sort_unstable();
    ScenarioResult {
        observed,
        final_count: count.load_direct(&system),
        stats: system.stats(),
    }
}

#[test]
fn same_scenario_same_results_on_all_runtimes() {
    let results: Vec<(RuntimeKind, ScenarioResult)> = RuntimeKind::ALL
        .iter()
        .map(|&kind| (kind, run_scenario(kind)))
        .collect();

    let (first_kind, first) = &results[0];
    for (kind, result) in &results {
        // Await can observe any post-change value >= 1; Retry and WaitPred
        // wake only once the target holds.  What must agree across runtimes
        // is the *final* state and the waiters' success.
        assert_eq!(
            result.final_count, first.final_count,
            "{kind} final count diverged from {first_kind}"
        );
        assert_eq!(result.observed.len(), 3, "{kind}: a waiter was lost");
        assert!(
            result.observed.iter().all(|&v| v >= 1),
            "{kind}: a waiter returned before any write: {:?}",
            result.observed
        );
        assert!(
            result.observed.iter().max() == Some(&3),
            "{kind}: no waiter saw the established condition: {:?}",
            result.observed
        );
    }
}

#[test]
fn every_runtime_reports_real_deschedule_traffic() {
    for kind in RuntimeKind::ALL {
        let result = run_scenario(kind);
        let stats = &result.stats;
        assert!(
            stats.descheds >= 3,
            "{kind}: expected every waiter to deschedule, got {}",
            stats.descheds
        );
        assert!(
            stats.wakeups > 0,
            "{kind}: writer commits woke nobody (stats: {stats:?})"
        );
        assert!(
            stats.wake_checks >= stats.wakeups,
            "{kind}: every wakeup requires a condition check"
        );
        assert!(
            stats.total_commits() >= 4,
            "{kind}: three waiters plus the writers must all commit"
        );
    }
}

#[test]
fn wake_reason_parity_across_runtimes() {
    // The same timed scenario must resolve with the same `WakeReason`-level
    // behaviour everywhere: a wait whose condition is never established ends
    // in exactly one Timeout; a wait whose condition is established ends as
    // a plain wake with no timeout recorded.
    use std::time::Duration;

    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let flag = TmVar::<u64>::alloc(&system, 0);
        let th = system.register_thread();

        // Never-established condition with a deadline.
        let flag2 = flag.clone();
        let got = rt.atomically(&th, |tx| {
            let v = flag2.get(tx)?;
            if v == 0 {
                if condsync::timed_out(tx) {
                    return Ok(None);
                }
                return condsync::retry_for(tx, Duration::from_millis(25));
            }
            Ok(Some(v))
        });
        assert_eq!(got, None, "{kind}");
        let stats = system.stats();
        assert_eq!(stats.wake_timeouts, 1, "{kind}: exactly one timeout");
        assert_eq!(stats.wakeups, 0, "{kind}: no condition-based wake");

        // Established condition: the reason must be a plain wake.
        let flag3 = flag.clone();
        let (rt2, system2) = (rt.clone(), Arc::clone(&system));
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag3.get(tx)?;
                if v == 0 {
                    if condsync::timed_out(tx) {
                        return Ok(None);
                    }
                    return condsync::retry_for(tx, Duration::from_secs(30));
                }
                Ok(Some(v))
            })
        });
        while system.waiters.is_empty() {
            std::thread::yield_now();
        }
        rt.atomically(&th, |tx| flag.set(tx, 8));
        assert_eq!(waiter.join().unwrap(), Some(8), "{kind}");
        assert_eq!(
            system.stats().wake_timeouts,
            1,
            "{kind}: the 30s deadline never fires"
        );
    }
}

/// Runs one deterministic large transaction — thousands of interleaved
/// reads, writes, read-after-writes and re-reads over hundreds of addresses
/// — and returns its checksum plus the final heap image.
fn large_tx_outcome(kind: RuntimeKind, config: TmConfig) -> (u64, Vec<u64>) {
    use tm_core::backoff::XorShift64;

    const ADDRS: usize = 512;
    const OPS: usize = 6_000;
    let base = 1024usize;

    let rt = kind.build(config);
    let system = Arc::clone(rt.system());
    let th = system.register_thread();
    for i in 0..ADDRS {
        system.heap.store(Addr(base + i), i as u64);
    }
    // The schedule is fixed up front so re-executed attempts replay it.
    let mut rng = XorShift64::new(0xB16_7C5);
    let ops: Vec<(u64, usize, u64)> = (0..OPS)
        .map(|_| {
            (
                rng.next() % 3,
                (rng.next() % ADDRS as u64) as usize,
                rng.next() % 4096,
            )
        })
        .collect();

    let checksum = rt.atomically(&th, |tx| {
        let mut acc = 0u64;
        for &(op, i, val) in &ops {
            let addr = Addr(base + i);
            match op {
                0 => acc = acc.wrapping_add(tx.read(addr)?),
                1 => tx.write(addr, val)?,
                _ => {
                    let cur = tx.read(addr)?;
                    tx.write(addr, cur.wrapping_add(val))?;
                    acc = acc.wrapping_add(tx.read(addr)?);
                }
            }
        }
        Ok(acc)
    });

    let heap: Vec<u64> = (0..ADDRS)
        .map(|i| system.heap.load(Addr(base + i)))
        .collect();
    let stats = system.stats();
    assert!(
        stats.write_set_max > 0 && stats.read_set_max > 0,
        "{kind}: a large transaction must register set high-water marks \
         (read {}, write {})",
        stats.read_set_max,
        stats.write_set_max
    );
    (checksum, heap)
}

#[test]
fn large_transactions_are_identical_across_runtimes() {
    // Byte-identical heap state and the same checksum on every runtime.
    // This is the shape the shared access-set layer exists for (big read
    // sets + deep write logs), so it doubles as an integration check that
    // the pooled, hash-indexed logs did not change semantics.
    let mut outcomes: Vec<(RuntimeKind, u64, Vec<u64>)> = Vec::new();
    for kind in RuntimeKind::ALL {
        let (checksum, heap) = large_tx_outcome(kind, TmConfig::default());
        outcomes.push((kind, checksum, heap));
    }

    let (first_kind, first_sum, first_heap) = &outcomes[0];
    for (kind, checksum, heap) in &outcomes[1..] {
        assert_eq!(
            checksum, first_sum,
            "{kind} checksum diverged from {first_kind}"
        );
        assert_eq!(heap, first_heap, "{kind} heap diverged from {first_kind}");
    }
}

#[test]
fn clock_plane_sweep_keeps_golden_results_identical() {
    // The clock scheme is a performance lever, not a semantic one: the same
    // deterministic large transaction must produce the same checksum and
    // heap image on every runtime under GV1 and lazy GV5, and the
    // deschedule scenario must reach the same final state.
    let golden = large_tx_outcome(RuntimeKind::EagerStm, TmConfig::default());
    for mode in CLOCK_MODES {
        for kind in RuntimeKind::ALL {
            let outcome = large_tx_outcome(kind, TmConfig::default().with_clock(mode));
            assert_eq!(
                outcome,
                golden,
                "{kind} under {} diverged from the golden outcome",
                mode.label()
            );

            let result = run_scenario_configured(kind, TmConfig::small().with_clock(mode));
            assert_eq!(
                result.final_count,
                3,
                "{kind} under {}: wrong final count",
                mode.label()
            );
            assert_eq!(
                result.observed.len(),
                3,
                "{kind} under {}: a waiter was lost",
                mode.label()
            );
            assert_eq!(
                result.observed.iter().max(),
                Some(&3),
                "{kind} under {}: no waiter saw the established condition",
                mode.label()
            );
        }
    }
}

#[test]
fn memory_plane_sweep_keeps_golden_results_identical() {
    // The memory plane is a performance lever, not a semantic one: stripe
    // indices stay stable global ids regardless of how many shards the orec
    // table is split into, and the per-thread arenas front the same heap
    // words.  The deterministic large transaction must produce the same
    // checksum and heap image on every runtime at every shard count with
    // arenas on or off, and the deschedule scenario must reach the same
    // final state.
    let golden = large_tx_outcome(RuntimeKind::EagerStm, TmConfig::default());
    for shards in [1, 4, tm_core::default_orec_shards()] {
        for arenas in [false, true] {
            for kind in RuntimeKind::ALL {
                let config = TmConfig::default()
                    .with_orec_shards(shards)
                    .with_heap_arenas(arenas);
                let outcome = large_tx_outcome(kind, config);
                assert_eq!(
                    outcome, golden,
                    "{kind} with {shards} orec shards (arenas={arenas}) diverged \
                     from the golden outcome"
                );

                let small = TmConfig::small()
                    .with_orec_shards(shards)
                    .with_heap_arenas(arenas);
                let result = run_scenario_configured(kind, small);
                assert_eq!(
                    result.final_count, 3,
                    "{kind} with {shards} orec shards (arenas={arenas}): wrong final count"
                );
                assert_eq!(
                    result.observed.len(),
                    3,
                    "{kind} with {shards} orec shards (arenas={arenas}): a waiter was lost"
                );
                assert_eq!(
                    result.observed.iter().max(),
                    Some(&3),
                    "{kind} with {shards} orec shards (arenas={arenas}): no waiter \
                     saw the established condition"
                );
            }
        }
    }
}

#[test]
fn snapshot_mode_sweep_keeps_golden_results_identical() {
    // The snapshot read path is a performance lever, not a semantic one: the
    // deterministic large transaction, the deschedule scenario, and a
    // declared read-only scan must all produce identical results with
    // snapshots off, on, and extendable, on every runtime.
    use tm_core::{SnapshotMode, TmArray};

    const SLOTS: usize = 64;
    let golden = large_tx_outcome(RuntimeKind::EagerStm, TmConfig::default());
    let expected_sum: u64 = (0..SLOTS as u64).map(|i| i * i).sum();

    for mode in [SnapshotMode::Off, SnapshotMode::On, SnapshotMode::Extend] {
        for kind in RuntimeKind::ALL {
            let outcome = large_tx_outcome(kind, TmConfig::default().with_snapshot(mode));
            assert_eq!(
                outcome,
                golden,
                "{kind} with {} diverged from the golden outcome",
                mode.label()
            );

            let result = run_scenario_configured(kind, TmConfig::small().with_snapshot(mode));
            assert_eq!(
                result.final_count,
                3,
                "{kind} with {}: wrong final count",
                mode.label()
            );
            assert_eq!(
                result.observed.len(),
                3,
                "{kind} with {}: a waiter was lost",
                mode.label()
            );

            // A declared read-only scan sees exactly the committed state.  A
            // body that writes after declaring read-only is upgraded by the
            // driver and must still commit normally.
            let rt = kind.build(TmConfig::small().with_snapshot(mode));
            let system = Arc::clone(rt.system());
            let th = system.register_thread();
            let arr = TmArray::<u64>::alloc(&system, SLOTS, 0);
            rt.atomically(&th, |tx| {
                for i in 0..SLOTS {
                    arr.set(tx, i, (i * i) as u64)?;
                }
                Ok(())
            });
            let sum = rt.atomically_read(&th, |tx| {
                let mut s = 0u64;
                for i in 0..SLOTS {
                    s += arr.get(tx, i)?;
                }
                Ok(s)
            });
            assert_eq!(sum, expected_sum, "{kind} with {}", mode.label());
            let bumped = rt.atomically_read(&th, |tx| {
                let v = arr.get(tx, 0)?;
                arr.set(tx, 0, v + 1)?;
                arr.get(tx, 0)
            });
            assert_eq!(
                bumped,
                1,
                "{kind} with {}: upgrade broke the write",
                mode.label()
            );
            assert_eq!(
                arr.load_direct(&system, 0),
                1,
                "{kind} with {}",
                mode.label()
            );
            let stats = system.stats();
            if mode.is_enabled() && matches!(kind, RuntimeKind::EagerStm | RuntimeKind::LazyStm) {
                assert!(
                    stats.ro_fast_commits > 0,
                    "{kind} with {}: the scan must take the snapshot fast path",
                    mode.label()
                );
                assert!(
                    stats.ro_upgrades > 0,
                    "{kind} with {}: the writing read-only body must be upgraded",
                    mode.label()
                );
            }
        }
    }
}

#[test]
fn writer_commits_advance_the_clock_past_their_begin_snapshot() {
    // Observable `commit_ts > start_ts` in both clock modes: after a writer
    // commit, `clock.now()` strictly exceeds any snapshot taken before the
    // transaction began — under GV1 because the commit ticked the counter,
    // under lazy GV5 because the committer published `now() + 1` to its
    // epoch slot.  Pure HTM commits through the simulated cache protocol
    // and never stamps the clock, so it is exempt.
    for mode in CLOCK_MODES {
        for kind in [
            RuntimeKind::EagerStm,
            RuntimeKind::LazyStm,
            RuntimeKind::Hybrid,
        ] {
            let rt = kind.build(TmConfig::small().with_clock(mode));
            let system = Arc::clone(rt.system());
            let th = system.register_thread();
            let v = TmVar::<u64>::alloc(&system, 0);
            for i in 0..16u64 {
                let before = system.clock.now();
                rt.atomically(&th, |tx| {
                    let x = v.get(tx)?;
                    v.set(tx, x + 1)
                });
                let after = system.clock.now();
                assert!(
                    after > before,
                    "{kind} under {}: commit {i} left now() at {after} (begin snapshot {before})",
                    mode.label()
                );
            }
            assert_eq!(v.load_direct(&system), 16);
        }
    }
}

/// Replays one deterministic 6k-operation history — Zipf-free but seeded
/// insert/remove/get/range traffic over a [`TmHashMap`] and a parallel
/// [`TmOrderedMap`] — and returns its running checksum plus both final
/// dumps.  Lookups and range scans run as declared read-only transactions,
/// so the history crosses the snapshot fast path wherever the runtime
/// offers one.
fn kv_history_outcome(kind: RuntimeKind, layout: MapLayout) -> (u64, Vec<(u64, u64)>) {
    use tm_core::backoff::XorShift64;

    const KEYSPACE: u64 = 96;
    const OPS: usize = 6_000;

    let rt = kind.build(TmConfig::default());
    let system = Arc::clone(rt.system());
    let th = system.register_thread();
    let store = TmHashMap::<u64, u64>::with_layout(&system, 256, layout);
    let index = TmOrderedMap::<u64, u64>::new(&system);

    let mut rng = XorShift64::new(0x6B56_0A11);
    let mut acc = 0u64;
    for step in 0..OPS {
        let op = rng.next() % 8;
        let key = rng.next() % KEYSPACE;
        match op {
            // Point lookup (declared read-only).
            0..=2 => {
                let got = rt.atomically_read(&th, |tx| store.get(tx, key));
                acc = acc.wrapping_add(got.unwrap_or(u64::MAX));
            }
            // Range scan over the ordered index (declared read-only).
            3 => {
                let hi = key + rng.next() % 16;
                let entries = rt.atomically_read(&th, |tx| index.range(tx, key, hi));
                for (k, v) in entries {
                    acc = acc.wrapping_add(k ^ v);
                }
            }
            // Delete from both structures in one transaction.
            4 => {
                let old = rt.atomically(&th, |tx| {
                    let old = store.remove(tx, key)?;
                    if old.is_some() {
                        index.remove(tx, key)?;
                    }
                    Ok(old)
                });
                acc = acc.wrapping_add(old.unwrap_or(7));
            }
            // Insert/update both structures in one transaction.
            _ => {
                let value = (step as u64) << 8 | op;
                let old = rt.atomically(&th, |tx| {
                    let old = store.insert(tx, key, value)?;
                    index.insert(tx, key, value)?;
                    Ok(old)
                });
                acc = acc.wrapping_add(old.unwrap_or(13));
            }
        }
    }

    let dump = store.dump_direct(&system);
    assert_eq!(
        dump,
        index.dump_direct(&system),
        "{kind} with {} layout: store and index diverged",
        layout.label()
    );
    (acc, dump)
}

#[test]
fn kv_history_is_identical_across_runtimes_and_layouts() {
    // The same seeded map/index history must produce one golden checksum
    // and one golden final image on every runtime and both map layouts:
    // the stripe-aligned layout is a contention lever, not a semantic one,
    // and the declared-read-only lookups must observe the same values
    // whether they run logged, as snapshots, or in hardware.
    let golden = kv_history_outcome(RuntimeKind::EagerStm, MapLayout::StripeAligned);
    assert!(!golden.1.is_empty(), "history must leave residual entries");
    for kind in RuntimeKind::ALL {
        for layout in MapLayout::ALL {
            let outcome = kv_history_outcome(kind, layout);
            assert_eq!(
                outcome,
                golden,
                "{kind} with {} layout diverged from the golden history",
                layout.label()
            );
        }
    }
}

#[test]
fn parity_holds_under_repetition() {
    // The scenario is timing-sensitive (waiters may skip the sleep if the
    // writer wins the race); repeat it to cover both interleavings.  Scaled
    // by the `TM_STRESS_ITERS` multiplier (the scheduled CI `stress` job
    // sets it to 10 for soak coverage without slowing the PR gate).
    let rounds = 3 * tm_repro::workloads::stress_iters();
    for round in 0..rounds {
        for kind in RuntimeKind::ALL {
            let result = run_scenario(kind);
            assert_eq!(result.final_count, 3, "{kind} round {round}");
            assert_eq!(result.observed.len(), 3, "{kind} round {round}");
        }
    }
}
