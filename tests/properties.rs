//! Property-based tests (proptest) over the core data structures and the
//! invariants the mechanisms rely on.

use std::collections::VecDeque;
use std::sync::Arc;

use proptest::prelude::*;

use condsync::Mechanism;
use tm_repro::prelude::*;
use tm_repro::workloads::pc::PcParams;
use tm_repro::workloads::runtime::RuntimeKind;

/// Operations for the bounded-buffer model test.
#[derive(Clone, Debug)]
enum BufOp {
    Put(u64),
    Get,
}

fn buf_op() -> impl Strategy<Value = BufOp> {
    prop_oneof![
        (1u64..1_000_000).prop_map(BufOp::Put),
        Just(BufOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 32,
        .. ProptestConfig::default()
    })]

    /// The transactional bounded buffer behaves exactly like a capacity-
    /// bounded VecDeque for any single-threaded sequence of puts and gets.
    #[test]
    fn bounded_buffer_matches_vecdeque_model(
        cap in 2usize..20,
        ops in proptest::collection::vec(buf_op(), 1..80),
    ) {
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let buffer = TmBoundedBuffer::new(&system, cap);
        let th = system.register_thread();
        let mut model: VecDeque<u64> = VecDeque::new();

        for op in ops {
            match op {
                BufOp::Put(v) => {
                    let full = rt.atomically(&th, |tx| buffer.full(tx));
                    prop_assert_eq!(full, model.len() == cap);
                    if !full {
                        rt.atomically(&th, |tx| buffer.put(tx, v));
                        model.push_back(v);
                    }
                }
                BufOp::Get => {
                    let empty = rt.atomically(&th, |tx| buffer.empty(tx));
                    prop_assert_eq!(empty, model.is_empty());
                    if !empty {
                        let got = rt.atomically(&th, |tx| buffer.get(tx));
                        prop_assert_eq!(Some(got), model.pop_front());
                    }
                }
            }
        }
        prop_assert_eq!(buffer.len_direct(&system), model.len() as u64);
    }

    /// Values written through a transaction are the values read back, for any
    /// u64 bit pattern, on every runtime.
    #[test]
    fn tmvar_round_trips_arbitrary_values(value in any::<u64>(), second in any::<u64>()) {
        for kind in RuntimeKind::ALL {
            let rt = kind.build(TmConfig::small());
            let system = Arc::clone(rt.system());
            let var = TmVar::<u64>::alloc(&system, value);
            let th = system.register_thread();
            let observed = rt.atomically(&th, |tx| var.get(tx));
            prop_assert_eq!(observed, value);
            rt.atomically(&th, |tx| var.set(tx, second))  ;
            prop_assert_eq!(var.load_direct(&system), second);
        }
    }

    /// The value-based wake-up condition fires exactly when some recorded
    /// location's current value differs from the recorded value — silent
    /// stores (same value) never wake, any real change does.
    #[test]
    fn values_changed_condition_fires_iff_some_value_differs(
        recorded in proptest::collection::vec((0usize..64, any::<u64>()), 1..16),
        flip_index in any::<prop::sample::Index>(),
        flip_delta in 1u64..1000,
    ) {
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let th = system.register_thread();

        // Deduplicate addresses (later entries would otherwise overwrite
        // earlier recorded values in memory but not in the waitset).
        let mut seen = std::collections::HashSet::new();
        let recorded: Vec<(Addr, u64)> = recorded
            .into_iter()
            .filter(|(a, _)| seen.insert(*a))
            .map(|(a, v)| (Addr(128 + a), v))
            .collect();

        // Memory exactly matches the waitset: must not wake.
        for &(a, v) in &recorded {
            system.heap.store(a, v);
        }
        let condition = tm_core::WaitCondition::ValuesChanged(recorded.clone());
        let wake = rt.atomically(&th, |tx| condition.should_wake(tx));
        prop_assert!(!wake, "silent state caused a wake-up");

        // Change exactly one recorded location: must wake.
        let (addr, val) = recorded[flip_index.index(recorded.len())];
        system.heap.store(addr, val.wrapping_add(flip_delta));
        let wake = rt.atomically(&th, |tx| condition.should_wake(tx));
        prop_assert!(wake, "a changed value failed to wake");
    }

    /// The micro-benchmark's work division is exact: every producer and every
    /// consumer gets an equal share and nothing is lost to rounding.
    #[test]
    fn pc_params_split_is_exact(
        producers in 1usize..9,
        consumers in 1usize..9,
        total in 1u64..100_000,
        buffer in 2usize..256,
    ) {
        let params = PcParams::new(producers, consumers, buffer, total, Mechanism::Retry);
        let eff = params.effective_total();
        prop_assert!(eff >= total);
        prop_assert_eq!(eff % producers as u64, 0);
        prop_assert_eq!(eff % consumers as u64, 0);
        prop_assert_eq!(params.items_per_producer() * producers as u64, eff);
        prop_assert_eq!(params.items_per_consumer() * consumers as u64, eff);
        // The rounding slack is always less than one extra item per thread
        // pair (bounded by lcm(p, c)).
        prop_assert!(eff - total < (producers as u64) * (consumers as u64));
        prop_assert!(params.prefill() <= buffer / 2);
    }

    /// Transactional allocation hands out non-overlapping regions and
    /// rollback returns them (no leaks observable through the allocator's
    /// bookkeeping).
    #[test]
    fn transactional_alloc_regions_do_not_overlap(sizes in proptest::collection::vec(1usize..16, 1..10)) {
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let th = system.register_thread();
        let addrs = rt.atomically(&th, |tx| {
            let mut out = Vec::new();
            for &s in &sizes {
                out.push((tx.alloc(s)?, s));
            }
            Ok(out)
        });
        // Regions must be pairwise disjoint.
        for (i, &(a, sa)) in addrs.iter().enumerate() {
            for &(b, sb) in addrs.iter().skip(i + 1) {
                let a_end = a.0 + sa;
                let b_end = b.0 + sb;
                prop_assert!(a_end <= b.0 || b_end <= a.0, "overlapping allocations");
            }
        }
    }

    /// The counter's `wait_for_at_least` returns immediately with the current
    /// value whenever the threshold is already met, for any threshold.
    #[test]
    fn counter_wait_returns_immediately_when_satisfied(start in 0u64..1000, threshold in 0u64..1000) {
        prop_assume!(threshold <= start);
        let rt = RuntimeKind::LazyStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let counter = TmCounter::new(&system, start);
        let th = system.register_thread();
        let v = rt.atomically(&th, |tx| counter.wait_for_at_least(Mechanism::Retry, tx, threshold));
        prop_assert_eq!(v, start);
        prop_assert_eq!(system.stats().sleeps, 0);
    }
}
