//! Property-based tests over the core data structures and the invariants the
//! mechanisms rely on.
//!
//! The seed version of this file used `proptest`, which cannot be fetched in
//! this offline build environment.  The same properties are checked here with
//! a deterministic xorshift generator driving randomized cases: every run
//! explores the same inputs, so failures are trivially reproducible, and each
//! property still sees dozens of distinct cases.

use std::collections::VecDeque;
use std::sync::Arc;

use condsync::Mechanism;
use tm_core::backoff::XorShift64;
use tm_repro::prelude::*;
use tm_repro::workloads::pc::PcParams;
use tm_repro::workloads::runtime::RuntimeKind;

const CASES: u64 = 32;

/// The transactional bounded buffer behaves exactly like a capacity-bounded
/// VecDeque for any single-threaded sequence of puts and gets.
#[test]
fn bounded_buffer_matches_vecdeque_model() {
    let mut rng = XorShift64::new(0xB0F0);
    for case in 0..CASES {
        let cap = 2 + (rng.next() % 18) as usize;
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let buffer = TmBoundedBuffer::new(&system, cap);
        let th = system.register_thread();
        let mut model: VecDeque<u64> = VecDeque::new();

        let ops = 1 + (rng.next() % 79) as usize;
        for _ in 0..ops {
            if rng.next().is_multiple_of(2) {
                let v = 1 + rng.next() % 1_000_000;
                let full = rt.atomically(&th, |tx| buffer.full(tx));
                assert_eq!(full, model.len() == cap, "case {case}");
                if !full {
                    rt.atomically(&th, |tx| buffer.put(tx, v));
                    model.push_back(v);
                }
            } else {
                let empty = rt.atomically(&th, |tx| buffer.empty(tx));
                assert_eq!(empty, model.is_empty(), "case {case}");
                if !empty {
                    let got = rt.atomically(&th, |tx| buffer.get(tx));
                    assert_eq!(Some(got), model.pop_front(), "case {case}");
                }
            }
        }
        assert_eq!(
            buffer.len_direct(&system),
            model.len() as u64,
            "case {case}"
        );
    }
}

/// Values written through a transaction are the values read back, for any
/// u64 bit pattern, on every runtime.
#[test]
fn tmvar_round_trips_arbitrary_values() {
    let mut rng = XorShift64::new(0x707A);
    for _ in 0..CASES {
        let value = rng.next();
        let second = rng.next();
        for kind in RuntimeKind::ALL {
            let rt = kind.build(TmConfig::small());
            let system = Arc::clone(rt.system());
            let var = TmVar::<u64>::alloc(&system, value);
            let th = system.register_thread();
            let observed = rt.atomically(&th, |tx| var.get(tx));
            assert_eq!(observed, value, "{kind}");
            rt.atomically(&th, |tx| var.set(tx, second));
            assert_eq!(var.load_direct(&system), second, "{kind}");
        }
    }
}

/// The value-based wake-up condition fires exactly when some recorded
/// location's current value differs from the recorded value — silent stores
/// (same value) never wake, any real change does.
#[test]
fn values_changed_condition_fires_iff_some_value_differs() {
    let mut rng = XorShift64::new(0xC0DE);
    for case in 0..CASES {
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let th = system.register_thread();

        // Distinct addresses with arbitrary recorded values.
        let len = 1 + (rng.next() % 15) as usize;
        let mut recorded: Vec<(Addr, u64)> = Vec::new();
        for _ in 0..len {
            let a = Addr(128 + (rng.next() % 64) as usize);
            if !recorded.iter().any(|&(x, _)| x == a) {
                recorded.push((a, rng.next()));
            }
        }

        // Memory exactly matches the waitset: must not wake.
        for &(a, v) in &recorded {
            system.heap.store(a, v);
        }
        let condition = tm_repro::core::WaitCondition::ValuesChanged(recorded.clone());
        let wake = rt.atomically(&th, |tx| condition.should_wake(tx));
        assert!(!wake, "case {case}: silent state caused a wake-up");

        // Change exactly one recorded location: must wake.
        let (addr, val) = recorded[(rng.next() % recorded.len() as u64) as usize];
        let delta = 1 + rng.next() % 999;
        system.heap.store(addr, val.wrapping_add(delta));
        let wake = rt.atomically(&th, |tx| condition.should_wake(tx));
        assert!(wake, "case {case}: a changed value failed to wake");
    }
}

/// The micro-benchmark's work division is exact: every producer and every
/// consumer gets an equal share and nothing is lost to rounding.
#[test]
fn pc_params_split_is_exact() {
    let mut rng = XorShift64::new(0x5717);
    for case in 0..CASES {
        let producers = 1 + (rng.next() % 8) as usize;
        let consumers = 1 + (rng.next() % 8) as usize;
        let total = 1 + rng.next() % 99_999;
        let buffer = 2 + (rng.next() % 254) as usize;

        let params = PcParams::new(producers, consumers, buffer, total, Mechanism::Retry);
        let eff = params.effective_total();
        assert!(eff >= total, "case {case}");
        assert_eq!(eff % producers as u64, 0, "case {case}");
        assert_eq!(eff % consumers as u64, 0, "case {case}");
        assert_eq!(
            params.items_per_producer() * producers as u64,
            eff,
            "case {case}"
        );
        assert_eq!(
            params.items_per_consumer() * consumers as u64,
            eff,
            "case {case}"
        );
        // The rounding slack is always less than one extra item per thread
        // pair (bounded by lcm(p, c)).
        assert!(
            eff - total < (producers as u64) * (consumers as u64),
            "case {case}"
        );
        assert!(params.prefill() <= buffer / 2, "case {case}");
    }
}

/// Transactional allocation hands out non-overlapping regions and rollback
/// returns them (no leaks observable through the allocator's bookkeeping).
#[test]
fn transactional_alloc_regions_do_not_overlap() {
    let mut rng = XorShift64::new(0xA110);
    for case in 0..CASES {
        let sizes: Vec<usize> = (0..1 + (rng.next() % 9) as usize)
            .map(|_| 1 + (rng.next() % 15) as usize)
            .collect();
        let rt = RuntimeKind::EagerStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let th = system.register_thread();
        let addrs = rt.atomically(&th, |tx| {
            let mut out = Vec::new();
            for &s in &sizes {
                out.push((tx.alloc(s)?, s));
            }
            Ok(out)
        });
        // Regions must be pairwise disjoint.
        for (i, &(a, sa)) in addrs.iter().enumerate() {
            for &(b, sb) in addrs.iter().skip(i + 1) {
                let a_end = a.0 + sa;
                let b_end = b.0 + sb;
                assert!(
                    a_end <= b.0 || b_end <= a.0,
                    "case {case}: overlapping allocations"
                );
            }
        }
    }
}

/// The counter's `wait_for_at_least` returns immediately with the current
/// value whenever the threshold is already met, for any threshold.
#[test]
fn counter_wait_returns_immediately_when_satisfied() {
    let mut rng = XorShift64::new(0xC417);
    for case in 0..CASES {
        let start = rng.next() % 1000;
        let threshold = if start == 0 {
            0
        } else {
            rng.next() % (start + 1)
        };
        let rt = RuntimeKind::LazyStm.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let counter = TmCounter::new(&system, start);
        let th = system.register_thread();
        let v = rt.atomically(&th, |tx| {
            counter.wait_for_at_least(Mechanism::Retry, tx, threshold)
        });
        assert_eq!(v, start, "case {case}");
        assert_eq!(system.stats().sleeps, 0, "case {case}");
    }
}
