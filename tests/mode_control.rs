//! The unified mode-control plane, end to end: the system-wide serial gate,
//! `TxCtl::BecomeSerial` on every runtime, policy-driven escalation, and the
//! hybrid runtime's mixed hardware/software conflict detection.
//!
//! The forced-serial sweep re-runs the serializability invariants with every
//! Nth transaction escalated to serial mode on all four runtimes, so
//! gate acquisition/release interleaves with ordinary optimistic commits.

use std::sync::Arc;

use tm_repro::core::policy::PolicyKind;
use tm_repro::core::tx::TxMode;
use tm_repro::prelude::*;
use tm_repro::workloads::runtime::RuntimeKind;

use tm_repro::workloads::stress_iters as stress_mult;

const THREADS: usize = 4;

/// Every `period`-th transaction of each thread requests `BecomeSerial` on
/// its first (non-serial) attempt, so serial sections continuously
/// interleave with optimistic commits.
fn forced_serial_counter_sweep(kind: RuntimeKind, period: u64) {
    let per_thread: u64 = 200 * stress_mult();
    let rt = kind.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let counter = TmVar::<u64>::alloc(&system, 0);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let counter = counter.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                for i in 0..per_thread {
                    let force_serial = i % period == 0;
                    rt.atomically(&th, |tx| {
                        if force_serial && tx.mode() != TxMode::Serial {
                            return Err(TxCtl::BecomeSerial);
                        }
                        let x = counter.get(tx)?;
                        counter.set(tx, x + 1)
                    });
                }
            });
        }
    });
    assert_eq!(
        counter.load_direct(&system),
        THREADS as u64 * per_thread,
        "lost updates with forced-serial transactions on {kind}"
    );
    let stats = system.stats();
    let forced = THREADS as u64 * per_thread.div_ceil(period);
    // At least every forced transaction commits serially; the pure HTM may
    // add organic escalations of its own (contention spending the
    // speculative budget), so this is a floor, not an exact count.
    assert!(
        stats.serial_commits >= forced,
        "{kind}: every forced transaction must commit serially \
         (serial {} < forced {forced})",
        stats.serial_commits
    );
    assert!(
        stats.serial_acquires >= forced,
        "{kind}: serial commits require gate acquisitions"
    );
    assert!(
        stats.mode_switches >= forced,
        "{kind}: BecomeSerial must register as a mode switch"
    );
    assert!(!system.serial.held(), "{kind}: the gate must be released");
}

#[test]
fn forced_serial_sweep_preserves_serializability_on_all_runtimes() {
    for kind in RuntimeKind::ALL {
        forced_serial_counter_sweep(kind, 5);
    }
}

#[test]
fn serial_sections_are_opaque_to_concurrent_readers() {
    // A serial writer updates two locations with a deliberate pause in
    // between; transactional readers must never observe the intermediate
    // state (one updated, the other not), on any runtime.
    const ROUNDS: u64 = 30;
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let a = TmVar::<u64>::alloc(&system, 0);
        let b = TmVar::<u64>::alloc(&system, 0);
        std::thread::scope(|scope| {
            {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let (a, b) = (a.clone(), b.clone());
                scope.spawn(move || {
                    let th = system.register_thread();
                    for round in 1..=ROUNDS {
                        rt.atomically(&th, |tx| {
                            if tx.mode() != TxMode::Serial {
                                return Err(TxCtl::BecomeSerial);
                            }
                            a.set(tx, round)?;
                            // Widen the window in which a non-excluded
                            // reader would see a != b.
                            std::hint::black_box(&a);
                            std::thread::yield_now();
                            b.set(tx, round)
                        });
                    }
                });
            }
            for _ in 0..2 {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let (a, b) = (a.clone(), b.clone());
                scope.spawn(move || {
                    let th = system.register_thread();
                    loop {
                        let (x, y) = rt.atomically(&th, |tx| Ok((a.get(tx)?, b.get(tx)?)));
                        assert_eq!(x, y, "{kind}: reader observed a torn serial section");
                        if x == ROUNDS {
                            return;
                        }
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert!(!system.serial.held());
    }
}

#[test]
fn adaptive_policy_escalates_a_starving_transaction() {
    // Deterministic starvation: the body reports contention aborts until the
    // driver escalates it to the serial rung, where it must finally commit.
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small().with_policy(PolicyKind::Adaptive {
            contention_threshold: 3,
        }));
        let system = Arc::clone(rt.system());
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 7);
        let got = rt.atomically(&th, |tx| {
            if tx.mode() != TxMode::Serial {
                return Err(TxCtl::Abort(tm_repro::core::AbortReason::WriteConflict));
            }
            v.get(tx)
        });
        assert_eq!(got, 7, "{kind}");
        let stats = th.stats.snapshot();
        assert!(
            stats.cm_escalations >= 1,
            "{kind}: the policy must have escalated"
        );
        assert_eq!(stats.serial_commits, 1, "{kind}");
        assert!(!system.serial.held(), "{kind}");
    }
}

#[test]
fn stubborn_policy_escalates_after_its_patience() {
    let rt = RuntimeKind::EagerStm
        .build(TmConfig::small().with_policy(PolicyKind::Stubborn { patience: 4 }));
    let system = Arc::clone(rt.system());
    let th = system.register_thread();
    let v = TmVar::<u64>::alloc(&system, 1);
    let mut aborts_seen = 0u32;
    let got = rt.atomically(&th, |tx| {
        if tx.mode() != TxMode::Serial {
            aborts_seen += 1;
            return Err(TxCtl::Abort(tm_repro::core::AbortReason::ReadConflict));
        }
        v.get(tx)
    });
    assert_eq!(got, 1);
    assert_eq!(
        aborts_seen, 5,
        "patience 4 tolerates four aborts; the fifth escalates"
    );
    assert_eq!(th.stats.snapshot().cm_escalations, 1);
}

#[test]
fn hybrid_mixed_hw_sw_conflicts_are_serializable() {
    // Hardware and software transactions hammer the same counter; every
    // cross-path conflict must be detected (software commits doom
    // overlapping hardware lines, hardware commits publish to the orecs),
    // or increments would be lost.
    let per_thread: u64 = 400 * stress_mult();
    let rt = RuntimeKind::Hybrid.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let counter = TmVar::<u64>::alloc(&system, 0);
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let counter = counter.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                for i in 0..per_thread {
                    let force_sw = (tid as u64 + i).is_multiple_of(2);
                    rt.atomically(&th, |tx| {
                        if force_sw && tx.mode() == TxMode::Hardware {
                            return Err(TxCtl::SwitchToSoftware);
                        }
                        let x = counter.get(tx)?;
                        counter.set(tx, x + 1)
                    });
                }
            });
        }
    });
    assert_eq!(
        counter.load_direct(&system),
        THREADS as u64 * per_thread,
        "a hardware/software conflict went undetected"
    );
    let stats = system.stats();
    assert!(stats.hw_commits > 0, "the hardware path must participate");
    assert!(stats.sw_commits > 0, "the software path must participate");
}

#[test]
fn hybrid_commits_in_hardware_under_low_contention() {
    use condsync::Mechanism;
    use tm_repro::workloads::pc::{run_pc, PcParams};
    let params = PcParams::new(1, 1, 64, 1024, Mechanism::Retry);
    let result = run_pc(RuntimeKind::Hybrid, &params);
    assert!(result.checksum_ok);
    assert!(
        result.stats.hw_commits > 0,
        "an uncontended hybrid workload must use the hardware fast path"
    );
}

#[test]
fn hybrid_degrades_to_software_not_serial_under_contention() {
    use condsync::Mechanism;
    use tm_repro::workloads::pc::{run_pc, PcParams};
    let params = PcParams::new(4, 4, 2, 2048, Mechanism::Retry);
    let result = run_pc(RuntimeKind::Hybrid, &params);
    assert!(result.checksum_ok);
    assert!(
        result.stats.sw_commits > 0,
        "contended hybrid transactions must complete on the software path"
    );
    assert!(
        result.stats.serial_commits < result.stats.sw_commits,
        "contention must not collapse onto the serial gate (serial {} >= sw {})",
        result.stats.serial_commits,
        result.stats.sw_commits
    );
}

#[test]
fn explicit_aborts_surface_in_aggregated_stats() {
    // The Restart baseline's aborts were previously invisible in reports;
    // they must flow through the aggregated snapshot on every runtime.
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let th = system.register_thread();
        let flag = TmVar::<u64>::alloc(&system, 1);
        let mut restarts = 3u32;
        rt.atomically(&th, |tx| {
            let v = flag.get(tx)?;
            if restarts > 0 {
                restarts -= 1;
                return condsync::restart(tx);
            }
            Ok(v)
        });
        assert_eq!(
            system.stats().explicit_aborts,
            3,
            "{kind}: every Restart must be counted"
        );
    }
}
