//! Integration tests that the three runtimes provide the isolation the
//! condition-synchronization layer assumes: concurrent transactions behave as
//! if executed in some serial order (no lost updates, invariants preserved
//! across transfers), and transactional data structures stay consistent under
//! contention.

use std::sync::Arc;

use tm_core::ClockMode;
use tm_repro::prelude::*;
use tm_repro::workloads::runtime::RuntimeKind;

const THREADS: usize = 4;

#[test]
fn concurrent_counter_increments_are_serializable() {
    const PER_THREAD: u64 = 300;
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let counter = TmCounter::new(&system, 0);
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let counter = counter.clone();
                scope.spawn(move || {
                    let th = system.register_thread();
                    for _ in 0..PER_THREAD {
                        rt.atomically(&th, |tx| counter.increment(tx).map(|_| ()));
                    }
                });
            }
        });
        assert_eq!(
            counter.load_direct(&system),
            THREADS as u64 * PER_THREAD,
            "lost updates on {kind}"
        );
    }
}

#[test]
fn bank_transfers_conserve_total_balance() {
    const ACCOUNTS: usize = 8;
    const TRANSFERS: u64 = 250;
    const INITIAL: u64 = 1_000;

    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let accounts: Arc<Vec<TmVar<u64>>> = Arc::new(
            (0..ACCOUNTS)
                .map(|_| TmVar::alloc(&system, INITIAL))
                .collect(),
        );

        std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let accounts = Arc::clone(&accounts);
                scope.spawn(move || {
                    let th = system.register_thread();
                    let mut seed = 0x1234_5678_u64.wrapping_add(tid as u64);
                    for _ in 0..TRANSFERS {
                        // xorshift for reproducible pseudo-random pairs.
                        seed ^= seed << 13;
                        seed ^= seed >> 7;
                        seed ^= seed << 17;
                        let from = (seed % ACCOUNTS as u64) as usize;
                        let to = ((seed >> 8) % ACCOUNTS as u64) as usize;
                        let amount = seed % 5;
                        rt.atomically(&th, |tx| {
                            let f = accounts[from].get(tx)?;
                            if f < amount || from == to {
                                return Ok(());
                            }
                            let t = accounts[to].get(tx)?;
                            accounts[from].set(tx, f - amount)?;
                            accounts[to].set(tx, t + amount)
                        });
                    }
                });
            }
        });

        let total: u64 = accounts.iter().map(|a| a.load_direct(&system)).sum();
        assert_eq!(
            total,
            ACCOUNTS as u64 * INITIAL,
            "money was created or destroyed on {kind}"
        );
    }
}

#[test]
fn queue_and_stack_do_not_lose_elements_under_contention() {
    const PER_THREAD: u64 = 150;
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::default().with_heap_words(1 << 16));
        let system = Arc::clone(rt.system());
        let queue = TmQueue::new(&system);
        let stack = TmStack::new(&system);

        std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let queue = queue.clone();
                let stack = stack.clone();
                scope.spawn(move || {
                    let th = system.register_thread();
                    for i in 0..PER_THREAD {
                        let value = tid as u64 * PER_THREAD + i + 1;
                        rt.atomically(&th, |tx| queue.enqueue(tx, value));
                        rt.atomically(&th, |tx| stack.push(tx, value));
                    }
                });
            }
        });

        assert_eq!(
            queue.len_direct(&system),
            THREADS as u64 * PER_THREAD,
            "{kind}"
        );
        assert_eq!(
            stack.len_direct(&system),
            THREADS as u64 * PER_THREAD,
            "{kind}"
        );

        // Drain both and check every value appears exactly once.
        let th = system.register_thread();
        let mut seen_q = vec![false; (THREADS as u64 * PER_THREAD) as usize + 1];
        let mut seen_s = seen_q.clone();
        loop {
            let v = rt.atomically(&th, |tx| queue.try_dequeue(tx));
            match v {
                Some(v) => {
                    assert!(!seen_q[v as usize], "duplicate queue element {v} on {kind}");
                    seen_q[v as usize] = true;
                }
                None => break,
            }
        }
        loop {
            let v = rt.atomically(&th, |tx| stack.try_pop(tx));
            match v {
                Some(v) => {
                    assert!(!seen_s[v as usize], "duplicate stack element {v} on {kind}");
                    seen_s[v as usize] = true;
                }
                None => break,
            }
        }
        assert_eq!(
            seen_q.iter().filter(|&&b| b).count() as u64,
            THREADS as u64 * PER_THREAD
        );
        assert_eq!(
            seen_s.iter().filter(|&&b| b).count() as u64,
            THREADS as u64 * PER_THREAD
        );
    }
}

#[test]
fn clock_modes_preserve_serializability_and_version_monotonicity() {
    // The clock-plane sweep: the contended-counter workload must stay
    // serializable (no lost updates) under both GV1 and lazy GV5 on every
    // runtime, and the ownership records covering the counter must never
    // publish a regressing version — the invariant non-unique lazy stamps
    // could violate if a commit ever stamped below an already-released
    // version.  A watcher thread samples the orecs concurrently with the
    // workload and tracks every unlocked version it observes.
    use std::sync::atomic::{AtomicBool, Ordering};

    const PER_THREAD: u64 = 200;
    for mode in [ClockMode::Gv1, ClockMode::LazyGv5] {
        for kind in RuntimeKind::ALL {
            let rt = kind.build(TmConfig::small().with_clock(mode));
            let system = Arc::clone(rt.system());
            let counter = TmCounter::new(&system, 0);
            let watched: Vec<usize> = (0..system.orecs.len()).collect();
            let done = AtomicBool::new(false);

            std::thread::scope(|scope| {
                let watcher_system = Arc::clone(&system);
                let watcher_done = &done;
                let watcher_watched = &watched;
                scope.spawn(move || {
                    let mut floors = vec![0u64; watcher_watched.len()];
                    while !watcher_done.load(Ordering::Acquire) {
                        for (&idx, floor) in watcher_watched.iter().zip(floors.iter_mut()) {
                            let v = watcher_system.orecs.load(idx);
                            if v.is_locked() {
                                continue;
                            }
                            assert!(
                                v.version() >= *floor,
                                "{kind} under {}: orec {idx} regressed from {} to {}",
                                mode.label(),
                                floor,
                                v.version()
                            );
                            *floor = v.version();
                        }
                        std::thread::yield_now();
                    }
                });

                // Inner scope: joins the workers, after which the watcher is
                // released — the outer scope then joins the watcher itself.
                std::thread::scope(|workers| {
                    for _ in 0..THREADS {
                        let rt = rt.clone();
                        let system = Arc::clone(&system);
                        let counter = counter.clone();
                        workers.spawn(move || {
                            let th = system.register_thread();
                            for _ in 0..PER_THREAD {
                                rt.atomically(&th, |tx| counter.increment(tx).map(|_| ()));
                            }
                        });
                    }
                });
                done.store(true, Ordering::Release);
            });

            assert_eq!(
                counter.load_direct(&system),
                THREADS as u64 * PER_THREAD,
                "lost updates on {kind} under {}",
                mode.label()
            );
        }
    }
}

#[test]
fn snapshot_readers_never_observe_torn_invariants() {
    // Read-only opacity for the snapshot read path: declared read-only
    // transactions scan a multi-word invariant (cells that always sum to
    // TOTAL) while writers continuously move value between cells.  A torn
    // snapshot — any mix of pre- and post-transfer cells — breaks the sum.
    // Swept over both clock planes and both snapshot flavours on every
    // runtime; iteration counts scale with `TM_STRESS_ITERS` for the
    // scheduled soak job.
    use std::sync::atomic::{AtomicBool, Ordering};
    use tm_core::SnapshotMode;

    const CELLS: usize = 6;
    const TOTAL: u64 = 6_000;
    const READERS: usize = 2;
    const WRITERS: usize = 2;
    let transfers: u64 = 150 * tm_repro::workloads::stress_iters();

    for mode in [ClockMode::Gv1, ClockMode::LazyGv5] {
        for snapshot in [SnapshotMode::On, SnapshotMode::Extend] {
            for kind in RuntimeKind::ALL {
                let rt = kind.build(TmConfig::small().with_clock(mode).with_snapshot(snapshot));
                let system = Arc::clone(rt.system());
                let cells: Arc<Vec<TmVar<u64>>> = Arc::new(
                    (0..CELLS)
                        .map(|i| TmVar::alloc(&system, if i == 0 { TOTAL } else { 0 }))
                        .collect(),
                );
                let done = AtomicBool::new(false);

                std::thread::scope(|scope| {
                    for _ in 0..READERS {
                        let rt = rt.clone();
                        let system = Arc::clone(&system);
                        let cells = Arc::clone(&cells);
                        let done = &done;
                        scope.spawn(move || {
                            let th = system.register_thread();
                            while !done.load(Ordering::Acquire) {
                                let sum: u64 = rt.atomically_read(&th, |tx| {
                                    let mut s = 0u64;
                                    for c in cells.iter() {
                                        s += c.get(tx)?;
                                    }
                                    Ok(s)
                                });
                                assert_eq!(
                                    sum,
                                    TOTAL,
                                    "{kind} under {} / {}: torn read-only snapshot",
                                    mode.label(),
                                    snapshot.label()
                                );
                            }
                        });
                    }
                    // Inner scope joins the writers, after which the readers
                    // are released; the outer scope then joins the readers.
                    std::thread::scope(|writers| {
                        for tid in 0..WRITERS {
                            let rt = rt.clone();
                            let system = Arc::clone(&system);
                            let cells = Arc::clone(&cells);
                            writers.spawn(move || {
                                let th = system.register_thread();
                                let mut seed = 0x9E37_79B9_u64.wrapping_add(tid as u64);
                                for _ in 0..transfers {
                                    seed ^= seed << 13;
                                    seed ^= seed >> 7;
                                    seed ^= seed << 17;
                                    let from = (seed % CELLS as u64) as usize;
                                    let to = ((seed >> 8) % CELLS as u64) as usize;
                                    rt.atomically(&th, |tx| {
                                        let f = cells[from].get(tx)?;
                                        if f == 0 || from == to {
                                            return Ok(());
                                        }
                                        let t = cells[to].get(tx)?;
                                        cells[from].set(tx, f - 1)?;
                                        cells[to].set(tx, t + 1)
                                    });
                                }
                            });
                        }
                    });
                    done.store(true, Ordering::Release);
                });

                let total: u64 = cells.iter().map(|c| c.load_direct(&system)).sum();
                assert_eq!(total, TOTAL, "{kind}: writers corrupted the invariant");
                let stats = system.stats();
                assert!(
                    stats.ro_fast_commits > 0,
                    "{kind} under {} / {}: no read-only fast commits recorded",
                    mode.label(),
                    snapshot.label()
                );
            }
        }
    }
}

#[test]
fn transactional_barrier_keeps_phases_in_lockstep() {
    use condsync::Mechanism;
    const PHASES: u64 = 12;
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::small());
        let system = Arc::clone(rt.system());
        let barrier = TmBarrier::new(&system, THREADS as u64);
        // One cell per thread records its current phase; at every barrier all
        // cells must be equal.
        let phases: Arc<Vec<TmVar<u64>>> =
            Arc::new((0..THREADS).map(|_| TmVar::alloc(&system, 0)).collect());

        std::thread::scope(|scope| {
            for tid in 0..THREADS {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let barrier = barrier.clone();
                let phases = Arc::clone(&phases);
                scope.spawn(move || {
                    let th = system.register_thread();
                    for phase in 1..=PHASES {
                        rt.atomically(&th, |tx| phases[tid].set(tx, phase));
                        barrier.wait(&rt, &th, Mechanism::Retry);
                        // After the barrier nobody can still be on a phase
                        // older than ours minus zero: everyone has written
                        // at least `phase`.
                        let snapshot: Vec<u64> = (0..THREADS)
                            .map(|i| rt.atomically(&th, |tx| phases[i].get(tx)))
                            .collect();
                        for &p in &snapshot {
                            assert!(
                                p >= phase,
                                "{kind}: thread observed a straggler at phase {p} < {phase}"
                            );
                        }
                        barrier.wait(&rt, &th, Mechanism::Retry);
                    }
                });
            }
        });
    }
}
