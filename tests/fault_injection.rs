//! Deterministic hardware fault injection: the seeded [`FaultPlane`] matrix.
//!
//! Every test here runs with an explicit [`FaultConfig`] — a fixed seed plus
//! one or more injection knobs — layered between the HTM runtimes and the
//! simulated hardware backend.  The assertions are always the same two
//! properties, exercised per fault kind and per runtime:
//!
//! 1. **No lost work**: injected aborts (conflict, capacity, spurious, and
//!    aborts inside the commit window) may slow a transaction down but never
//!    lose its updates — counters end exact, the producer/consumer checksum
//!    balances.
//! 2. **The ladder degrades, it does not wedge**: a hardware path that keeps
//!    faulting climbs to the software path (hybrid) or the serial gate (pure
//!    HTM) and finishes there.
//!
//! The software runtimes have no hardware plane, so a fault configuration is
//! inert on them — which is exactly what the golden-parity test checks.
//!
//! [`FaultPlane`]: tm_repro::core::FaultPlane
//! [`FaultConfig`]: tm_repro::core::FaultConfig

use std::sync::Arc;

use tm_repro::core::{FaultConfig, StatsSnapshot, TmArray, TmConfig, TmVar};
use tm_repro::sync::Mechanism;
use tm_repro::workloads::pc::{run_pc, run_pc_configured, PcParams};
use tm_repro::workloads::runtime::RuntimeKind;

/// A fixed seed so every run of this suite injects the same fault schedule.
const SEED: u64 = 0x5EED_FA17_0000_0001;

/// Threads hammering the shared counter.
const THREADS: usize = 4;

/// Increments per thread.
const INCS: u64 = 256;

/// Array indices one cache line (8 words) apart: four distinct lines, so
/// footprint-based capacity knobs have something to trip on.
const CELLS: [usize; 4] = [0, 8, 16, 24];

/// Runs `THREADS x INCS` concurrent increments of one shared counter on
/// `kind` with the given fault configuration, asserts no update was lost,
/// and returns the aggregated statistics.
fn hammer_counter(kind: RuntimeKind, fault: FaultConfig) -> StatsSnapshot {
    let rt = kind.build(TmConfig::small().with_fault(fault));
    let system = Arc::clone(rt.system());
    let counter = TmVar::<u64>::alloc(&system, 0);
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let counter = counter.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                for _ in 0..INCS {
                    rt.atomically(&th, |tx| {
                        let v = counter.get(tx)?;
                        counter.set(tx, v + 1)
                    });
                }
            });
        }
    });
    assert_eq!(
        counter.load_direct(&system),
        THREADS as u64 * INCS,
        "updates lost on {kind} under {fault:?}"
    );
    system.stats()
}

/// Like [`hammer_counter`] but each transaction reads and increments four
/// cells one line apart, so its footprint spans four distinct cache lines.
fn hammer_lines(kind: RuntimeKind, fault: FaultConfig, threads: usize, txs: u64) -> StatsSnapshot {
    let rt = kind.build(TmConfig::small().with_fault(fault));
    let system = Arc::clone(rt.system());
    let cells = TmArray::<u64>::alloc(&system, 32, 0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let cells = cells.clone();
            scope.spawn(move || {
                let th = system.register_thread();
                for _ in 0..txs {
                    rt.atomically(&th, |tx| {
                        for &i in &CELLS {
                            let v = cells.get(tx, i)?;
                            cells.set(tx, i, v + 1)?;
                        }
                        Ok(())
                    });
                }
            });
        }
    });
    for &i in &CELLS {
        assert_eq!(
            cells.load_direct(&system, i),
            threads as u64 * txs,
            "cell {i} lost updates on {kind} under {fault:?}"
        );
    }
    system.stats()
}

// --- Degradation: the ladder climbs off the faulting hardware path. -------

#[test]
fn injected_conflicts_degrade_htm_to_serial() {
    let stats = hammer_counter(
        RuntimeKind::Htm,
        FaultConfig {
            seed: SEED,
            conflict_per_64k: 16384, // ~25% per speculative access
            ..FaultConfig::default()
        },
    );
    assert!(stats.hw_faults_injected > 0, "the plane must have fired");
    assert!(stats.hw_aborts >= stats.hw_faults_injected);
    assert!(
        stats.serial_commits > 0,
        "pure HTM's only fallback is the serial gate; got {stats:?}"
    );
}

#[test]
fn injected_conflicts_degrade_hybrid_to_software() {
    let stats = hammer_counter(
        RuntimeKind::Hybrid,
        FaultConfig {
            seed: SEED,
            conflict_per_64k: 16384,
            ..FaultConfig::default()
        },
    );
    assert!(stats.hw_faults_injected > 0, "the plane must have fired");
    assert!(
        stats.sw_commits > 0,
        "the hybrid must degrade Hw -> Sw, not jump straight to serial; got {stats:?}"
    );
}

#[test]
fn capacity_faults_fire_at_the_configured_write_footprint() {
    // Every transaction writes 4 distinct lines; the injected write capacity
    // is 2 lines, so no hardware attempt can ever reach its commit point.
    let stats = hammer_lines(
        RuntimeKind::Htm,
        FaultConfig {
            seed: SEED,
            capacity_write_lines: 2,
            ..FaultConfig::default()
        },
        1,
        64,
    );
    assert!(stats.hw_faults_injected > 0);
    assert_eq!(
        stats.hw_commits, 0,
        "a 4-line writer can never fit in a 2-line capacity"
    );
    assert!(stats.serial_commits > 0, "all work must finish serially");
}

#[test]
fn poisoned_lines_force_all_work_off_speculation() {
    // conflict_line_mod = 1 dooms every cache line: the hardware path is
    // useless, but the ladder still finishes every transaction.
    for kind in [RuntimeKind::Htm, RuntimeKind::Hybrid] {
        let stats = hammer_counter(
            kind,
            FaultConfig {
                seed: SEED,
                conflict_line_mod: 1,
                ..FaultConfig::default()
            },
        );
        assert!(stats.hw_faults_injected > 0, "{kind}");
        assert_eq!(
            stats.hw_commits, 0,
            "every speculative access faults, so nothing can hw-commit ({kind})"
        );
    }
}

// --- No lost updates, per fault kind and runtime (the seeded matrix). -----

#[test]
fn fault_matrix_conserves_on_both_hardware_runtimes() {
    // fault kind x rate x runtime: each cell runs the 4-line walker and the
    // helper asserts exact conservation; here we additionally require that
    // the configured kind actually fired.
    let kinds = [
        (
            "conflict",
            FaultConfig {
                seed: SEED,
                conflict_per_64k: 8192, // ~12.5% per access
                ..FaultConfig::default()
            },
        ),
        (
            "capacity",
            FaultConfig {
                seed: SEED,
                capacity_read_lines: 2, // the walker reads 4 lines
                ..FaultConfig::default()
            },
        ),
        (
            "spurious",
            FaultConfig {
                seed: SEED,
                spurious_per_64k: 8192,
                ..FaultConfig::default()
            },
        ),
        (
            "commit-window",
            FaultConfig {
                seed: SEED,
                commit_window_per_64k: 32768, // half of all commit attempts
                ..FaultConfig::default()
            },
        ),
    ];
    for runtime in [RuntimeKind::Htm, RuntimeKind::Hybrid] {
        for (name, fault) in kinds {
            let stats = hammer_lines(runtime, fault, THREADS, 64);
            assert!(
                stats.hw_faults_injected > 0,
                "{name} on {runtime}: the plane never fired"
            );
        }
    }
}

#[test]
fn commit_window_aborts_lose_no_updates() {
    // The sharpest lost-update window: the abort lands after the doom check,
    // inside the commit critical section, before write-back.  Conservation
    // is asserted by the helper; also check the ladder stayed live.
    for kind in [RuntimeKind::Htm, RuntimeKind::Hybrid] {
        let stats = hammer_counter(
            kind,
            FaultConfig {
                seed: SEED,
                commit_window_per_64k: 32768,
                ..FaultConfig::default()
            },
        );
        assert!(stats.hw_faults_injected > 0, "{kind}");
        assert!(
            stats.hw_commits + stats.sw_commits + stats.serial_commits >= THREADS as u64 * INCS,
            "{kind}: every increment must have committed somewhere"
        );
    }
}

#[test]
fn spurious_faults_rerun_without_losing_updates() {
    for kind in [RuntimeKind::Htm, RuntimeKind::Hybrid] {
        let stats = hammer_counter(
            kind,
            FaultConfig {
                seed: SEED,
                spurious_per_64k: 8192,
                ..FaultConfig::default()
            },
        );
        assert!(stats.hw_faults_injected > 0, "{kind}");
    }
}

// --- Golden parity: a faulty hardware plane changes timing, not results. --

#[test]
fn golden_parity_with_the_zero_fault_baseline() {
    let fault = FaultConfig {
        seed: SEED,
        conflict_per_64k: 4096,
        spurious_per_64k: 2048,
        commit_window_per_64k: 8192,
        ..FaultConfig::default()
    };
    for kind in RuntimeKind::ALL {
        let params = PcParams::new(2, 2, 8, 256, Mechanism::Retry);
        let baseline = run_pc(kind, &params);
        let config = TmConfig {
            heap_words: params.heap_words(),
            ..TmConfig::default()
        }
        .with_fault(fault);
        let faulty = run_pc_configured(kind, &params, config);

        assert!(baseline.checksum_ok, "{kind}: zero-fault baseline");
        assert!(faulty.checksum_ok, "{kind}: under injection");
        assert_eq!(faulty.produced, baseline.produced, "{kind}");
        assert_eq!(faulty.consumed, baseline.consumed, "{kind}");

        // The software runtimes have no hardware plane: injection is inert.
        if matches!(kind, RuntimeKind::EagerStm | RuntimeKind::LazyStm) {
            assert_eq!(
                faulty.stats.hw_faults_injected, 0,
                "{kind} has no hardware plane to fault"
            );
        }
    }
}

// --- The env knobs soak jobs use. -----------------------------------------

#[test]
fn fault_env_knobs_parse_into_a_config() {
    // No other test in this binary reads TM_FAULT_*: injection everywhere
    // else comes in through TmConfig, so mutating the process environment
    // here cannot race a concurrent test.
    let vars = [
        ("TM_FAULT_SEED", "12345"),
        ("TM_FAULT_CONFLICT", "100"),
        ("TM_FAULT_CONFLICT_LINE_MOD", "16"),
        ("TM_FAULT_CAP_READ", "32"),
        ("TM_FAULT_CAP_WRITE", "8"),
        ("TM_FAULT_SPURIOUS", "200"),
        ("TM_FAULT_COMMIT", "300"),
    ];
    for (k, v) in vars {
        std::env::set_var(k, v);
    }
    let cfg = FaultConfig::from_env();
    for (k, _) in vars {
        std::env::remove_var(k);
    }
    assert_eq!(
        cfg,
        FaultConfig {
            seed: 12345,
            conflict_per_64k: 100,
            conflict_line_mod: 16,
            capacity_read_lines: 32,
            capacity_write_lines: 8,
            spurious_per_64k: 200,
            commit_window_per_64k: 300,
        }
    );
    assert!(cfg.enabled());
    assert!(!FaultConfig::from_env().enabled(), "unset means disabled");
}
