//! A transactional LIFO stack (Treiber-style layout, transactional updates).
//!
//! Used by work-stealing-free task pools in the PARSEC-like kernels
//! (raytrace, bodytrack) where the processing order does not matter.

use std::sync::Arc;

use tm_core::{Addr, TmSystem, TmVar, Tx, TxResult};

/// Node layout in the heap: `[value, next]`.
const NODE_WORDS: usize = 2;

/// An unbounded transactional stack.
#[derive(Debug, Clone)]
pub struct TmStack {
    top: TmVar<Addr>,
    len: TmVar<u64>,
}

impl TmStack {
    /// Allocates an empty stack.
    pub fn new(system: &Arc<TmSystem>) -> Self {
        TmStack {
            top: TmVar::alloc(system, Addr::NULL),
            len: TmVar::alloc(system, 0),
        }
    }

    /// Heap address of the length field (for `Await`).
    pub fn len_addr(&self) -> Addr {
        self.len.addr()
    }

    /// Transactional length.
    pub fn len(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        self.len.get(tx)
    }

    /// Transactional emptiness check.
    pub fn is_empty(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Non-transactional length (verification only).
    pub fn len_direct(&self, system: &TmSystem) -> u64 {
        self.len.load_direct(system)
    }

    /// Pushes `value`.
    pub fn push(&self, tx: &mut dyn Tx, value: u64) -> TxResult<()> {
        let node = tx.alloc(NODE_WORDS)?;
        tx.write(node, value)?;
        let top = self.top.get(tx)?;
        tx.write(node.offset(1), top.0 as u64)?;
        self.top.set(tx, node)?;
        let n = self.len.get_for_update(tx)?;
        self.len.set(tx, n + 1)
    }

    /// Pops the most recently pushed value, or `None` if empty.
    pub fn try_pop(&self, tx: &mut dyn Tx) -> TxResult<Option<u64>> {
        let top = self.top.get(tx)?;
        if top.is_null() {
            return Ok(None);
        }
        let value = tx.read(top)?;
        let next = Addr(tx.read(top.offset(1))? as usize);
        self.top.set(tx, next)?;
        let n = self.len.get_for_update(tx)?;
        self.len.set(tx, n - 1)?;
        tx.free(top, NODE_WORDS)?;
        Ok(Some(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn direct_tx(system: &Arc<TmSystem>) -> DirectTx {
        DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    #[test]
    fn lifo_order() {
        let system = TmSystem::new(TmConfig::small());
        let s = TmStack::new(&system);
        let mut tx = direct_tx(&system);
        for i in 1..=5 {
            s.push(&mut tx, i).unwrap();
        }
        for i in (1..=5).rev() {
            assert_eq!(s.try_pop(&mut tx).unwrap(), Some(i));
        }
        assert_eq!(s.try_pop(&mut tx).unwrap(), None);
    }

    #[test]
    fn len_tracks_pushes_and_pops() {
        let system = TmSystem::new(TmConfig::small());
        let s = TmStack::new(&system);
        let mut tx = direct_tx(&system);
        assert!(s.is_empty(&mut tx).unwrap());
        s.push(&mut tx, 1).unwrap();
        s.push(&mut tx, 2).unwrap();
        assert_eq!(s.len(&mut tx).unwrap(), 2);
        s.try_pop(&mut tx).unwrap();
        assert_eq!(s.len_direct(&system), 1);
    }

    #[test]
    fn nodes_are_reclaimed() {
        let system = TmSystem::new(TmConfig::small());
        let s = TmStack::new(&system);
        let baseline = system.heap.allocated_words();
        let mut tx = direct_tx(&system);
        for i in 0..50 {
            s.push(&mut tx, i).unwrap();
            s.try_pop(&mut tx).unwrap();
        }
        assert_eq!(system.heap.allocated_words(), baseline);
    }
}
