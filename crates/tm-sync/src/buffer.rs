//! The multi-producer, multi-consumer bounded buffer of Algorithm 2 and
//! Figure 2.2, with one produce/consume entry point per condition-
//! synchronization mechanism.

use std::sync::Arc;
use std::time::Duration;

use condsync::{Mechanism, TmCondVar};
use tm_core::{Addr, TmArray, TmSystem, TmVar, Tx, TxResult};

/// The shared state of Algorithm 2: a circular array plus its indices and
/// element count, all living in the transactional heap, together with the two
/// condition variables used only by the `TMCondVar` mechanism.
///
/// # Examples
///
/// A producer and a consumer coordinating through `Retry` — the consumer
/// sleeps while the buffer is empty and a producer's commit wakes it:
///
/// ```
/// use std::sync::Arc;
/// use condsync::Mechanism;
/// use tm_core::{TmConfig, TmRt, TmSystem};
/// use tm_sync::TmBoundedBuffer;
///
/// let system = TmSystem::new(TmConfig::small());
/// let rt = stm_eager::EagerStm::new(Arc::clone(&system));
/// let buf = TmBoundedBuffer::new(&system, 4);
///
/// let (rt2, system2, buf2) = (Arc::clone(&rt), Arc::clone(&system), Arc::clone(&buf));
/// let consumer = std::thread::spawn(move || {
///     let th = system2.register_thread();
///     rt2.atomically(&th, |tx| buf2.consume(Mechanism::Retry, tx))
/// });
///
/// let th = system.register_thread();
/// rt.atomically(&th, |tx| buf.produce(Mechanism::Retry, tx, 42));
/// assert_eq!(consumer.join().unwrap(), 42);
/// ```
#[derive(Debug)]
pub struct TmBoundedBuffer {
    cap: usize,
    buf: TmArray<u64>,
    count: TmVar<u64>,
    nextprod: TmVar<u64>,
    nextcons: TmVar<u64>,
    notempty: TmCondVar,
    notfull: TmCondVar,
}

/// `WaitPred` predicate: the buffer identified by `args = [count_addr, cap]`
/// is not full.
pub fn pred_not_full(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    let count = tx.read(Addr(args[0] as usize))?;
    Ok(count < args[1])
}

/// `WaitPred` predicate: the buffer identified by `args = [count_addr]` is
/// not empty.
pub fn pred_not_empty(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    let count = tx.read(Addr(args[0] as usize))?;
    Ok(count > 0)
}

/// `WaitPred` predicate for the composed consume-two scenario of §2.3:
/// `args = [count_addr, needed]` — the buffer holds at least `needed`
/// elements.
pub fn pred_at_least(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    let count = tx.read(Addr(args[0] as usize))?;
    Ok(count >= args[1])
}

impl TmBoundedBuffer {
    /// Allocates a buffer of capacity `cap` in `system`'s heap.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero or the heap is exhausted.
    pub fn new(system: &Arc<TmSystem>, cap: usize) -> Arc<Self> {
        assert!(cap > 0, "buffer capacity must be positive");
        Arc::new(TmBoundedBuffer {
            cap,
            buf: TmArray::alloc(system, cap, 0),
            count: TmVar::alloc(system, 0),
            nextprod: TmVar::alloc(system, 0),
            nextcons: TmVar::alloc(system, 0),
            notempty: TmCondVar::new(),
            notfull: TmCondVar::new(),
        })
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Heap address of the element count (the location `Await` waits on,
    /// `⟨&count⟩` in Figure 2.2).
    pub fn count_addr(&self) -> Addr {
        self.count.addr()
    }

    /// Non-transactional element count (setup / verification only).
    pub fn len_direct(&self, system: &TmSystem) -> u64 {
        self.count.load_direct(system)
    }

    /// Fills the buffer with `n` elements non-transactionally (the paper
    /// half-fills the buffer before each trial).
    pub fn prefill(&self, system: &TmSystem, n: usize) {
        assert!(n <= self.cap);
        for i in 0..n {
            self.buf.store_direct(system, i, i as u64 + 1);
        }
        self.count.store_direct(system, n as u64);
        self.nextprod
            .store_direct(system, n as u64 % self.cap as u64);
        self.nextcons.store_direct(system, 0);
    }

    // ---- Internal methods of Algorithm 2 -------------------------------

    /// `Full()`: `count == cap`.
    pub fn full(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(self.count.get(tx)? == self.cap as u64)
    }

    /// `Empty()`: `count == 0`.
    pub fn empty(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(self.count.get(tx)? == 0)
    }

    /// `Put(x)`: store at `nextprod`, advance it, bump `count`.
    /// The caller must have established `!Full()`.
    pub fn put(&self, tx: &mut dyn Tx, x: u64) -> TxResult<()> {
        let np = self.nextprod.get_for_update(tx)?;
        self.buf.set(tx, np as usize, x)?;
        self.nextprod.set(tx, (np + 1) % self.cap as u64)?;
        let c = self.count.get_for_update(tx)?;
        self.count.set(tx, c + 1)
    }

    /// `Get()`: read from `nextcons`, advance it, decrement `count`.
    /// The caller must have established `!Empty()`.
    pub fn get(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        let nc = self.nextcons.get_for_update(tx)?;
        let x = self.buf.get(tx, nc as usize)?;
        self.nextcons.set(tx, (nc + 1) % self.cap as u64)?;
        let c = self.count.get_for_update(tx)?;
        self.count.set(tx, c - 1)?;
        Ok(x)
    }

    // ---- Per-mechanism public methods (Figure 2.2) ----------------------

    /// `Produce(x)` using `mechanism`; must be called from inside a
    /// transaction body.  `Pthreads` is handled by
    /// [`crate::pthread::PthreadBuffer`], not here.
    ///
    /// # Panics
    ///
    /// Panics if called with [`Mechanism::Pthreads`].
    pub fn produce(&self, mechanism: Mechanism, tx: &mut dyn Tx, x: u64) -> TxResult<()> {
        match mechanism {
            Mechanism::Pthreads => panic!("Pthreads producers do not run inside transactions"),
            Mechanism::TmCondVar => {
                while self.full(tx)? {
                    self.notfull.wait(tx)?;
                }
                self.put(tx, x)?;
                self.notempty.signal_from(tx);
                Ok(())
            }
            Mechanism::WaitPred => {
                if self.full(tx)? {
                    return condsync::wait_pred(
                        tx,
                        pred_not_full,
                        &[self.count.addr().0 as u64, self.cap as u64],
                    );
                }
                self.put(tx, x)
            }
            Mechanism::Await => {
                if self.full(tx)? {
                    return condsync::await_one(tx, self.count.addr());
                }
                self.put(tx, x)
            }
            Mechanism::Retry => {
                if self.full(tx)? {
                    return condsync::retry(tx);
                }
                self.put(tx, x)
            }
            Mechanism::RetryOrig => {
                if self.full(tx)? {
                    return condsync::retry_orig(tx);
                }
                self.put(tx, x)
            }
            Mechanism::Restart => {
                if self.full(tx)? {
                    return condsync::restart(tx);
                }
                self.put(tx, x)
            }
        }
    }

    /// `Consume()` using `mechanism`; must be called from inside a
    /// transaction body.
    ///
    /// # Panics
    ///
    /// Panics if called with [`Mechanism::Pthreads`].
    pub fn consume(&self, mechanism: Mechanism, tx: &mut dyn Tx) -> TxResult<u64> {
        match mechanism {
            Mechanism::Pthreads => panic!("Pthreads consumers do not run inside transactions"),
            Mechanism::TmCondVar => {
                while self.empty(tx)? {
                    self.notempty.wait(tx)?;
                }
                let x = self.get(tx)?;
                self.notfull.signal_from(tx);
                Ok(x)
            }
            Mechanism::WaitPred => {
                if self.empty(tx)? {
                    return condsync::wait_pred(tx, pred_not_empty, &[self.count.addr().0 as u64]);
                }
                self.get(tx)
            }
            Mechanism::Await => {
                if self.empty(tx)? {
                    return condsync::await_one(tx, self.count.addr());
                }
                self.get(tx)
            }
            Mechanism::Retry => {
                if self.empty(tx)? {
                    return condsync::retry(tx);
                }
                self.get(tx)
            }
            Mechanism::RetryOrig => {
                if self.empty(tx)? {
                    return condsync::retry_orig(tx);
                }
                self.get(tx)
            }
            Mechanism::Restart => {
                if self.empty(tx)? {
                    return condsync::restart(tx);
                }
                self.get(tx)
            }
        }
    }

    // ---- Timed variants --------------------------------------------------

    /// `Produce(x)` bounded by `timeout`: returns `Ok(true)` once the
    /// element is stored, or `Ok(false)` if the buffer stayed full past the
    /// deadline (or the wait was cancelled) — the element is then *not*
    /// stored and the transaction commits without effects.
    ///
    /// The deadline applies to each wait: a producer woken spuriously
    /// (buffer full again by re-execution) waits again with a fresh
    /// timeout.  Only the deschedule-based mechanisms support timed waits.
    ///
    /// # Panics
    ///
    /// Panics for mechanisms without timed-wait support (`Pthreads`,
    /// `TMCondVar`, `Retry-Orig`, `Restart`).
    pub fn produce_timeout(
        &self,
        mechanism: Mechanism,
        tx: &mut dyn Tx,
        x: u64,
        timeout: Duration,
    ) -> TxResult<bool> {
        if self.full(tx)? {
            // Re-check first, then give up: a timeout whose condition has
            // meanwhile been established still succeeds (same contract as
            // pthread_cond_timedwait callers re-testing their predicate).
            if condsync::wait_interrupted(tx) {
                condsync::clear_wake_reason(tx);
                return Ok(false);
            }
            return match mechanism {
                Mechanism::Retry => condsync::retry_for(tx, timeout),
                Mechanism::Await => condsync::await_one_for(tx, self.count_addr(), timeout),
                Mechanism::WaitPred => condsync::wait_pred_for(
                    tx,
                    pred_not_full,
                    &[self.count.addr().0 as u64, self.cap as u64],
                    timeout,
                ),
                other => panic!("{other} does not support timed waits"),
            };
        }
        // This wait resolved (possibly despite a recorded timeout): consume
        // the reason so a later wait in the same body starts fresh.
        condsync::clear_wake_reason(tx);
        self.put(tx, x)?;
        Ok(true)
    }

    /// `Consume()` bounded by `timeout`: returns `Ok(Some(x))` once an
    /// element is available, or `Ok(None)` if the buffer stayed empty past
    /// the deadline (or the wait was cancelled).
    ///
    /// # Panics
    ///
    /// Panics for mechanisms without timed-wait support (`Pthreads`,
    /// `TMCondVar`, `Retry-Orig`, `Restart`).
    pub fn consume_timeout(
        &self,
        mechanism: Mechanism,
        tx: &mut dyn Tx,
        timeout: Duration,
    ) -> TxResult<Option<u64>> {
        if self.empty(tx)? {
            if condsync::wait_interrupted(tx) {
                condsync::clear_wake_reason(tx);
                return Ok(None);
            }
            return match mechanism {
                Mechanism::Retry => condsync::retry_for(tx, timeout),
                Mechanism::Await => condsync::await_one_for(tx, self.count_addr(), timeout),
                Mechanism::WaitPred => condsync::wait_pred_for(
                    tx,
                    pred_not_empty,
                    &[self.count.addr().0 as u64],
                    timeout,
                ),
                other => panic!("{other} does not support timed waits"),
            };
        }
        condsync::clear_wake_reason(tx);
        Ok(Some(self.get(tx)?))
    }

    /// The composed `Produce1Consume2` of Algorithm 3 / §2.3: produce one
    /// element and atomically consume two.
    ///
    /// With the paper's mechanisms the whole composition is a single atomic
    /// action (the implicit back-edge of a deschedule rolls back everything,
    /// including the produce); with `TMCondVar` atomicity is broken at the
    /// wait point, which is exactly the hazard §2.2.1 describes.
    ///
    /// Note the §2.3 caveat: for `WaitPred` the buffer-designer's
    /// `¬Empty()` predicate is insufficient here, so this method uses the
    /// stronger "at least two elements" predicate.
    pub fn produce1_consume2(
        &self,
        mechanism: Mechanism,
        tx: &mut dyn Tx,
        x: u64,
    ) -> TxResult<(u64, u64)> {
        self.produce(mechanism, tx, x)?;
        // For WaitPred, consuming two elements atomically needs the
        // `count >= 2` precondition (not merely `¬Empty`), per §2.3.
        if mechanism == Mechanism::WaitPred {
            let c = self.count.get(tx)?;
            if c < 2 {
                return condsync::wait_pred(tx, pred_at_least, &[self.count.addr().0 as u64, 2]);
            }
        }
        let a = self.consume(mechanism, tx)?;
        let b = self.consume(mechanism, tx)?;
        Ok((a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode};

    /// A direct, single-threaded transaction for exercising the buffer logic
    /// without a full runtime.
    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn direct_tx(system: &Arc<TmSystem>) -> DirectTx {
        DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    #[test]
    fn put_get_round_trip_preserves_fifo_order() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 4);
        let mut tx = direct_tx(&system);
        for i in 1..=4 {
            buf.put(&mut tx, i).unwrap();
        }
        assert!(buf.full(&mut tx).unwrap());
        for i in 1..=4 {
            assert_eq!(buf.get(&mut tx).unwrap(), i);
        }
        assert!(buf.empty(&mut tx).unwrap());
    }

    #[test]
    fn wraparound_reuses_slots() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 2);
        let mut tx = direct_tx(&system);
        for round in 0..10u64 {
            buf.put(&mut tx, round).unwrap();
            assert_eq!(buf.get(&mut tx).unwrap(), round);
        }
        assert_eq!(buf.len_direct(&system), 0);
    }

    #[test]
    fn prefill_half_fills_like_the_paper() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 16);
        buf.prefill(&system, 8);
        assert_eq!(buf.len_direct(&system), 8);
        let mut tx = direct_tx(&system);
        assert!(!buf.full(&mut tx).unwrap());
        assert!(!buf.empty(&mut tx).unwrap());
        assert_eq!(buf.get(&mut tx).unwrap(), 1);
    }

    #[test]
    fn retry_mechanism_requests_deschedule_when_empty() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 4);
        let mut tx = direct_tx(&system);
        let r = buf.consume(Mechanism::Retry, &mut tx);
        assert!(matches!(
            r,
            Err(TxCtl::Deschedule(tm_core::WaitSpec::ReadSetValues))
        ));
    }

    #[test]
    fn await_mechanism_waits_on_count_address() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 4);
        let mut tx = direct_tx(&system);
        match buf.consume(Mechanism::Await, &mut tx) {
            Err(TxCtl::Deschedule(tm_core::WaitSpec::Addrs(a))) => {
                assert_eq!(a, vec![buf.count_addr()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn waitpred_produce_requests_not_full_predicate() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 2);
        let mut tx = direct_tx(&system);
        buf.put(&mut tx, 1).unwrap();
        buf.put(&mut tx, 2).unwrap();
        match buf.produce(Mechanism::WaitPred, &mut tx, 3) {
            Err(TxCtl::Deschedule(tm_core::WaitSpec::Pred { args, .. })) => {
                assert_eq!(args, vec![buf.count_addr().0 as u64, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn restart_mechanism_aborts_explicitly() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 4);
        let mut tx = direct_tx(&system);
        assert!(matches!(
            buf.consume(Mechanism::Restart, &mut tx),
            Err(TxCtl::Abort(AbortReason::Explicit(_)))
        ));
    }

    #[test]
    fn predicates_evaluate_buffer_state() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 2);
        let mut tx = direct_tx(&system);
        let args_full = [buf.count_addr().0 as u64, 2];
        let args_empty = [buf.count_addr().0 as u64];
        assert!(pred_not_full(&mut tx, &args_full).unwrap());
        assert!(!pred_not_empty(&mut tx, &args_empty).unwrap());
        buf.put(&mut tx, 9).unwrap();
        assert!(pred_not_empty(&mut tx, &args_empty).unwrap());
        buf.put(&mut tx, 9).unwrap();
        assert!(!pred_not_full(&mut tx, &args_full).unwrap());
        assert!(pred_at_least(&mut tx, &[buf.count_addr().0 as u64, 2]).unwrap());
        assert!(!pred_at_least(&mut tx, &[buf.count_addr().0 as u64, 3]).unwrap());
    }

    #[test]
    fn mechanism_produce_when_space_available_just_puts() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 4);
        for (i, mech) in [
            Mechanism::Retry,
            Mechanism::Await,
            Mechanism::WaitPred,
            Mechanism::Restart,
        ]
        .into_iter()
        .enumerate()
        {
            let mut tx = direct_tx(&system);
            buf.produce(mech, &mut tx, 100 + i as u64).unwrap();
        }
        assert_eq!(buf.len_direct(&system), 4);
    }

    #[test]
    fn timed_variants_operate_immediately_when_unblocked() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 2);
        let mut tx = direct_tx(&system);
        let t = std::time::Duration::from_millis(5);
        assert!(buf
            .produce_timeout(Mechanism::Retry, &mut tx, 7, t)
            .unwrap());
        assert_eq!(
            buf.consume_timeout(Mechanism::Await, &mut tx, t).unwrap(),
            Some(7)
        );
    }

    #[test]
    fn timed_variants_request_deadline_carrying_descedules() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 2);
        let mut tx = direct_tx(&system);
        let t = std::time::Duration::from_millis(50);
        // Empty buffer: a timed consume must stash a deadline and request
        // the same deschedule as its unbounded sibling.
        assert!(tx.common().wait_deadline.is_none());
        assert!(matches!(
            buf.consume_timeout(Mechanism::Retry, &mut tx, t),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::ReadSetValues))
        ));
        assert!(tx.common().wait_deadline.is_some());

        // Once the driver reports the wait as interrupted, the re-executed
        // body gives up instead of waiting again.
        tx.common_mut().wake_reason = Some(tm_core::WakeReason::Timeout);
        assert_eq!(
            buf.consume_timeout(Mechanism::Retry, &mut tx, t).unwrap(),
            None
        );
        // ...unless the condition has meanwhile been established, in which
        // case the late success wins over the recorded timeout.
        buf.put(&mut tx, 9).unwrap();
        assert_eq!(
            buf.consume_timeout(Mechanism::Retry, &mut tx, t).unwrap(),
            Some(9)
        );

        // A full buffer symmetrically bounds produce.
        buf.put(&mut tx, 1).unwrap();
        buf.put(&mut tx, 2).unwrap();
        tx.common_mut().wake_reason = None;
        assert!(matches!(
            buf.produce_timeout(Mechanism::WaitPred, &mut tx, 3, t),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::Pred { .. }))
        ));
        tx.common_mut().wake_reason = Some(tm_core::WakeReason::Cancelled);
        assert!(!buf
            .produce_timeout(Mechanism::WaitPred, &mut tx, 3, t)
            .unwrap());
    }

    #[test]
    fn resolved_waits_consume_the_wake_reason() {
        // Composition: a first timed op that resolves (either way) must not
        // leave a stale Timeout behind that short-circuits a later,
        // independent wait in the same transaction body.
        let system = TmSystem::new(TmConfig::small());
        let a = TmBoundedBuffer::new(&system, 2);
        let b = TmBoundedBuffer::new(&system, 2);
        let mut tx = direct_tx(&system);
        let t = std::time::Duration::from_millis(50);

        // Op A timed out, but succeeds on re-execution (late success wins)…
        a.put(&mut tx, 1).unwrap();
        tx.common_mut().wake_reason = Some(tm_core::WakeReason::Timeout);
        assert_eq!(
            a.consume_timeout(Mechanism::Retry, &mut tx, t).unwrap(),
            Some(1)
        );
        // …so op B on the (empty) second buffer must WAIT, not give up.
        assert!(matches!(
            b.consume_timeout(Mechanism::Retry, &mut tx, t),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::ReadSetValues))
        ));

        // Give-up also consumes the reason.
        tx.common_mut().wake_reason = Some(tm_core::WakeReason::Timeout);
        assert_eq!(
            b.consume_timeout(Mechanism::Retry, &mut tx, t).unwrap(),
            None
        );
        assert!(tx.common().wake_reason.is_none());
        assert!(matches!(
            b.consume_timeout(Mechanism::Retry, &mut tx, t),
            Err(TxCtl::Deschedule(_))
        ));
    }

    #[test]
    #[should_panic(expected = "does not support timed waits")]
    fn timed_variants_reject_non_deschedule_mechanisms() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 2);
        let mut tx = direct_tx(&system);
        let _ = buf.consume_timeout(
            Mechanism::Restart,
            &mut tx,
            std::time::Duration::from_millis(1),
        );
    }

    #[test]
    #[should_panic(expected = "Pthreads")]
    fn pthreads_mechanism_is_rejected() {
        let system = TmSystem::new(TmConfig::small());
        let buf = TmBoundedBuffer::new(&system, 4);
        let mut tx = direct_tx(&system);
        let _ = buf.produce(Mechanism::Pthreads, &mut tx, 1);
    }
}
