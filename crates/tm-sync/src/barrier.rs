//! A reusable (sense-reversing) barrier built from transactions plus one of
//! the paper's condition-synchronization mechanisms.
//!
//! §2.3 points out that the classic two-phase reusable barrier cannot be
//! obtained from condition-variable code by simple substitution; it has to be
//! *re-designed* around predicates over shared state.  This module is that
//! re-design: arrival is one transaction (increment the arrival counter and,
//! if last, advance the generation), and waiting for the phase to end is a
//! second transaction that waits — with Retry, Await, WaitPred or Restart —
//! for the generation to advance.

use std::sync::Arc;
use std::time::Duration;

use condsync::Mechanism;
use tm_core::{Addr, ThreadCtx, TmRt, TmSystem, TmVar, Tx, TxResult};

/// How a timed barrier wait ([`TmBarrier::wait_for`]) ended.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum BarrierWait {
    /// This thread was the last arriver and released the phase.
    Released,
    /// Another thread released the phase while this one waited.
    Passed,
    /// The deadline passed (or the wait was cancelled) before the phase
    /// ended.  The arrival still counts: the barrier's arrival counter was
    /// incremented and is *not* rolled back, so the remaining participants
    /// can still complete the phase — this is the watchdog contract, "stop
    /// waiting" rather than "un-arrive".
    TimedOut,
}

/// A reusable transactional barrier for a fixed number of participants.
#[derive(Debug, Clone)]
pub struct TmBarrier {
    parties: u64,
    arrived: TmVar<u64>,
    generation: TmVar<u64>,
}

/// `WaitPred` predicate: the generation counter at `args[0]` has moved past
/// `args[1]`.
pub fn pred_generation_advanced(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? != args[1])
}

impl TmBarrier {
    /// Creates a barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(system: &Arc<TmSystem>, parties: u64) -> Self {
        assert!(parties > 0, "a barrier needs at least one participant");
        TmBarrier {
            parties,
            arrived: TmVar::alloc(system, 0),
            generation: TmVar::alloc(system, 0),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> u64 {
        self.parties
    }

    /// Current generation (non-transactional, verification only).
    pub fn generation_direct(&self, system: &TmSystem) -> u64 {
        self.generation.load_direct(system)
    }

    /// Waits until all participants have arrived.
    ///
    /// Returns `true` for the last arriver (the "serial" thread, in
    /// `pthread_barrier` terms).
    pub fn wait<R: TmRt + ?Sized>(
        &self,
        rt: &R,
        thread: &Arc<ThreadCtx>,
        mechanism: Mechanism,
    ) -> bool {
        // Phase 1: arrive.  The last arriver resets the count and advances
        // the generation, releasing everyone else.
        let (last, my_generation) = rt.atomically(thread, |tx| {
            let generation = self.generation.get(tx)?;
            let arrived = self.arrived.get_for_update(tx)? + 1;
            if arrived == self.parties {
                self.arrived.set(tx, 0)?;
                self.generation.set(tx, generation + 1)?;
                Ok((true, generation))
            } else {
                self.arrived.set(tx, arrived)?;
                Ok((false, generation))
            }
        });
        if last {
            return true;
        }
        // Phase 2: wait for the generation to advance.
        rt.atomically(thread, |tx| {
            let generation = self.generation.get(tx)?;
            if generation != my_generation {
                return Ok(());
            }
            match mechanism {
                Mechanism::Retry | Mechanism::TmCondVar | Mechanism::Pthreads => {
                    // TmCondVar/Pthreads callers of this transactional
                    // barrier fall back to Retry semantics; the lock-based
                    // kernels use their own barrier.
                    condsync::retry(tx)
                }
                Mechanism::RetryOrig => condsync::retry_orig(tx),
                Mechanism::Await => condsync::await_one(tx, self.generation.addr()),
                Mechanism::WaitPred => condsync::wait_pred(
                    tx,
                    pred_generation_advanced,
                    &[self.generation.addr().0 as u64, my_generation],
                ),
                Mechanism::Restart => condsync::restart(tx),
            }
        });
        false
    }

    /// Waits until all participants have arrived, giving up once `timeout`
    /// elapses: a watchdogged barrier.  See [`BarrierWait`] for the exact
    /// semantics of each outcome (in particular, a timed-out waiter's
    /// arrival still counts towards the phase).
    ///
    /// # Panics
    ///
    /// Panics for mechanisms without timed-wait support (`Pthreads`,
    /// `TMCondVar`, `Retry-Orig`, `Restart`).
    pub fn wait_for<R: TmRt + ?Sized>(
        &self,
        rt: &R,
        thread: &Arc<ThreadCtx>,
        mechanism: Mechanism,
        timeout: Duration,
    ) -> BarrierWait {
        // Phase 1: arrive (identical to the unbounded form).
        let (last, my_generation) = rt.atomically(thread, |tx| {
            let generation = self.generation.get(tx)?;
            let arrived = self.arrived.get_for_update(tx)? + 1;
            if arrived == self.parties {
                self.arrived.set(tx, 0)?;
                self.generation.set(tx, generation + 1)?;
                Ok((true, generation))
            } else {
                self.arrived.set(tx, arrived)?;
                Ok((false, generation))
            }
        });
        if last {
            return BarrierWait::Released;
        }
        // Phase 2: wait for the generation to advance, bounded by the
        // deadline.
        let released = rt.atomically(thread, |tx| {
            let generation = self.generation.get(tx)?;
            if generation != my_generation {
                // This wait resolved (possibly despite a recorded timeout):
                // consume the reason so a later wait starts fresh.
                condsync::clear_wake_reason(tx);
                return Ok(true);
            }
            if condsync::wait_interrupted(tx) {
                condsync::clear_wake_reason(tx);
                return Ok(false);
            }
            match mechanism {
                Mechanism::Retry => condsync::retry_for(tx, timeout),
                Mechanism::Await => condsync::await_one_for(tx, self.generation.addr(), timeout),
                Mechanism::WaitPred => condsync::wait_pred_for(
                    tx,
                    pred_generation_advanced,
                    &[self.generation.addr().0 as u64, my_generation],
                    timeout,
                ),
                other => panic!("{other} does not support timed waits"),
            }
        });
        if released {
            BarrierWait::Passed
        } else {
            BarrierWait::TimedOut
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let system = TmSystem::new(TmConfig::small());
        let b = TmBarrier::new(&system, 1);
        // With one party every arrival is "last"; exercise the arrival logic
        // directly with a pass-through transaction.
        let mut tx = DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(&system),
        };
        let gen = b.generation.get(&mut tx).unwrap();
        let arrived = b.arrived.get(&mut tx).unwrap() + 1;
        assert_eq!(arrived, 1);
        b.arrived.set(&mut tx, 0).unwrap();
        b.generation.set(&mut tx, gen + 1).unwrap();
        assert_eq!(b.generation_direct(&system), 1);
    }

    #[test]
    fn predicate_detects_generation_change() {
        let system = TmSystem::new(TmConfig::small());
        let b = TmBarrier::new(&system, 2);
        let mut tx = DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(&system),
        };
        let args = [b.generation.addr().0 as u64, 0];
        assert!(!pred_generation_advanced(&mut tx, &args).unwrap());
        b.generation.set(&mut tx, 1).unwrap();
        assert!(pred_generation_advanced(&mut tx, &args).unwrap());
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_party_barrier_is_rejected() {
        let system = TmSystem::new(TmConfig::small());
        let _ = TmBarrier::new(&system, 0);
    }
}
