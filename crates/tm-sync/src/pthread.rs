//! The `Pthreads` baseline: a bounded buffer protected by a mutex and two
//! condition variables, with no transactions anywhere.
//!
//! This is the starting point the paper transactionalizes; keeping it here
//! (a) provides the baseline series in Figures 2.3–2.8 and (b) anchors the
//! correctness tests (both buffers must transfer exactly the same multiset of
//! elements).

use tm_core::lock::{Condvar, Mutex};

/// Internal state guarded by the mutex.
#[derive(Debug)]
struct State {
    buf: Vec<u64>,
    cap: usize,
    nextprod: usize,
    nextcons: usize,
    count: usize,
}

/// A mutex-and-condvar bounded buffer.
#[derive(Debug)]
pub struct PthreadBuffer {
    state: Mutex<State>,
    notempty: Condvar,
    notfull: Condvar,
}

impl PthreadBuffer {
    /// Creates a buffer with capacity `cap`.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "buffer capacity must be positive");
        PthreadBuffer {
            state: Mutex::new(State {
                buf: vec![0; cap],
                cap,
                nextprod: 0,
                nextcons: 0,
                count: 0,
            }),
            notempty: Condvar::new(),
            notfull: Condvar::new(),
        }
    }

    /// The buffer's capacity.
    pub fn capacity(&self) -> usize {
        self.state.lock().cap
    }

    /// Current number of elements.
    pub fn len(&self) -> usize {
        self.state.lock().count
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fills the buffer with `n` elements (mirrors
    /// [`crate::buffer::TmBoundedBuffer::prefill`]).
    pub fn prefill(&self, n: usize) {
        let mut s = self.state.lock();
        assert!(n <= s.cap);
        for i in 0..n {
            s.buf[i] = i as u64 + 1;
        }
        s.count = n;
        s.nextprod = n % s.cap;
        s.nextcons = 0;
    }

    /// Blocking produce: waits while the buffer is full, then inserts and
    /// signals one consumer.
    pub fn produce(&self, x: u64) {
        let mut s = self.state.lock();
        while s.count == s.cap {
            self.notfull.wait(&mut s);
        }
        let np = s.nextprod;
        s.buf[np] = x;
        s.nextprod = (np + 1) % s.cap;
        s.count += 1;
        drop(s);
        self.notempty.notify_one();
    }

    /// Blocking consume: waits while the buffer is empty, then removes the
    /// oldest element and signals one producer.
    pub fn consume(&self) -> u64 {
        let mut s = self.state.lock();
        while s.count == 0 {
            self.notempty.wait(&mut s);
        }
        let nc = s.nextcons;
        let x = s.buf[nc];
        s.nextcons = (nc + 1) % s.cap;
        s.count -= 1;
        drop(s);
        self.notfull.notify_one();
        x
    }

    /// Non-blocking produce; returns false if the buffer is full.
    pub fn try_produce(&self, x: u64) -> bool {
        let mut s = self.state.lock();
        if s.count == s.cap {
            return false;
        }
        let np = s.nextprod;
        s.buf[np] = x;
        s.nextprod = (np + 1) % s.cap;
        s.count += 1;
        drop(s);
        self.notempty.notify_one();
        true
    }

    /// Non-blocking consume; returns `None` if the buffer is empty.
    pub fn try_consume(&self) -> Option<u64> {
        let mut s = self.state.lock();
        if s.count == 0 {
            return None;
        }
        let nc = s.nextcons;
        let x = s.buf[nc];
        s.nextcons = (nc + 1) % s.cap;
        s.count -= 1;
        drop(s);
        self.notfull.notify_one();
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_threaded() {
        let b = PthreadBuffer::new(4);
        for i in 1..=4 {
            b.produce(i);
        }
        assert_eq!(b.len(), 4);
        for i in 1..=4 {
            assert_eq!(b.consume(), i);
        }
        assert!(b.is_empty());
    }

    #[test]
    fn try_variants_respect_bounds() {
        let b = PthreadBuffer::new(2);
        assert!(b.try_produce(1));
        assert!(b.try_produce(2));
        assert!(!b.try_produce(3));
        assert_eq!(b.try_consume(), Some(1));
        assert_eq!(b.try_consume(), Some(2));
        assert_eq!(b.try_consume(), None);
    }

    #[test]
    fn prefill_matches_tm_buffer_convention() {
        let b = PthreadBuffer::new(8);
        b.prefill(4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.consume(), 1);
        assert_eq!(b.consume(), 2);
    }

    #[test]
    fn producers_and_consumers_transfer_everything() {
        let b = Arc::new(PthreadBuffer::new(4));
        let total = 2000u64;
        let producers = 2;
        let consumers = 2;
        let per_producer = total / producers;
        let per_consumer = total / consumers;
        let mut handles = Vec::new();
        for p in 0..producers {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    b.produce(p * per_producer + i + 1);
                }
                0u64
            }));
        }
        for _ in 0..consumers {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || {
                (0..per_consumer).map(|_| b.consume()).sum::<u64>()
            }));
        }
        let sum: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sum, total * (total + 1) / 2);
        assert!(b.is_empty());
    }
}
