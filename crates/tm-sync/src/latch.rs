//! A transactional count-down latch.
//!
//! `TmLatch` is the transactional analogue of `pthread`-style "wait for N
//! events" coordination (Java's `CountDownLatch`): worker transactions call
//! [`TmLatch::count_down`] as part of their commits, and any transaction can
//! wait until the count reaches zero using whichever condition-
//! synchronization mechanism the application has chosen.  It is a thin,
//! reusable packaging of the pattern the PARSEC-like kernels use for frame
//! completion.

use std::sync::Arc;
use std::time::Duration;

use condsync::Mechanism;
use tm_core::{Addr, TmSystem, TmVar, Tx, TxResult};

/// A transactional count-down latch.
///
/// The latch is created with an initial count; `count_down` decrements it
/// (saturating at zero) and `wait_open` blocks the calling transaction until
/// the count is zero.  Unlike a barrier it is single-use: once open it stays
/// open until [`TmLatch::reset_direct`] is called outside any transaction.
#[derive(Debug, Clone)]
pub struct TmLatch {
    remaining: TmVar<u64>,
}

/// `WaitPred` predicate: the latch identified by `args = [remaining_addr]`
/// is open (its count reached zero).
pub fn pred_latch_open(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? == 0)
}

impl TmLatch {
    /// Allocates a latch with `count` pending events in `system`'s heap.
    pub fn new(system: &Arc<TmSystem>, count: u64) -> Self {
        TmLatch {
            remaining: TmVar::alloc(system, count),
        }
    }

    /// Heap address of the remaining-count word (what `Await` waits on).
    pub fn addr(&self) -> Addr {
        self.remaining.addr()
    }

    /// Transactionally reads the remaining count.
    pub fn remaining(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        self.remaining.get(tx)
    }

    /// Non-transactional read (setup / verification only).
    pub fn remaining_direct(&self, system: &TmSystem) -> u64 {
        self.remaining.load_direct(system)
    }

    /// Resets the count outside of any transaction (only safe at quiescent
    /// points, e.g. between frames).
    pub fn reset_direct(&self, system: &TmSystem, count: u64) {
        self.remaining.store_direct(system, count);
    }

    /// True if the latch is open (count is zero).
    pub fn is_open(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(self.remaining.get(tx)? == 0)
    }

    /// Records one completed event.  Returns the remaining count after the
    /// decrement; the count saturates at zero so extra count-downs are
    /// harmless.
    pub fn count_down(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        let current = self.remaining.get_for_update(tx)?;
        let next = current.saturating_sub(1);
        self.remaining.set(tx, next)?;
        Ok(next)
    }

    /// From inside a transaction: proceed if the latch is open, otherwise
    /// wait with `mechanism`.
    ///
    /// # Panics
    ///
    /// Panics for the lock-based mechanisms ([`Mechanism::Pthreads`] and
    /// [`Mechanism::TmCondVar`] wait outside/around transactions).
    pub fn wait_open(&self, mechanism: Mechanism, tx: &mut dyn Tx) -> TxResult<()> {
        if self.is_open(tx)? {
            return Ok(());
        }
        match mechanism {
            Mechanism::Retry => condsync::retry(tx),
            Mechanism::RetryOrig => condsync::retry_orig(tx),
            Mechanism::Await => condsync::await_one(tx, self.addr()),
            Mechanism::WaitPred => {
                condsync::wait_pred(tx, pred_latch_open, &[self.addr().0 as u64])
            }
            Mechanism::Restart => condsync::restart(tx),
            Mechanism::Pthreads | Mechanism::TmCondVar => {
                panic!("lock-based mechanisms wait outside transactions")
            }
        }
    }

    /// From inside a transaction: wait for the latch to open, giving up
    /// after `timeout`.  Returns `Ok(true)` if the latch is (or became)
    /// open, `Ok(false)` if the deadline passed (or the wait was cancelled)
    /// with the latch still closed.
    ///
    /// # Panics
    ///
    /// Panics for mechanisms without timed-wait support (`Pthreads`,
    /// `TMCondVar`, `Retry-Orig`, `Restart`).
    pub fn wait_for(
        &self,
        mechanism: Mechanism,
        tx: &mut dyn Tx,
        timeout: Duration,
    ) -> TxResult<bool> {
        if self.is_open(tx)? {
            // This wait resolved (possibly despite a recorded timeout):
            // consume the reason so a later wait in the body starts fresh.
            condsync::clear_wake_reason(tx);
            return Ok(true);
        }
        if condsync::wait_interrupted(tx) {
            condsync::clear_wake_reason(tx);
            return Ok(false);
        }
        match mechanism {
            Mechanism::Retry => condsync::retry_for(tx, timeout),
            Mechanism::Await => condsync::await_one_for(tx, self.addr(), timeout),
            Mechanism::WaitPred => {
                condsync::wait_pred_for(tx, pred_latch_open, &[self.addr().0 as u64], timeout)
            }
            other => panic!("{other} does not support timed waits"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode, WaitSpec};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn direct_tx(system: &Arc<TmSystem>) -> DirectTx {
        DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    #[test]
    fn count_down_reaches_zero_and_saturates() {
        let system = TmSystem::new(TmConfig::small());
        let latch = TmLatch::new(&system, 3);
        let mut tx = direct_tx(&system);
        assert!(!latch.is_open(&mut tx).unwrap());
        assert_eq!(latch.count_down(&mut tx).unwrap(), 2);
        assert_eq!(latch.count_down(&mut tx).unwrap(), 1);
        assert_eq!(latch.count_down(&mut tx).unwrap(), 0);
        assert!(latch.is_open(&mut tx).unwrap());
        // Saturation: extra count-downs stay at zero.
        assert_eq!(latch.count_down(&mut tx).unwrap(), 0);
        assert_eq!(latch.remaining_direct(&system), 0);
    }

    #[test]
    fn wait_open_passes_through_when_open() {
        let system = TmSystem::new(TmConfig::small());
        let latch = TmLatch::new(&system, 0);
        let mut tx = direct_tx(&system);
        latch.wait_open(Mechanism::Retry, &mut tx).unwrap();
        latch.wait_open(Mechanism::WaitPred, &mut tx).unwrap();
    }

    #[test]
    fn wait_open_requests_the_right_deschedule() {
        let system = TmSystem::new(TmConfig::small());
        let latch = TmLatch::new(&system, 2);
        let mut tx = direct_tx(&system);
        assert!(matches!(
            latch.wait_open(Mechanism::Retry, &mut tx),
            Err(TxCtl::Deschedule(WaitSpec::ReadSetValues))
        ));
        match latch.wait_open(Mechanism::Await, &mut tx) {
            Err(TxCtl::Deschedule(WaitSpec::Addrs(a))) => assert_eq!(a, vec![latch.addr()]),
            other => panic!("unexpected {other:?}"),
        }
        match latch.wait_open(Mechanism::WaitPred, &mut tx) {
            Err(TxCtl::Deschedule(WaitSpec::Pred { args, .. })) => {
                assert_eq!(args, vec![latch.addr().0 as u64]);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            latch.wait_open(Mechanism::Restart, &mut tx),
            Err(TxCtl::Abort(AbortReason::Explicit(_)))
        ));
    }

    #[test]
    fn wait_for_passes_gives_up_or_requests_timed_wait() {
        let system = TmSystem::new(TmConfig::small());
        let latch = TmLatch::new(&system, 1);
        let mut tx = direct_tx(&system);
        let t = Duration::from_millis(20);
        // Closed: requests a deadline-carrying deschedule.
        assert!(matches!(
            latch.wait_for(Mechanism::Retry, &mut tx, t),
            Err(TxCtl::Deschedule(WaitSpec::ReadSetValues))
        ));
        assert!(tx.common().wait_deadline.is_some());
        // The driver reported a timeout: give up.
        tx.common_mut().wake_reason = Some(tm_core::WakeReason::Timeout);
        assert!(!latch.wait_for(Mechanism::Await, &mut tx, t).unwrap());
        // Open latch passes immediately even after a timeout.
        latch.count_down(&mut tx).unwrap();
        assert!(latch.wait_for(Mechanism::WaitPred, &mut tx, t).unwrap());
    }

    #[test]
    fn predicate_reports_open_state() {
        let system = TmSystem::new(TmConfig::small());
        let latch = TmLatch::new(&system, 1);
        let mut tx = direct_tx(&system);
        let args = [latch.addr().0 as u64];
        assert!(!pred_latch_open(&mut tx, &args).unwrap());
        latch.count_down(&mut tx).unwrap();
        assert!(pred_latch_open(&mut tx, &args).unwrap());
    }

    #[test]
    fn reset_reloads_the_count() {
        let system = TmSystem::new(TmConfig::small());
        let latch = TmLatch::new(&system, 1);
        let mut tx = direct_tx(&system);
        latch.count_down(&mut tx).unwrap();
        assert!(latch.is_open(&mut tx).unwrap());
        latch.reset_direct(&system, 5);
        assert_eq!(latch.remaining_direct(&system), 5);
        assert!(!latch.is_open(&mut tx).unwrap());
    }

    #[test]
    #[should_panic(expected = "outside transactions")]
    fn lock_based_mechanisms_are_rejected() {
        let system = TmSystem::new(TmConfig::small());
        let latch = TmLatch::new(&system, 1);
        let mut tx = direct_tx(&system);
        let _ = latch.wait_open(Mechanism::Pthreads, &mut tx);
    }
}
