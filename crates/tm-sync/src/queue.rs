//! An unbounded transactional FIFO queue built from heap-allocated nodes.
//!
//! Exercises transactional allocation and deferred reclamation (the paper's
//! "captured memory" concern), and serves as the hand-off structure in the
//! pipeline-style PARSEC kernels (dedup, ferret, x264).

use std::sync::Arc;
use std::time::Duration;

use condsync::Mechanism;
use tm_core::{Addr, TmSystem, TmVar, Tx, TxResult};

/// Node layout in the heap: `[value, next]`.
const NODE_WORDS: usize = 2;

/// An unbounded multi-producer multi-consumer FIFO queue.
#[derive(Debug, Clone)]
pub struct TmQueue {
    head: TmVar<Addr>,
    tail: TmVar<Addr>,
    len: TmVar<u64>,
}

/// `WaitPred` predicate: the queue whose length field is at `args[0]` is
/// non-empty.
pub fn pred_queue_nonempty(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? > 0)
}

impl TmQueue {
    /// Allocates an empty queue.
    pub fn new(system: &Arc<TmSystem>) -> Self {
        TmQueue {
            head: TmVar::alloc(system, Addr::NULL),
            tail: TmVar::alloc(system, Addr::NULL),
            len: TmVar::alloc(system, 0),
        }
    }

    /// Heap address of the length field (for `Await`).
    pub fn len_addr(&self) -> Addr {
        self.len.addr()
    }

    /// Transactional length.
    pub fn len(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        self.len.get(tx)
    }

    /// Transactional emptiness check.
    pub fn is_empty(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Non-transactional length (verification only).
    pub fn len_direct(&self, system: &TmSystem) -> u64 {
        self.len.load_direct(system)
    }

    /// Appends `value` at the tail.
    pub fn enqueue(&self, tx: &mut dyn Tx, value: u64) -> TxResult<()> {
        let node = tx.alloc(NODE_WORDS)?;
        tx.write(node, value)?;
        tx.write(node.offset(1), Addr::NULL.0 as u64)?;
        let tail = self.tail.get(tx)?;
        if tail.is_null() {
            self.head.set(tx, node)?;
        } else {
            tx.write(tail.offset(1), node.0 as u64)?;
        }
        self.tail.set(tx, node)?;
        let n = self.len.get_for_update(tx)?;
        self.len.set(tx, n + 1)
    }

    /// Removes and returns the oldest element, or `None` if the queue is
    /// empty.  The removed node is freed transactionally (reclamation is
    /// deferred until commit by the runtimes).
    pub fn try_dequeue(&self, tx: &mut dyn Tx) -> TxResult<Option<u64>> {
        let head = self.head.get(tx)?;
        if head.is_null() {
            return Ok(None);
        }
        let value = tx.read(head)?;
        let next = Addr(tx.read(head.offset(1))? as usize);
        self.head.set(tx, next)?;
        if next.is_null() {
            self.tail.set(tx, Addr::NULL)?;
        }
        let n = self.len.get_for_update(tx)?;
        self.len.set(tx, n - 1)?;
        tx.free(head, NODE_WORDS)?;
        Ok(Some(value))
    }

    /// Dequeues, waiting with `mechanism` if the queue is empty.
    ///
    /// # Panics
    ///
    /// Panics for the lock-based mechanisms, which do not wait inside
    /// transactions.
    pub fn dequeue_waiting(&self, mechanism: Mechanism, tx: &mut dyn Tx) -> TxResult<u64> {
        if let Some(v) = self.try_dequeue(tx)? {
            return Ok(v);
        }
        match mechanism {
            Mechanism::Retry => condsync::retry(tx),
            Mechanism::RetryOrig => condsync::retry_orig(tx),
            Mechanism::Await => condsync::await_one(tx, self.len_addr()),
            Mechanism::WaitPred => {
                condsync::wait_pred(tx, pred_queue_nonempty, &[self.len_addr().0 as u64])
            }
            Mechanism::Restart => condsync::restart(tx),
            Mechanism::Pthreads | Mechanism::TmCondVar => {
                panic!("lock-based mechanisms wait outside transactions")
            }
        }
    }

    /// Dequeues, waiting at most `timeout` if the queue is empty: returns
    /// `Ok(Some(v))` once an element arrives, or `Ok(None)` if the queue
    /// stayed empty past the deadline (or the wait was cancelled).  This is
    /// what a lossy pipeline stage uses to skip ahead instead of stalling
    /// behind a slow upstream.
    ///
    /// # Panics
    ///
    /// Panics for mechanisms without timed-wait support (`Pthreads`,
    /// `TMCondVar`, `Retry-Orig`, `Restart`).
    pub fn pop_timeout(
        &self,
        mechanism: Mechanism,
        tx: &mut dyn Tx,
        timeout: Duration,
    ) -> TxResult<Option<u64>> {
        if let Some(v) = self.try_dequeue(tx)? {
            // This wait resolved (possibly despite a recorded timeout):
            // consume the reason so a later wait in the body starts fresh.
            condsync::clear_wake_reason(tx);
            return Ok(Some(v));
        }
        if condsync::wait_interrupted(tx) {
            condsync::clear_wake_reason(tx);
            return Ok(None);
        }
        match mechanism {
            Mechanism::Retry => condsync::retry_for(tx, timeout),
            Mechanism::Await => condsync::await_one_for(tx, self.len_addr(), timeout),
            Mechanism::WaitPred => condsync::wait_pred_for(
                tx,
                pred_queue_nonempty,
                &[self.len_addr().0 as u64],
                timeout,
            ),
            other => panic!("{other} does not support timed waits"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn direct_tx(system: &Arc<TmSystem>) -> DirectTx {
        DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    #[test]
    fn fifo_order() {
        let system = TmSystem::new(TmConfig::small());
        let q = TmQueue::new(&system);
        let mut tx = direct_tx(&system);
        for i in 1..=5 {
            q.enqueue(&mut tx, i).unwrap();
        }
        assert_eq!(q.len(&mut tx).unwrap(), 5);
        for i in 1..=5 {
            assert_eq!(q.try_dequeue(&mut tx).unwrap(), Some(i));
        }
        assert_eq!(q.try_dequeue(&mut tx).unwrap(), None);
        assert!(q.is_empty(&mut tx).unwrap());
    }

    #[test]
    fn dequeue_empty_then_refill() {
        let system = TmSystem::new(TmConfig::small());
        let q = TmQueue::new(&system);
        let mut tx = direct_tx(&system);
        assert_eq!(q.try_dequeue(&mut tx).unwrap(), None);
        q.enqueue(&mut tx, 42).unwrap();
        assert_eq!(q.try_dequeue(&mut tx).unwrap(), Some(42));
        q.enqueue(&mut tx, 43).unwrap();
        q.enqueue(&mut tx, 44).unwrap();
        assert_eq!(q.try_dequeue(&mut tx).unwrap(), Some(43));
        assert_eq!(q.try_dequeue(&mut tx).unwrap(), Some(44));
    }

    #[test]
    fn nodes_are_reclaimed() {
        let system = TmSystem::new(TmConfig::small());
        let q = TmQueue::new(&system);
        let baseline = system.heap.allocated_words();
        let mut tx = direct_tx(&system);
        for round in 0..50 {
            q.enqueue(&mut tx, round).unwrap();
            q.try_dequeue(&mut tx).unwrap();
        }
        // The direct tx frees immediately; the heap must not grow unboundedly.
        assert_eq!(system.heap.allocated_words(), baseline);
    }

    #[test]
    fn dequeue_waiting_requests_mechanism_specific_wait() {
        let system = TmSystem::new(TmConfig::small());
        let q = TmQueue::new(&system);
        let mut tx = direct_tx(&system);
        assert!(matches!(
            q.dequeue_waiting(Mechanism::Retry, &mut tx),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::ReadSetValues))
        ));
        assert!(matches!(
            q.dequeue_waiting(Mechanism::Await, &mut tx),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::Addrs(_)))
        ));
        assert!(matches!(
            q.dequeue_waiting(Mechanism::WaitPred, &mut tx),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::Pred { .. }))
        ));
    }

    #[test]
    fn pop_timeout_pops_or_requests_timed_wait() {
        let system = TmSystem::new(TmConfig::small());
        let q = TmQueue::new(&system);
        let mut tx = direct_tx(&system);
        let t = std::time::Duration::from_millis(20);
        q.enqueue(&mut tx, 5).unwrap();
        assert_eq!(
            q.pop_timeout(Mechanism::Retry, &mut tx, t).unwrap(),
            Some(5)
        );
        // Empty: requests a deadline-carrying deschedule...
        assert!(matches!(
            q.pop_timeout(Mechanism::Await, &mut tx, t),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::Addrs(_)))
        ));
        assert!(tx.common().wait_deadline.is_some());
        // ...and gives up once the driver reports the wait interrupted.
        tx.common_mut().wake_reason = Some(tm_core::WakeReason::Timeout);
        assert_eq!(q.pop_timeout(Mechanism::Await, &mut tx, t).unwrap(), None);
    }

    #[test]
    fn pred_queue_nonempty_tracks_len() {
        let system = TmSystem::new(TmConfig::small());
        let q = TmQueue::new(&system);
        let mut tx = direct_tx(&system);
        assert!(!pred_queue_nonempty(&mut tx, &[q.len_addr().0 as u64]).unwrap());
        q.enqueue(&mut tx, 1).unwrap();
        assert!(pred_queue_nonempty(&mut tx, &[q.len_addr().0 as u64]).unwrap());
    }
}
