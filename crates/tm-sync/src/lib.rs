//! Transactional data structures used by the paper's evaluation, plus the
//! lock-based baselines.
//!
//! The central structure is the bounded buffer of Algorithm 2 / Figure 2.2,
//! implemented once over the word heap with an entry point per condition-
//! synchronization mechanism ([`buffer::TmBoundedBuffer`]).  The
//! [`pthread::PthreadBuffer`] is the `Pthreads` baseline (mutex + condition
//! variables, no transactions).
//!
//! The remaining structures (counter, queue, stack, barrier) are the building
//! blocks of the PARSEC-like synthetic kernels in the `tm-workloads` crate.
//!
//! The KV plane — [`map::TmHashMap`] (primary store, with a measured
//! stripe-aligned layout) and [`ordered::TmOrderedMap`] (skiplist index for
//! range scans) — backs the `kv_store` session-store scenario and its
//! tail-latency benchmark.
//!
//! The blocking structures also expose **timed** operations built on the
//! deadline-carrying waits of `condsync`
//! ([`TmBoundedBuffer::produce_timeout`] / [`TmBoundedBuffer::consume_timeout`],
//! [`TmQueue::pop_timeout`], [`TmBarrier::wait_for`], [`TmLatch::wait_for`]):
//! each returns a "gave up" value instead of blocking past its deadline,
//! which is what lossy consumers, deadline-bounded pipeline stages and
//! watchdogged barriers are built from.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod barrier;
pub mod buffer;
pub mod cell;
pub mod counter;
pub mod latch;
pub mod map;
pub mod ordered;
pub mod pthread;
pub mod queue;
pub mod stack;

pub use barrier::{BarrierWait, TmBarrier};
pub use buffer::TmBoundedBuffer;
pub use cell::TmOnceCell;
pub use counter::TmCounter;
pub use latch::TmLatch;
pub use map::{MapLayout, TmHashMap};
pub use ordered::TmOrderedMap;
pub use pthread::PthreadBuffer;
pub use queue::TmQueue;
pub use stack::TmStack;
