//! A transactional ordered map (skiplist index).
//!
//! `TmOrderedMap` is a deterministic skiplist whose nodes live in the
//! transactional heap: every node is one contiguous block `[key, value,
//! level, next_0 .. next_{level-1}]` allocated through the transaction's
//! heap view (`tx.alloc`), so node allocation rides the per-thread heap
//! arenas and a node's hot words — the key that every traversal compares
//! and the level-0 link that every scan follows — share one cache line and
//! therefore one orec validation per visited node.  Tower height is a pure
//! function of the key (a splitmix64 hash's trailing ones), which keeps the
//! structure *identical across runtimes and interleavings* for a given key
//! set — the property the cross-runtime golden-parity tests lean on.
//!
//! Keys are ordered by their **encoded word** ([`TmValue::into_word`]),
//! which is the natural order for the unsigned integer key types; `range`
//! walks level 0 between two encoded bounds.  `get`/`contains`/`range`
//! only read, so run them under a declared read-only transaction
//! (`atomically_read`) to take the snapshot fast path.

use std::marker::PhantomData;
use std::sync::Arc;

use tm_core::{Addr, TmArray, TmSystem, TmValue, Tx, TxResult};

/// Maximum tower height; supports key sets far beyond what the fixed-size
/// heaps hold (expected search cost ~ log2(n) up to n ≈ 2^12 and degrades
/// only gently beyond).
const MAX_LEVEL: usize = 12;

/// Link-word sentinel for "no next node" (`Addr(0)` can be a live block).
const NIL: u64 = u64::MAX;

/// Node block header words before the link tower.
const HDR: usize = 3; // key, value, level

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic tower height for a key: geometric(1/2) via the trailing
/// ones of a hash, clamped to [`MAX_LEVEL`].  Identical on every runtime
/// and thread, so the final structure depends only on the key set.
fn level_for(key_word: u64) -> usize {
    let h = splitmix64(key_word ^ 0xA5A5_5A5A_C3C3_3C3C);
    1 + (h.trailing_ones() as usize).min(MAX_LEVEL - 1)
}

/// A fixed-order transactional skiplist from `K` to `V` (both one-word
/// [`TmValue`] types; `u64` by default), ordered by encoded key word.
#[derive(Debug)]
pub struct TmOrderedMap<K: TmValue = u64, V: TmValue = u64> {
    /// The head tower: `MAX_LEVEL` link words, each `NIL` or a node base
    /// address.
    head: TmArray<u64>,
    _marker: PhantomData<(K, V)>,
}

impl<K: TmValue, V: TmValue> Clone for TmOrderedMap<K, V> {
    fn clone(&self) -> Self {
        TmOrderedMap {
            head: self.head.clone(),
            _marker: PhantomData,
        }
    }
}

impl<K: TmValue, V: TmValue> TmOrderedMap<K, V> {
    /// Allocates an empty index in `system`'s heap.
    pub fn new(system: &Arc<TmSystem>) -> Self {
        TmOrderedMap {
            head: TmArray::alloc(system, MAX_LEVEL, NIL),
            _marker: PhantomData,
        }
    }

    /// The address of the head's level-`lvl` link word.
    fn head_link(&self, lvl: usize) -> Addr {
        self.head.addr_of(lvl)
    }

    /// The address of `node`'s level-`lvl` link word.
    fn node_link(node: u64, lvl: usize) -> Addr {
        Addr(node as usize + HDR + lvl)
    }

    /// Walks the tower and returns, per level, the address of the link word
    /// whose target is the first node with `key >= key_word` (the word an
    /// insert or unlink at that level must rewrite), plus that first node's
    /// base if its key equals `key_word`.
    fn find_preds(
        &self,
        tx: &mut dyn Tx,
        key_word: u64,
    ) -> TxResult<([Addr; MAX_LEVEL], Option<u64>)> {
        let mut preds = [Addr(0); MAX_LEVEL];
        // `None` while the pred is the head tower, `Some(base)` afterwards.
        let mut pred_node: Option<u64> = None;
        let mut link = self.head_link(MAX_LEVEL - 1);
        for lvl in (0..MAX_LEVEL).rev() {
            loop {
                let next = tx.read(link)?;
                if next == NIL {
                    break;
                }
                let next_key = tx.read(Addr(next as usize))?;
                if next_key >= key_word {
                    break;
                }
                pred_node = Some(next);
                link = Self::node_link(next, lvl);
            }
            preds[lvl] = link;
            if lvl > 0 {
                link = match pred_node {
                    None => self.head_link(lvl - 1),
                    Some(base) => Self::node_link(base, lvl - 1),
                };
            }
        }
        let candidate = tx.read(preds[0])?;
        let found = if candidate != NIL && tx.read(Addr(candidate as usize))? == key_word {
            Some(candidate)
        } else {
            None
        };
        Ok((preds, found))
    }

    /// Looks `key` up.
    pub fn get(&self, tx: &mut dyn Tx, key: K) -> TxResult<Option<V>> {
        let (_, found) = self.find_preds(tx, key.into_word())?;
        match found {
            Some(node) => Ok(Some(V::from_word(tx.read(Addr(node as usize + 1))?))),
            None => Ok(None),
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, tx: &mut dyn Tx, key: K) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// True if the index holds no entries.
    pub fn is_empty(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(tx.read(self.head_link(0))? == NIL)
    }

    /// Inserts or updates `key`, returning the previous value if any.
    ///
    /// A new node's block is allocated inside the transaction (`tx.alloc`),
    /// so an aborted insert leaves no trace.
    pub fn insert(&self, tx: &mut dyn Tx, key: K, value: V) -> TxResult<Option<V>> {
        let key_word = key.into_word();
        let (preds, found) = self.find_preds(tx, key_word)?;
        if let Some(node) = found {
            let value_addr = Addr(node as usize + 1);
            let old = tx.read(value_addr)?;
            tx.write(value_addr, value.into_word())?;
            return Ok(Some(V::from_word(old)));
        }
        let level = level_for(key_word);
        let base = tx.alloc(HDR + level)?;
        tx.write(base, key_word)?;
        tx.write(base.offset(1), value.into_word())?;
        tx.write(base.offset(2), level as u64)?;
        for (lvl, pred) in preds.iter().enumerate().take(level) {
            let next = tx.read(*pred)?;
            tx.write(Self::node_link(base.0 as u64, lvl), next)?;
            tx.write(*pred, base.0 as u64)?;
        }
        Ok(None)
    }

    /// Removes `key`, returning its value if it was present.  The node's
    /// block is freed inside the transaction.
    pub fn remove(&self, tx: &mut dyn Tx, key: K) -> TxResult<Option<V>> {
        let key_word = key.into_word();
        let (preds, found) = self.find_preds(tx, key_word)?;
        let Some(node) = found else {
            return Ok(None);
        };
        let old = tx.read(Addr(node as usize + 1))?;
        let level = tx.read(Addr(node as usize + 2))? as usize;
        for (lvl, pred) in preds.iter().enumerate().take(level) {
            // The node is linked at every level below its tower height, so
            // each of these preds' link words targets it.
            debug_assert_eq!(tx.read(*pred)?, node);
            let next = tx.read(Self::node_link(node, lvl))?;
            tx.write(*pred, next)?;
        }
        tx.free(Addr(node as usize), HDR + level)?;
        Ok(Some(V::from_word(old)))
    }

    /// Collects every entry with `lo <= key <= hi` (encoded-word order),
    /// ascending.  Read-only: runs on the snapshot fast path under
    /// `atomically_read`.
    pub fn range(&self, tx: &mut dyn Tx, lo: K, hi: K) -> TxResult<Vec<(K, V)>> {
        let lo_word = lo.into_word();
        let hi_word = hi.into_word();
        let mut out = Vec::new();
        let (preds, _) = self.find_preds(tx, lo_word)?;
        let mut node = tx.read(preds[0])?;
        while node != NIL {
            let key_word = tx.read(Addr(node as usize))?;
            if key_word > hi_word {
                break;
            }
            let value = tx.read(Addr(node as usize + 1))?;
            out.push((K::from_word(key_word), V::from_word(value)));
            node = tx.read(Self::node_link(node, 0))?;
        }
        Ok(out)
    }

    /// Non-transactional insert for benchmark/test setup **before** worker
    /// threads start (bypasses the runtimes entirely).
    pub fn insert_direct(&self, system: &TmSystem, key: K, value: V) -> Option<V> {
        let key_word = key.into_word();
        let mut preds = [Addr(0); MAX_LEVEL];
        let mut pred_node: Option<u64> = None;
        let mut link = self.head_link(MAX_LEVEL - 1);
        for lvl in (0..MAX_LEVEL).rev() {
            loop {
                let next = system.heap.load(link);
                if next == NIL || system.heap.load(Addr(next as usize)) >= key_word {
                    break;
                }
                pred_node = Some(next);
                link = Self::node_link(next, lvl);
            }
            preds[lvl] = link;
            if lvl > 0 {
                link = match pred_node {
                    None => self.head_link(lvl - 1),
                    Some(base) => Self::node_link(base, lvl - 1),
                };
            }
        }
        let candidate = system.heap.load(preds[0]);
        if candidate != NIL && system.heap.load(Addr(candidate as usize)) == key_word {
            let value_addr = Addr(candidate as usize + 1);
            let old = system.heap.load(value_addr);
            system.heap.store(value_addr, value.into_word());
            return Some(V::from_word(old));
        }
        let level = level_for(key_word);
        let base = system
            .heap
            .alloc(HDR + level)
            .expect("transactional heap exhausted");
        system.heap.store(base, key_word);
        system.heap.store(base.offset(1), value.into_word());
        system.heap.store(base.offset(2), level as u64);
        for (lvl, pred) in preds.iter().enumerate().take(level) {
            let next = system.heap.load(*pred);
            system.heap.store(Self::node_link(base.0 as u64, lvl), next);
            system.heap.store(*pred, base.0 as u64);
        }
        None
    }

    /// Non-transactional dump of every entry as `(key_word, value_word)` in
    /// key order (verification only; call when no transactions are running).
    pub fn dump_direct(&self, system: &TmSystem) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut node = system.heap.load(self.head_link(0));
        while node != NIL {
            out.push((
                system.heap.load(Addr(node as usize)),
                system.heap.load(Addr(node as usize + 1)),
            ));
            node = system.heap.load(Self::node_link(node, 0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn setup() -> (Arc<TmSystem>, TmOrderedMap, DirectTx) {
        let system = TmSystem::new(TmConfig::small());
        let index = TmOrderedMap::new(&system);
        let tx = DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(&system),
        };
        (system, index, tx)
    }

    #[test]
    fn insert_get_update_remove_round_trip() {
        let (system, index, mut tx) = setup();
        assert!(index.is_empty(&mut tx).unwrap());
        assert_eq!(index.insert(&mut tx, 5, 50).unwrap(), None);
        assert_eq!(index.insert(&mut tx, 1, 10).unwrap(), None);
        assert_eq!(index.insert(&mut tx, 9, 90).unwrap(), None);
        assert!(!index.is_empty(&mut tx).unwrap());
        assert_eq!(index.get(&mut tx, 5).unwrap(), Some(50));
        assert_eq!(index.get(&mut tx, 4).unwrap(), None);
        assert_eq!(index.insert(&mut tx, 5, 55).unwrap(), Some(50));
        assert_eq!(index.remove(&mut tx, 5).unwrap(), Some(55));
        assert_eq!(index.remove(&mut tx, 5).unwrap(), None);
        assert_eq!(index.dump_direct(&system), vec![(1, 10), (9, 90)]);
    }

    #[test]
    fn range_is_sorted_and_inclusive() {
        let (_system, index, mut tx) = setup();
        for k in [7u64, 3, 11, 1, 9, 5] {
            index.insert(&mut tx, k, k * 10).unwrap();
        }
        assert_eq!(
            index.range(&mut tx, 3, 9).unwrap(),
            vec![(3, 30), (5, 50), (7, 70), (9, 90)]
        );
        assert_eq!(index.range(&mut tx, 0, 100).unwrap().len(), 6);
        assert_eq!(index.range(&mut tx, 4, 4).unwrap(), vec![]);
        assert_eq!(index.range(&mut tx, 12, 3).unwrap(), vec![]);
    }

    #[test]
    fn matches_btreemap_model() {
        let (system, index, mut tx) = setup();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut seed = 7u64;
        for i in 0..400u64 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let key = seed % 64;
            match i % 4 {
                0 | 1 => {
                    assert_eq!(index.insert(&mut tx, key, i).unwrap(), model.insert(key, i));
                }
                2 => {
                    assert_eq!(index.remove(&mut tx, key).unwrap(), model.remove(&key));
                }
                _ => {
                    assert_eq!(index.get(&mut tx, key).unwrap(), model.get(&key).copied());
                }
            }
        }
        let expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        assert_eq!(index.dump_direct(&system), expected);
        let ranged = index.range(&mut tx, 0, u64::MAX - 1).unwrap();
        assert_eq!(ranged, expected);
    }

    #[test]
    fn direct_insert_matches_transactional_insert() {
        let (sys_a, index_a, mut tx) = setup();
        let sys_b = TmSystem::new(TmConfig::small());
        let index_b = TmOrderedMap::<u64, u64>::new(&sys_b);
        for k in [12u64, 4, 8, 2, 6, 10] {
            index_a.insert(&mut tx, k, k + 100).unwrap();
            index_b.insert_direct(&sys_b, k, k + 100);
        }
        assert_eq!(index_b.insert_direct(&sys_b, 4, 999), Some(104));
        index_a.insert(&mut tx, 4, 999).unwrap();
        assert_eq!(index_a.dump_direct(&sys_a), index_b.dump_direct(&sys_b));
    }

    #[test]
    fn removing_and_reinserting_keeps_tower_integrity() {
        // Deterministic towers mean a key reuses the same height every time;
        // remove/reinsert cycles must keep every level's chain sorted.
        let (system, index, mut tx) = setup();
        for k in 0..64u64 {
            index.insert(&mut tx, k, k).unwrap();
        }
        for k in (0..64u64).step_by(2) {
            assert_eq!(index.remove(&mut tx, k).unwrap(), Some(k));
        }
        for k in (0..64u64).step_by(2) {
            index.insert(&mut tx, k, k + 1000).unwrap();
        }
        let dump = index.dump_direct(&system);
        assert_eq!(dump.len(), 64);
        assert!(dump.windows(2).all(|w| w[0].0 < w[1].0), "sorted level 0");
        assert_eq!(index.get(&mut tx, 6).unwrap(), Some(1006));
        assert_eq!(index.get(&mut tx, 7).unwrap(), Some(7));
    }

    #[test]
    fn tower_heights_are_deterministic_and_plausibly_geometric() {
        let mut ones = 0usize;
        for k in 0..4096u64 {
            let l = level_for(k);
            assert_eq!(l, level_for(k), "height is a pure function of the key");
            assert!((1..=MAX_LEVEL).contains(&l));
            if l == 1 {
                ones += 1;
            }
        }
        // Geometric(1/2): about half of all keys stay at level 1.
        assert!(
            (1500..=2600).contains(&ones),
            "level-1 fraction {ones}/4096"
        );
    }
}
