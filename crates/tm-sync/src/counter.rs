//! A shared transactional counter, plus a threshold wait expressed with each
//! of the paper's mechanisms.  Used by the PARSEC-like kernels for progress
//! tracking (e.g. "wait until all stage-1 items have been processed").

use std::sync::Arc;

use condsync::Mechanism;
use tm_core::{Addr, TmSystem, TmVar, Tx, TxResult};

/// A transactional counter living in the word heap.
#[derive(Debug, Clone)]
pub struct TmCounter {
    value: TmVar<u64>,
}

/// `WaitPred` predicate: the counter at `args[0]` has reached `args[1]`.
pub fn pred_reached(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? >= args[1])
}

impl TmCounter {
    /// Allocates a counter with the given initial value.
    pub fn new(system: &Arc<TmSystem>, init: u64) -> Self {
        TmCounter {
            value: TmVar::alloc(system, init),
        }
    }

    /// Heap address of the counter (for `Await`).
    pub fn addr(&self) -> Addr {
        self.value.addr()
    }

    /// Transactionally reads the counter.
    pub fn get(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        self.value.get(tx)
    }

    /// Transactionally adds `n`, returning the new value.
    pub fn add(&self, tx: &mut dyn Tx, n: u64) -> TxResult<u64> {
        let v = self.value.get_for_update(tx)? + n;
        self.value.set(tx, v)?;
        Ok(v)
    }

    /// Transactionally increments, returning the new value.
    pub fn increment(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        self.add(tx, 1)
    }

    /// Non-transactional read (verification only).
    pub fn load_direct(&self, system: &TmSystem) -> u64 {
        self.value.load_direct(system)
    }

    /// Non-transactional write (setup only).
    pub fn store_direct(&self, system: &TmSystem, v: u64) {
        self.value.store_direct(system, v);
    }

    /// From inside a transaction: return the counter's value if it has
    /// reached `threshold`, otherwise wait using `mechanism`.
    ///
    /// # Panics
    ///
    /// Panics if called with [`Mechanism::Pthreads`] or
    /// [`Mechanism::TmCondVar`] — lock-based code paths do their waiting
    /// outside transactions.
    pub fn wait_for_at_least(
        &self,
        mechanism: Mechanism,
        tx: &mut dyn Tx,
        threshold: u64,
    ) -> TxResult<u64> {
        let v = self.value.get(tx)?;
        if v >= threshold {
            return Ok(v);
        }
        match mechanism {
            Mechanism::Retry => condsync::retry(tx),
            Mechanism::RetryOrig => condsync::retry_orig(tx),
            Mechanism::Await => condsync::await_one(tx, self.addr()),
            Mechanism::WaitPred => {
                condsync::wait_pred(tx, pred_reached, &[self.addr().0 as u64, threshold])
            }
            Mechanism::Restart => condsync::restart(tx),
            Mechanism::Pthreads | Mechanism::TmCondVar => {
                panic!("lock-based mechanisms wait outside transactions")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn direct_tx(system: &Arc<TmSystem>) -> DirectTx {
        DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    #[test]
    fn increment_and_add() {
        let system = TmSystem::new(TmConfig::small());
        let c = TmCounter::new(&system, 10);
        let mut tx = direct_tx(&system);
        assert_eq!(c.increment(&mut tx).unwrap(), 11);
        assert_eq!(c.add(&mut tx, 5).unwrap(), 16);
        assert_eq!(c.load_direct(&system), 16);
    }

    #[test]
    fn wait_for_at_least_returns_when_satisfied() {
        let system = TmSystem::new(TmConfig::small());
        let c = TmCounter::new(&system, 7);
        let mut tx = direct_tx(&system);
        assert_eq!(
            c.wait_for_at_least(Mechanism::Retry, &mut tx, 5).unwrap(),
            7
        );
    }

    #[test]
    fn wait_for_at_least_requests_deschedule_when_below_threshold() {
        let system = TmSystem::new(TmConfig::small());
        let c = TmCounter::new(&system, 1);
        let mut tx = direct_tx(&system);
        assert!(matches!(
            c.wait_for_at_least(Mechanism::Await, &mut tx, 5),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::Addrs(_)))
        ));
        assert!(matches!(
            c.wait_for_at_least(Mechanism::WaitPred, &mut tx, 5),
            Err(TxCtl::Deschedule(tm_core::WaitSpec::Pred { .. }))
        ));
        assert!(matches!(
            c.wait_for_at_least(Mechanism::Restart, &mut tx, 5),
            Err(TxCtl::Abort(AbortReason::Explicit(_)))
        ));
    }

    #[test]
    fn pred_reached_matches_threshold_semantics() {
        let system = TmSystem::new(TmConfig::small());
        let c = TmCounter::new(&system, 3);
        let mut tx = direct_tx(&system);
        assert!(pred_reached(&mut tx, &[c.addr().0 as u64, 3]).unwrap());
        assert!(!pred_reached(&mut tx, &[c.addr().0 as u64, 4]).unwrap());
    }
}
