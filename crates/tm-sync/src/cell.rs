//! A transactional single-assignment cell ("future"/"promise").
//!
//! `TmOnceCell` holds a value that is written exactly once; readers that
//! arrive before the value exists wait with the application's chosen
//! condition-synchronization mechanism.  It is the smallest useful consumer
//! of the paper's constructs — a one-shot hand-off — and doubles as the
//! building block for dataflow-style pipelines where a stage's output is
//! awaited by several downstream transactions.

use std::sync::Arc;

use condsync::Mechanism;
use tm_core::{Addr, TmSystem, TmVar, Tx, TxResult};

/// A transactional write-once cell.
///
/// Internally two heap words: a `set` flag and the value.  The flag (rather
/// than a sentinel value) lets the cell store any `u64`, including zero and
/// `u64::MAX`.
#[derive(Debug, Clone)]
pub struct TmOnceCell {
    set: TmVar<u64>,
    value: TmVar<u64>,
}

/// `WaitPred` predicate: the cell identified by `args = [set_addr]` has been
/// assigned.
pub fn pred_cell_set(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? != 0)
}

impl TmOnceCell {
    /// Allocates an empty cell in `system`'s heap.
    pub fn new(system: &Arc<TmSystem>) -> Self {
        TmOnceCell {
            set: TmVar::alloc(system, 0),
            value: TmVar::alloc(system, 0),
        }
    }

    /// Heap address of the `set` flag (the word `Await` waits on).
    pub fn flag_addr(&self) -> Addr {
        self.set.addr()
    }

    /// True if a value has been assigned.
    pub fn is_set(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(self.set.get(tx)? != 0)
    }

    /// Non-transactional check (setup / verification only).
    pub fn is_set_direct(&self, system: &TmSystem) -> bool {
        self.set.load_direct(system) != 0
    }

    /// Assigns the value.  Returns `true` if this call performed the
    /// assignment, `false` if the cell was already set (the existing value is
    /// left untouched, matching `OnceCell::set` semantics).
    pub fn try_set(&self, tx: &mut dyn Tx, value: u64) -> TxResult<bool> {
        if self.set.get(tx)? != 0 {
            return Ok(false);
        }
        self.value.set(tx, value)?;
        self.set.set(tx, 1)?;
        Ok(true)
    }

    /// Reads the value if it has been assigned.
    pub fn try_get(&self, tx: &mut dyn Tx) -> TxResult<Option<u64>> {
        if self.set.get(tx)? == 0 {
            return Ok(None);
        }
        Ok(Some(self.value.get(tx)?))
    }

    /// Reads the value, waiting with `mechanism` until it is assigned.
    ///
    /// # Panics
    ///
    /// Panics for the lock-based mechanisms, which wait outside transactions.
    pub fn get_waiting(&self, mechanism: Mechanism, tx: &mut dyn Tx) -> TxResult<u64> {
        if let Some(v) = self.try_get(tx)? {
            return Ok(v);
        }
        match mechanism {
            Mechanism::Retry => condsync::retry(tx),
            Mechanism::RetryOrig => condsync::retry_orig(tx),
            Mechanism::Await => condsync::await_one(tx, self.flag_addr()),
            Mechanism::WaitPred => {
                condsync::wait_pred(tx, pred_cell_set, &[self.flag_addr().0 as u64])
            }
            Mechanism::Restart => condsync::restart(tx),
            Mechanism::Pthreads | Mechanism::TmCondVar => {
                panic!("lock-based mechanisms wait outside transactions")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode, WaitSpec};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn direct_tx(system: &Arc<TmSystem>) -> DirectTx {
        DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    #[test]
    fn set_once_then_read_back() {
        let system = TmSystem::new(TmConfig::small());
        let cell = TmOnceCell::new(&system);
        let mut tx = direct_tx(&system);
        assert!(!cell.is_set(&mut tx).unwrap());
        assert_eq!(cell.try_get(&mut tx).unwrap(), None);
        assert!(cell.try_set(&mut tx, 99).unwrap());
        assert_eq!(cell.try_get(&mut tx).unwrap(), Some(99));
        assert!(cell.is_set_direct(&system));
    }

    #[test]
    fn second_set_is_rejected_and_preserves_first_value() {
        let system = TmSystem::new(TmConfig::small());
        let cell = TmOnceCell::new(&system);
        let mut tx = direct_tx(&system);
        assert!(cell.try_set(&mut tx, 1).unwrap());
        assert!(!cell.try_set(&mut tx, 2).unwrap());
        assert_eq!(cell.try_get(&mut tx).unwrap(), Some(1));
    }

    #[test]
    fn zero_and_max_are_representable_values() {
        let system = TmSystem::new(TmConfig::small());
        let mut tx = direct_tx(&system);
        let zero = TmOnceCell::new(&system);
        assert!(zero.try_set(&mut tx, 0).unwrap());
        assert_eq!(zero.try_get(&mut tx).unwrap(), Some(0));
        let max = TmOnceCell::new(&system);
        assert!(max.try_set(&mut tx, u64::MAX).unwrap());
        assert_eq!(max.try_get(&mut tx).unwrap(), Some(u64::MAX));
    }

    #[test]
    fn get_waiting_returns_immediately_when_set() {
        let system = TmSystem::new(TmConfig::small());
        let cell = TmOnceCell::new(&system);
        let mut tx = direct_tx(&system);
        cell.try_set(&mut tx, 7).unwrap();
        assert_eq!(cell.get_waiting(Mechanism::Retry, &mut tx).unwrap(), 7);
        assert_eq!(cell.get_waiting(Mechanism::Await, &mut tx).unwrap(), 7);
    }

    #[test]
    fn get_waiting_requests_the_right_deschedule_when_empty() {
        let system = TmSystem::new(TmConfig::small());
        let cell = TmOnceCell::new(&system);
        let mut tx = direct_tx(&system);
        assert!(matches!(
            cell.get_waiting(Mechanism::Retry, &mut tx),
            Err(TxCtl::Deschedule(WaitSpec::ReadSetValues))
        ));
        match cell.get_waiting(Mechanism::Await, &mut tx) {
            Err(TxCtl::Deschedule(WaitSpec::Addrs(a))) => assert_eq!(a, vec![cell.flag_addr()]),
            other => panic!("unexpected {other:?}"),
        }
        match cell.get_waiting(Mechanism::WaitPred, &mut tx) {
            Err(TxCtl::Deschedule(WaitSpec::Pred { args, .. })) => {
                assert_eq!(args, vec![cell.flag_addr().0 as u64]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn predicate_tracks_the_flag() {
        let system = TmSystem::new(TmConfig::small());
        let cell = TmOnceCell::new(&system);
        let mut tx = direct_tx(&system);
        let args = [cell.flag_addr().0 as u64];
        assert!(!pred_cell_set(&mut tx, &args).unwrap());
        cell.try_set(&mut tx, 3).unwrap();
        assert!(pred_cell_set(&mut tx, &args).unwrap());
    }
}
