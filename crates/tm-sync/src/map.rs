//! A fixed-capacity transactional hash map.
//!
//! `TmHashMap` is an open-addressing (linear probing) hash table whose slots
//! live in the transactional heap, so lookups and updates compose with any
//! other transactional state, and a reader can *wait* for a key to appear
//! using the paper's mechanisms ([`TmHashMap::get_waiting`]).  The table is
//! the kind of shared index the PARSEC applications keep under a lock
//! (dedup's chunk index, ferret's result table) and the primary store of the
//! `kv_store` session-store scenario; it is deliberately simple — no
//! resizing, no tombstone compaction beyond what linear probing needs —
//! because its job is to exercise multi-word transactions, not to be a
//! general-purpose collection.
//!
//! # Layouts
//!
//! The map ships with two memory layouts ([`MapLayout`]) so the cost of
//! layout/orec co-design is *measurable* rather than asserted:
//!
//! - [`MapLayout::Naive`] is the textbook three-parallel-arrays design
//!   (state / key / value planes) with one global entry counter.  A lookup
//!   reads two or three words in *different* heap regions (two or three orec
//!   validations per probe), and every size-changing write CASes the single
//!   counter word's orec — a built-in hot stripe at high thread counts.
//! - [`MapLayout::StripeAligned`] (the default) packs each bucket into one
//!   contiguous two-word cell `[tag|key, value]`, so probing an absent key
//!   reads exactly one word (one orec validation) and a hit reads two
//!   adjacent words whose stripes the Fibonacci address hash of
//!   [`tm_core::OrecTable::index_for`] scatters independently of
//!   neighbouring buckets.  The global counter is replaced by a small set of
//!   occupancy counters whose heap words are *chosen with
//!   [`tm_core::OrecTable::select_distinct_stripes`]* so no two counters
//!   share an ownership record: independent writers bump independent
//!   stripes, and the `orec_cas_failures` gap between the two layouts is the
//!   bench's acceptance metric.

use std::marker::PhantomData;
use std::sync::Arc;

use condsync::Mechanism;
use tm_core::{Addr, TmArray, TmSystem, TmValue, TmVar, Tx, TxResult};

/// Slot states for the naive layout, stored alongside each key.
const EMPTY: u64 = 0;
const OCCUPIED: u64 = 1;
const TOMBSTONE: u64 = 2;

/// Stripe-aligned layout: tag bits live in the top two bits of the key word.
const TAG_SHIFT: u32 = 62;
const TAG_OCCUPIED: u64 = 1 << TAG_SHIFT;
const TAG_TOMBSTONE: u64 = 2 << TAG_SHIFT;
const KEY_MASK: u64 = TAG_OCCUPIED - 1;

/// Number of striped occupancy counters (power of two).
const COUNTER_SHARDS: usize = 8;

/// Over-allocation factor when hunting for counter words on distinct orec
/// stripes.
const COUNTER_CANDIDATES_PER_SHARD: usize = 8;

/// 2^64 / golden ratio — Fibonacci hashing constant (same one the orec
/// table uses for addresses).
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Memory layout of a [`TmHashMap`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum MapLayout {
    /// Three parallel word planes (state / key / value) plus one global
    /// entry counter.  Kept as the measured baseline: the counter word is a
    /// deliberate orec hot spot and a lookup validates one orec per plane
    /// touched.
    Naive,
    /// Packed two-word cells plus striped occupancy counters placed on
    /// pairwise-distinct orec stripes (the default).  Keys are limited to 62
    /// bits because the cell tag rides in the key word — that is exactly
    /// what lets an absent-key probe validate a single orec.
    StripeAligned,
}

impl MapLayout {
    /// Both layouts, for sweeps.
    pub const ALL: [MapLayout; 2] = [MapLayout::Naive, MapLayout::StripeAligned];

    /// Short label used in bench tables and JSON.
    pub fn label(self) -> &'static str {
        match self {
            MapLayout::Naive => "naive",
            MapLayout::StripeAligned => "striped",
        }
    }
}

#[derive(Debug, Clone)]
enum Repr {
    Naive {
        state: TmArray<u64>,
        keys: TmArray<u64>,
        values: TmArray<u64>,
        len: TmVar<u64>,
    },
    Striped {
        /// `2 * capacity` words; cell `i` is `[tag|key, value]` at words
        /// `2i, 2i+1`.
        cells: TmArray<u64>,
        /// Occupancy counters on pairwise-distinct orec stripes; a key's
        /// counter is chosen by hash, so the mapping is deterministic.
        counters: Vec<TmVar<u64>>,
    },
}

/// A fixed-capacity transactional hash map from `K` to `V` (both one-word
/// [`TmValue`] types; `u64` by default).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use tm_core::{TmConfig, TmRt, TmSystem};
/// use tm_sync::TmHashMap;
///
/// let system = TmSystem::new(TmConfig::small());
/// let rt = stm_eager::EagerStm::new(Arc::clone(&system));
/// let map: TmHashMap<u64, u64> = TmHashMap::new(&system, 16);
///
/// let th = system.register_thread();
/// let old = rt.atomically(&th, |tx| map.insert(tx, 7, 700));
/// assert_eq!(old, None);
///
/// // Lookups are read-only transactions: under `SnapshotMode::On` they
/// // commit through the zero-footprint snapshot fast path.
/// let got = rt.atomically_read(&th, |tx| map.get(tx, 7));
/// assert_eq!(got, Some(700));
/// ```
#[derive(Debug, Clone)]
pub struct TmHashMap<K: TmValue = u64, V: TmValue = u64> {
    repr: Repr,
    capacity: usize,
    _marker: PhantomData<(K, V)>,
}

/// `WaitPred` predicate: the map identified by `args = [len_addr, n]` holds
/// at least `n` entries (naive layout's single counter word).
pub fn pred_map_len_at_least(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? >= args[1])
}

/// `WaitPred` predicate: the counter word identified by `args = [addr, old]`
/// has changed.  Used by the stripe-aligned layout, whose waiters watch one
/// occupancy counter: a plain threshold would miss an insert that follows a
/// remove (the count returns to its old value), but every size-changing
/// commit *changes* the word at its wake check, so change-detection never
/// strands a waiter whose key arrived.
pub fn pred_map_counter_changed(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? != args[1])
}

fn fib_high(word: u64) -> usize {
    (word.wrapping_mul(FIB) >> 32) as usize
}

impl<K: TmValue, V: TmValue> TmHashMap<K, V> {
    /// Allocates a map with room for `capacity` entries in `system`'s heap,
    /// using the default [`MapLayout::StripeAligned`] layout.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(system: &Arc<TmSystem>, capacity: usize) -> Self {
        TmHashMap::with_layout(system, capacity, MapLayout::StripeAligned)
    }

    /// Allocates a map with an explicit [`MapLayout`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_layout(system: &Arc<TmSystem>, capacity: usize, layout: MapLayout) -> Self {
        assert!(capacity > 0, "map capacity must be positive");
        let capacity = capacity.next_power_of_two();
        let repr = match layout {
            MapLayout::Naive => Repr::Naive {
                state: TmArray::alloc(system, capacity, EMPTY),
                keys: TmArray::alloc(system, capacity, 0),
                values: TmArray::alloc(system, capacity, 0),
                len: TmVar::alloc(system, 0),
            },
            MapLayout::StripeAligned => {
                let cells = TmArray::alloc(system, 2 * capacity, 0);
                // Hunt for counter words on pairwise-distinct orec stripes:
                // over-allocate candidates and let the orec plane pick.  The
                // unused candidate words are a tiny, one-time setup cost.
                let candidates =
                    TmArray::<u64>::alloc(system, COUNTER_SHARDS * COUNTER_CANDIDATES_PER_SHARD, 0);
                let addrs = (0..candidates.len()).map(|i| candidates.addr_of(i));
                let mut picked = system.orecs.select_distinct_stripes(addrs, COUNTER_SHARDS);
                // A tiny orec table may not have enough stripes; top up with
                // remaining candidates (correctness never depends on
                // distinctness, only the contention claim does).
                for i in 0..candidates.len() {
                    if picked.len() == COUNTER_SHARDS {
                        break;
                    }
                    let addr = candidates.addr_of(i);
                    if !picked.contains(&addr) {
                        picked.push(addr);
                    }
                }
                let counters = picked.into_iter().map(TmVar::from_addr).collect();
                Repr::Striped { cells, counters }
            }
        };
        TmHashMap {
            repr,
            capacity,
            _marker: PhantomData,
        }
    }

    /// The slot capacity (rounded up to a power of two at construction).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The map's memory layout.
    pub fn layout(&self) -> MapLayout {
        match self.repr {
            Repr::Naive { .. } => MapLayout::Naive,
            Repr::Striped { .. } => MapLayout::StripeAligned,
        }
    }

    /// Heap address of the naive layout's entry count (what `Await`-style
    /// waiters watch).
    ///
    /// # Panics
    ///
    /// Panics on the stripe-aligned layout, which deliberately has no single
    /// count word — use [`TmHashMap::wait_addr`] to watch a key's counter.
    pub fn len_addr(&self) -> Addr {
        match &self.repr {
            Repr::Naive { len, .. } => len.addr(),
            Repr::Striped { .. } => {
                panic!("stripe-aligned maps have no single length word; use wait_addr(key)")
            }
        }
    }

    /// Heap address a waiter for `key` should watch: the length word on the
    /// naive layout, the key's striped occupancy counter otherwise.  Every
    /// insert of `key` bumps the returned word's stripe, so an `Await` on it
    /// can never miss the insert.
    pub fn wait_addr(&self, key: K) -> Addr {
        match &self.repr {
            Repr::Naive { len, .. } => len.addr(),
            Repr::Striped { counters, .. } => self.counter_for(counters, key.into_word()).addr(),
        }
    }

    fn counter_for<'c>(&self, counters: &'c [TmVar<u64>], key_word: u64) -> &'c TmVar<u64> {
        &counters[fib_high(key_word) & (COUNTER_SHARDS - 1)]
    }

    /// Transactional entry count.  One read on the naive layout, one read
    /// per occupancy-counter shard on the stripe-aligned layout.
    pub fn len(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        match &self.repr {
            Repr::Naive { len, .. } => len.get(tx),
            Repr::Striped { counters, .. } => {
                let mut total = 0;
                for c in counters {
                    total += c.get(tx)?;
                }
                Ok(total)
            }
        }
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(self.len(tx)? == 0)
    }

    /// Non-transactional entry count (setup / verification only).
    pub fn len_direct(&self, system: &TmSystem) -> u64 {
        match &self.repr {
            Repr::Naive { len, .. } => len.load_direct(system),
            Repr::Striped { counters, .. } => counters.iter().map(|c| c.load_direct(system)).sum(),
        }
    }

    fn slot_for(&self, key_word: u64, probe: usize) -> usize {
        // Fibonacci hashing spreads sequential keys well enough for a test
        // substrate; linear probing resolves collisions.
        (fib_high(key_word) + probe) & (self.capacity - 1)
    }

    fn tagged(key_word: u64) -> u64 {
        assert!(
            key_word & !KEY_MASK == 0,
            "stripe-aligned TmHashMap keys must fit in 62 bits (got {key_word:#x})"
        );
        TAG_OCCUPIED | key_word
    }

    /// Inserts or updates `key`, returning the previous value if any.
    ///
    /// # Panics
    ///
    /// Panics if the table is full and `key` is not already present, or (on
    /// the stripe-aligned layout) if the key's word encoding exceeds 62 bits.
    pub fn insert(&self, tx: &mut dyn Tx, key: K, value: V) -> TxResult<Option<V>> {
        let key_word = key.into_word();
        match &self.repr {
            Repr::Naive {
                state,
                keys,
                values,
                len,
            } => {
                let mut first_tombstone: Option<usize> = None;
                for probe in 0..self.capacity {
                    let slot = self.slot_for(key_word, probe);
                    match state.get(tx, slot)? {
                        EMPTY => {
                            let target = first_tombstone.unwrap_or(slot);
                            state.set(tx, target, OCCUPIED)?;
                            keys.set(tx, target, key_word)?;
                            values.set(tx, target, value.into_word())?;
                            let n = len.get_for_update(tx)?;
                            len.set(tx, n + 1)?;
                            return Ok(None);
                        }
                        TOMBSTONE => {
                            if first_tombstone.is_none() {
                                first_tombstone = Some(slot);
                            }
                        }
                        _ => {
                            if keys.get(tx, slot)? == key_word {
                                let old = values.get(tx, slot)?;
                                values.set(tx, slot, value.into_word())?;
                                return Ok(Some(V::from_word(old)));
                            }
                        }
                    }
                }
                if let Some(slot) = first_tombstone {
                    state.set(tx, slot, OCCUPIED)?;
                    keys.set(tx, slot, key_word)?;
                    values.set(tx, slot, value.into_word())?;
                    let n = len.get_for_update(tx)?;
                    len.set(tx, n + 1)?;
                    return Ok(None);
                }
                panic!("TmHashMap is full (capacity {})", self.capacity);
            }
            Repr::Striped { cells, counters } => {
                let tagged = Self::tagged(key_word);
                let mut first_tombstone: Option<usize> = None;
                for probe in 0..self.capacity {
                    let slot = self.slot_for(key_word, probe);
                    let word = cells.get(tx, 2 * slot)?;
                    if word == EMPTY {
                        let target = first_tombstone.unwrap_or(slot);
                        cells.set(tx, 2 * target, tagged)?;
                        cells.set(tx, 2 * target + 1, value.into_word())?;
                        self.counter_for(counters, key_word).update(tx, |n| n + 1)?;
                        return Ok(None);
                    }
                    if word == tagged {
                        let old = cells.get(tx, 2 * slot + 1)?;
                        cells.set(tx, 2 * slot + 1, value.into_word())?;
                        return Ok(Some(V::from_word(old)));
                    }
                    if word & !KEY_MASK == TAG_TOMBSTONE && first_tombstone.is_none() {
                        first_tombstone = Some(slot);
                    }
                }
                if let Some(slot) = first_tombstone {
                    cells.set(tx, 2 * slot, tagged)?;
                    cells.set(tx, 2 * slot + 1, value.into_word())?;
                    self.counter_for(counters, key_word).update(tx, |n| n + 1)?;
                    return Ok(None);
                }
                panic!("TmHashMap is full (capacity {})", self.capacity);
            }
        }
    }

    /// Looks `key` up.
    ///
    /// On the stripe-aligned layout an absent key costs one heap read (one
    /// orec validation) per probe and a hit costs two; run it under a
    /// declared read-only transaction (`atomically_read`) to take the
    /// snapshot fast path.
    pub fn get(&self, tx: &mut dyn Tx, key: K) -> TxResult<Option<V>> {
        let key_word = key.into_word();
        match &self.repr {
            Repr::Naive {
                state,
                keys,
                values,
                ..
            } => {
                for probe in 0..self.capacity {
                    let slot = self.slot_for(key_word, probe);
                    match state.get(tx, slot)? {
                        EMPTY => return Ok(None),
                        OCCUPIED if keys.get(tx, slot)? == key_word => {
                            return Ok(Some(V::from_word(values.get(tx, slot)?)));
                        }
                        _ => {}
                    }
                }
                Ok(None)
            }
            Repr::Striped { cells, .. } => {
                let tagged = Self::tagged(key_word);
                for probe in 0..self.capacity {
                    let slot = self.slot_for(key_word, probe);
                    let word = cells.get(tx, 2 * slot)?;
                    if word == EMPTY {
                        return Ok(None);
                    }
                    if word == tagged {
                        return Ok(Some(V::from_word(cells.get(tx, 2 * slot + 1)?)));
                    }
                }
                Ok(None)
            }
        }
    }

    /// True if `key` is present.
    pub fn contains(&self, tx: &mut dyn Tx, key: K) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&self, tx: &mut dyn Tx, key: K) -> TxResult<Option<V>> {
        let key_word = key.into_word();
        match &self.repr {
            Repr::Naive {
                state,
                keys,
                values,
                len,
            } => {
                for probe in 0..self.capacity {
                    let slot = self.slot_for(key_word, probe);
                    match state.get(tx, slot)? {
                        EMPTY => return Ok(None),
                        OCCUPIED if keys.get(tx, slot)? == key_word => {
                            let old = values.get(tx, slot)?;
                            state.set(tx, slot, TOMBSTONE)?;
                            let n = len.get_for_update(tx)?;
                            len.set(tx, n - 1)?;
                            return Ok(Some(V::from_word(old)));
                        }
                        _ => {}
                    }
                }
                Ok(None)
            }
            Repr::Striped { cells, counters } => {
                let tagged = Self::tagged(key_word);
                for probe in 0..self.capacity {
                    let slot = self.slot_for(key_word, probe);
                    let word = cells.get(tx, 2 * slot)?;
                    if word == EMPTY {
                        return Ok(None);
                    }
                    if word == tagged {
                        let old = cells.get(tx, 2 * slot + 1)?;
                        cells.set(tx, 2 * slot, TAG_TOMBSTONE)?;
                        self.counter_for(counters, key_word).update(tx, |n| n - 1)?;
                        return Ok(Some(V::from_word(old)));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Non-transactional insert for benchmark/test setup **before** worker
    /// threads start (bypasses the runtimes, so concurrent use is a data
    /// race by construction).  Keeps a 100%-read measurement honest: the
    /// measured phase never has to pay the population writes, and
    /// `read_set_max` stays a property of the lookups alone.
    ///
    /// # Panics
    ///
    /// Panics if the table is full and `key` is not already present.
    pub fn insert_direct(&self, system: &TmSystem, key: K, value: V) -> Option<V> {
        let key_word = key.into_word();
        match &self.repr {
            Repr::Naive {
                state,
                keys,
                values,
                len,
            } => {
                let mut first_tombstone: Option<usize> = None;
                for probe in 0..self.capacity {
                    let slot = self.slot_for(key_word, probe);
                    match state.load_direct(system, slot) {
                        EMPTY => {
                            let target = first_tombstone.unwrap_or(slot);
                            state.store_direct(system, target, OCCUPIED);
                            keys.store_direct(system, target, key_word);
                            values.store_direct(system, target, value.into_word());
                            len.store_direct(system, len.load_direct(system) + 1);
                            return None;
                        }
                        TOMBSTONE => {
                            if first_tombstone.is_none() {
                                first_tombstone = Some(slot);
                            }
                        }
                        _ => {
                            if keys.load_direct(system, slot) == key_word {
                                let old = values.load_direct(system, slot);
                                values.store_direct(system, slot, value.into_word());
                                return Some(V::from_word(old));
                            }
                        }
                    }
                }
                if let Some(slot) = first_tombstone {
                    state.store_direct(system, slot, OCCUPIED);
                    keys.store_direct(system, slot, key_word);
                    values.store_direct(system, slot, value.into_word());
                    len.store_direct(system, len.load_direct(system) + 1);
                    return None;
                }
                panic!("TmHashMap is full (capacity {})", self.capacity);
            }
            Repr::Striped { cells, counters } => {
                let tagged = Self::tagged(key_word);
                let mut first_tombstone: Option<usize> = None;
                for probe in 0..self.capacity {
                    let slot = self.slot_for(key_word, probe);
                    let word = cells.load_direct(system, 2 * slot);
                    if word == EMPTY {
                        let target = first_tombstone.unwrap_or(slot);
                        cells.store_direct(system, 2 * target, tagged);
                        cells.store_direct(system, 2 * target + 1, value.into_word());
                        let c = self.counter_for(counters, key_word);
                        c.store_direct(system, c.load_direct(system) + 1);
                        return None;
                    }
                    if word == tagged {
                        let old = cells.load_direct(system, 2 * slot + 1);
                        cells.store_direct(system, 2 * slot + 1, value.into_word());
                        return Some(V::from_word(old));
                    }
                    if word & !KEY_MASK == TAG_TOMBSTONE && first_tombstone.is_none() {
                        first_tombstone = Some(slot);
                    }
                }
                if let Some(slot) = first_tombstone {
                    cells.store_direct(system, 2 * slot, tagged);
                    cells.store_direct(system, 2 * slot + 1, value.into_word());
                    let c = self.counter_for(counters, key_word);
                    c.store_direct(system, c.load_direct(system) + 1);
                    return None;
                }
                panic!("TmHashMap is full (capacity {})", self.capacity);
            }
        }
    }

    /// Non-transactional dump of every occupied entry as `(key_word,
    /// value_word)`, sorted by key word (verification only; call when no
    /// transactions are running).
    pub fn dump_direct(&self, system: &TmSystem) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        match &self.repr {
            Repr::Naive {
                state,
                keys,
                values,
                ..
            } => {
                for slot in 0..self.capacity {
                    if state.load_direct(system, slot) == OCCUPIED {
                        out.push((
                            keys.load_direct(system, slot),
                            values.load_direct(system, slot),
                        ));
                    }
                }
            }
            Repr::Striped { cells, .. } => {
                for slot in 0..self.capacity {
                    let word = cells.load_direct(system, 2 * slot);
                    if word & !KEY_MASK == TAG_OCCUPIED {
                        out.push((word & KEY_MASK, cells.load_direct(system, 2 * slot + 1)));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Looks `key` up, waiting with `mechanism` until some writer inserts it.
    ///
    /// For `Await` the waiter watches [`TmHashMap::wait_addr`]: the naive
    /// layout's entry count, or the key's striped occupancy counter — in
    /// both cases a word every insertion of the key writes, so the wake can
    /// never be missed (the paper's §2.3 discussion of choosing what to
    /// track applies directly here).
    ///
    /// # Panics
    ///
    /// Panics for the lock-based mechanisms, which wait outside transactions.
    pub fn get_waiting(&self, mechanism: Mechanism, tx: &mut dyn Tx, key: K) -> TxResult<V> {
        if let Some(v) = self.get(tx, key)? {
            return Ok(v);
        }
        match mechanism {
            Mechanism::Retry => condsync::retry(tx),
            Mechanism::RetryOrig => condsync::retry_orig(tx),
            Mechanism::Await => condsync::await_one(tx, self.wait_addr(key)),
            Mechanism::WaitPred => match &self.repr {
                Repr::Naive { len, .. } => {
                    // Wake when the map has grown past its current size; the
                    // re-executed lookup then decides whether *our* key
                    // arrived.
                    let current = len.get(tx)?;
                    condsync::wait_pred(
                        tx,
                        pred_map_len_at_least,
                        &[len.addr().0 as u64, current + 1],
                    )
                }
                Repr::Striped { counters, .. } => {
                    // Wake when the key's occupancy counter *changes* (a
                    // threshold would strand the waiter after a
                    // remove-then-insert returned the count to its old
                    // value).
                    let counter = self.counter_for(counters, key.into_word());
                    let current = counter.get(tx)?;
                    condsync::wait_pred(
                        tx,
                        pred_map_counter_changed,
                        &[counter.addr().0 as u64, current],
                    )
                }
            },
            Mechanism::Restart => condsync::restart(tx),
            Mechanism::Pthreads | Mechanism::TmCondVar => {
                panic!("lock-based mechanisms wait outside transactions")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode, WaitSpec};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn direct_tx(system: &Arc<TmSystem>) -> DirectTx {
        DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    fn small_map(cap: usize, layout: MapLayout) -> (Arc<TmSystem>, TmHashMap) {
        let system = TmSystem::new(TmConfig::small());
        let map = TmHashMap::with_layout(&system, cap, layout);
        (system, map)
    }

    #[test]
    fn insert_get_update_remove_round_trip_in_both_layouts() {
        for layout in MapLayout::ALL {
            let (system, map) = small_map(8, layout);
            let mut tx = direct_tx(&system);
            assert_eq!(map.insert(&mut tx, 10, 100).unwrap(), None);
            assert_eq!(map.insert(&mut tx, 20, 200).unwrap(), None);
            assert_eq!(map.get(&mut tx, 10).unwrap(), Some(100));
            assert_eq!(map.get(&mut tx, 30).unwrap(), None);
            assert_eq!(map.insert(&mut tx, 10, 111).unwrap(), Some(100));
            assert_eq!(map.get(&mut tx, 10).unwrap(), Some(111));
            assert_eq!(map.remove(&mut tx, 10).unwrap(), Some(111));
            assert_eq!(map.get(&mut tx, 10).unwrap(), None);
            assert_eq!(map.remove(&mut tx, 10).unwrap(), None);
            assert_eq!(map.len_direct(&system), 1, "{layout:?}");
            assert_eq!(map.dump_direct(&system), vec![(20, 200)]);
        }
    }

    #[test]
    fn colliding_keys_probe_to_distinct_slots() {
        // Many keys in a tiny table force probing and tombstone reuse.
        for layout in MapLayout::ALL {
            let (system, map) = small_map(16, layout);
            let mut tx = direct_tx(&system);
            for k in 0..12u64 {
                assert_eq!(map.insert(&mut tx, k * 16, k).unwrap(), None);
            }
            for k in 0..12u64 {
                assert_eq!(map.get(&mut tx, k * 16).unwrap(), Some(k), "key {k}");
            }
            assert_eq!(map.len_direct(&system), 12);
        }
    }

    #[test]
    fn tombstones_are_reused_and_lookups_skip_them() {
        for layout in MapLayout::ALL {
            let (system, map) = small_map(8, layout);
            let mut tx = direct_tx(&system);
            map.insert(&mut tx, 1, 10).unwrap();
            map.insert(&mut tx, 9, 90).unwrap(); // likely probes past key 1's chain
            map.remove(&mut tx, 1).unwrap();
            // Key 9 must remain reachable even if key 1's slot is now a
            // tombstone on its probe path.
            assert_eq!(map.get(&mut tx, 9).unwrap(), Some(90));
            // Re-inserting key 1 reuses the tombstone rather than growing.
            map.insert(&mut tx, 1, 11).unwrap();
            assert_eq!(map.get(&mut tx, 1).unwrap(), Some(11));
            assert_eq!(map.len_direct(&system), 2);
        }
    }

    #[test]
    fn matches_std_hashmap_model() {
        for layout in MapLayout::ALL {
            let (system, map) = small_map(64, layout);
            let mut tx = direct_tx(&system);
            let mut model: HashMap<u64, u64> = HashMap::new();
            // A deterministic mixed workload.
            let mut seed = 42u64;
            for i in 0..300u64 {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                let key = seed % 48;
                match i % 3 {
                    0 | 1 => {
                        let expected = model.insert(key, i);
                        assert_eq!(map.insert(&mut tx, key, i).unwrap(), expected);
                    }
                    _ => {
                        let expected = model.remove(&key);
                        assert_eq!(map.remove(&mut tx, key).unwrap(), expected);
                    }
                }
                assert_eq!(map.len_direct(&system), model.len() as u64);
            }
            let mut expected: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            expected.sort_unstable();
            assert_eq!(map.dump_direct(&system), expected);
            for (&k, &v) in &model {
                assert_eq!(map.get(&mut tx, k).unwrap(), Some(v));
            }
        }
    }

    #[test]
    fn direct_insert_matches_transactional_insert() {
        for layout in MapLayout::ALL {
            let (sys_a, map_a) = small_map(32, layout);
            let (sys_b, map_b) = small_map(32, layout);
            let mut tx = direct_tx(&sys_a);
            for k in 0..20u64 {
                map_a.insert(&mut tx, k * 3, k).unwrap();
                map_b.insert_direct(&sys_b, k * 3, k);
            }
            assert_eq!(map_b.insert_direct(&sys_b, 0, 99), Some(0));
            map_a.insert(&mut tx, 0, 99).unwrap();
            assert_eq!(map_a.dump_direct(&sys_a), map_b.dump_direct(&sys_b));
            assert_eq!(map_a.len_direct(&sys_a), map_b.len_direct(&sys_b));
        }
    }

    #[test]
    fn get_waiting_requests_the_right_deschedule_naive() {
        let (system, map) = small_map(8, MapLayout::Naive);
        let mut tx = direct_tx(&system);
        assert!(matches!(
            map.get_waiting(Mechanism::Retry, &mut tx, 5),
            Err(TxCtl::Deschedule(WaitSpec::ReadSetValues))
        ));
        match map.get_waiting(Mechanism::Await, &mut tx, 5) {
            Err(TxCtl::Deschedule(WaitSpec::Addrs(a))) => assert_eq!(a, vec![map.len_addr()]),
            other => panic!("unexpected {other:?}"),
        }
        match map.get_waiting(Mechanism::WaitPred, &mut tx, 5) {
            Err(TxCtl::Deschedule(WaitSpec::Pred { args, .. })) => {
                assert_eq!(args, vec![map.len_addr().0 as u64, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        map.insert(&mut tx, 5, 55).unwrap();
        assert_eq!(map.get_waiting(Mechanism::Retry, &mut tx, 5).unwrap(), 55);
    }

    #[test]
    fn get_waiting_requests_the_right_deschedule_striped() {
        let (system, map) = small_map(8, MapLayout::StripeAligned);
        let mut tx = direct_tx(&system);
        // Await watches the key's striped counter, not a global length word.
        match map.get_waiting(Mechanism::Await, &mut tx, 5) {
            Err(TxCtl::Deschedule(WaitSpec::Addrs(a))) => assert_eq!(a, vec![map.wait_addr(5)]),
            other => panic!("unexpected {other:?}"),
        }
        // WaitPred wakes on counter *change*, parameterised by the current
        // count, so remove-then-insert cannot strand the waiter.
        match map.get_waiting(Mechanism::WaitPred, &mut tx, 5) {
            Err(TxCtl::Deschedule(WaitSpec::Pred { args, .. })) => {
                assert_eq!(args, vec![map.wait_addr(5).0 as u64, 0]);
            }
            other => panic!("unexpected {other:?}"),
        }
        map.insert(&mut tx, 5, 55).unwrap();
        assert_eq!(map.get_waiting(Mechanism::Retry, &mut tx, 5).unwrap(), 55);
    }

    #[test]
    fn striped_counters_sit_on_distinct_orec_stripes() {
        let (system, map) = small_map(64, MapLayout::StripeAligned);
        // Every key's wait address must map to its own ownership record, or
        // the layout's whole contention argument is void.
        let stripes: Vec<usize> = (0..1000u64)
            .map(|k| system.orecs.index_for(map.wait_addr(k)))
            .collect();
        let mut distinct: Vec<usize> = stripes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(
            distinct.len(),
            COUNTER_SHARDS,
            "counters collapsed onto shared stripes"
        );
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overfilling_panics() {
        let (system, map) = small_map(4, MapLayout::StripeAligned);
        let mut tx = direct_tx(&system);
        for k in 0..5u64 {
            map.insert(&mut tx, k, k).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "62 bits")]
    fn striped_layout_rejects_tagged_range_keys() {
        let (system, map) = small_map(4, MapLayout::StripeAligned);
        let mut tx = direct_tx(&system);
        let _ = map.insert(&mut tx, u64::MAX, 1);
    }
}
