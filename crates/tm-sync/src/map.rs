//! A fixed-capacity transactional hash map.
//!
//! `TmHashMap` is an open-addressing (linear probing) hash table whose slots
//! live in the transactional heap, so lookups and updates compose with any
//! other transactional state, and a reader can *wait* for a key to appear
//! using the paper's mechanisms ([`TmHashMap::get_waiting`]).  The table is
//! the kind of shared index the PARSEC applications keep under a lock
//! (dedup's chunk index, ferret's result table); it is deliberately simple —
//! no resizing, no tombstone compaction beyond what linear probing needs —
//! because its job is to exercise multi-word transactions, not to be a
//! general-purpose collection.

use std::sync::Arc;

use condsync::Mechanism;
use tm_core::{Addr, TmArray, TmSystem, TmVar, Tx, TxResult};

/// Slot states, stored alongside each key.
const EMPTY: u64 = 0;
const OCCUPIED: u64 = 1;
const TOMBSTONE: u64 = 2;

/// A fixed-capacity transactional hash map from `u64` keys to `u64` values.
#[derive(Debug, Clone)]
pub struct TmHashMap {
    state: TmArray<u64>,
    keys: TmArray<u64>,
    values: TmArray<u64>,
    len: TmVar<u64>,
    capacity: usize,
}

/// `WaitPred` predicate: the map identified by `args = [len_addr, n]` holds
/// at least `n` entries.
pub fn pred_map_len_at_least(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? >= args[1])
}

impl TmHashMap {
    /// Allocates a map with room for `capacity` entries in `system`'s heap.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(system: &Arc<TmSystem>, capacity: usize) -> Self {
        assert!(capacity > 0, "map capacity must be positive");
        let capacity = capacity.next_power_of_two();
        TmHashMap {
            state: TmArray::alloc(system, capacity, EMPTY),
            keys: TmArray::alloc(system, capacity, 0),
            values: TmArray::alloc(system, capacity, 0),
            len: TmVar::alloc(system, 0),
            capacity,
        }
    }

    /// The slot capacity (rounded up to a power of two at construction).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Heap address of the entry count (what `Await`-style waiters watch).
    pub fn len_addr(&self) -> Addr {
        self.len.addr()
    }

    /// Transactional entry count.
    pub fn len(&self, tx: &mut dyn Tx) -> TxResult<u64> {
        self.len.get(tx)
    }

    /// True if the map holds no entries.
    pub fn is_empty(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        Ok(self.len.get(tx)? == 0)
    }

    /// Non-transactional entry count (setup / verification only).
    pub fn len_direct(&self, system: &TmSystem) -> u64 {
        self.len.load_direct(system)
    }

    fn slot_for(&self, key: u64, probe: usize) -> usize {
        // Fibonacci hashing spreads sequential keys well enough for a test
        // substrate; linear probing resolves collisions.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h as usize + probe) & (self.capacity - 1)
    }

    /// Inserts or updates `key`, returning the previous value if any.
    ///
    /// Returns `Err` with a capacity abort only via panics in debug builds;
    /// a full table is a programming error for this fixed-size structure, so
    /// it panics rather than growing.
    ///
    /// # Panics
    ///
    /// Panics if the table is full and `key` is not already present.
    pub fn insert(&self, tx: &mut dyn Tx, key: u64, value: u64) -> TxResult<Option<u64>> {
        let mut first_tombstone: Option<usize> = None;
        for probe in 0..self.capacity {
            let slot = self.slot_for(key, probe);
            match self.state.get(tx, slot)? {
                EMPTY => {
                    let target = first_tombstone.unwrap_or(slot);
                    self.state.set(tx, target, OCCUPIED)?;
                    self.keys.set(tx, target, key)?;
                    self.values.set(tx, target, value)?;
                    let n = self.len.get_for_update(tx)?;
                    self.len.set(tx, n + 1)?;
                    return Ok(None);
                }
                TOMBSTONE => {
                    if first_tombstone.is_none() {
                        first_tombstone = Some(slot);
                    }
                }
                _ => {
                    if self.keys.get(tx, slot)? == key {
                        let old = self.values.get(tx, slot)?;
                        self.values.set(tx, slot, value)?;
                        return Ok(Some(old));
                    }
                }
            }
        }
        if let Some(slot) = first_tombstone {
            self.state.set(tx, slot, OCCUPIED)?;
            self.keys.set(tx, slot, key)?;
            self.values.set(tx, slot, value)?;
            let n = self.len.get_for_update(tx)?;
            self.len.set(tx, n + 1)?;
            return Ok(None);
        }
        panic!("TmHashMap is full (capacity {})", self.capacity);
    }

    /// Looks `key` up.
    pub fn get(&self, tx: &mut dyn Tx, key: u64) -> TxResult<Option<u64>> {
        for probe in 0..self.capacity {
            let slot = self.slot_for(key, probe);
            match self.state.get(tx, slot)? {
                EMPTY => return Ok(None),
                OCCUPIED if self.keys.get(tx, slot)? == key => {
                    return Ok(Some(self.values.get(tx, slot)?));
                }
                _ => {}
            }
        }
        Ok(None)
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&self, tx: &mut dyn Tx, key: u64) -> TxResult<Option<u64>> {
        for probe in 0..self.capacity {
            let slot = self.slot_for(key, probe);
            match self.state.get(tx, slot)? {
                EMPTY => return Ok(None),
                OCCUPIED if self.keys.get(tx, slot)? == key => {
                    let old = self.values.get(tx, slot)?;
                    self.state.set(tx, slot, TOMBSTONE)?;
                    let n = self.len.get_for_update(tx)?;
                    self.len.set(tx, n - 1)?;
                    return Ok(Some(old));
                }
                _ => {}
            }
        }
        Ok(None)
    }

    /// Looks `key` up, waiting with `mechanism` until some writer inserts it.
    ///
    /// For `Await` the waiter watches the map's entry count: any insertion
    /// wakes it to re-check (a coarse but correct address set — the paper's
    /// §2.3 discussion of choosing what to track applies directly here).
    ///
    /// # Panics
    ///
    /// Panics for the lock-based mechanisms, which wait outside transactions.
    pub fn get_waiting(&self, mechanism: Mechanism, tx: &mut dyn Tx, key: u64) -> TxResult<u64> {
        if let Some(v) = self.get(tx, key)? {
            return Ok(v);
        }
        match mechanism {
            Mechanism::Retry => condsync::retry(tx),
            Mechanism::RetryOrig => condsync::retry_orig(tx),
            Mechanism::Await => condsync::await_one(tx, self.len_addr()),
            Mechanism::WaitPred => {
                // Wake when the map has grown past its current size; the
                // re-executed lookup then decides whether *our* key arrived.
                let current = self.len.get(tx)?;
                condsync::wait_pred(
                    tx,
                    pred_map_len_at_least,
                    &[self.len_addr().0 as u64, current + 1],
                )
            }
            Mechanism::Restart => condsync::restart(tx),
            Mechanism::Pthreads | Mechanism::TmCondVar => {
                panic!("lock-based mechanisms wait outside transactions")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use tm_core::{AbortReason, TmConfig, TxCommon, TxCtl, TxMode, WaitSpec};

    struct DirectTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            Ok(self.system.heap.alloc(words).unwrap())
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn direct_tx(system: &Arc<TmSystem>) -> DirectTx {
        DirectTx {
            common: TxCommon::new(system.register_thread(), TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    fn small_map(cap: usize) -> (Arc<TmSystem>, TmHashMap) {
        let system = TmSystem::new(TmConfig::small());
        let map = TmHashMap::new(&system, cap);
        (system, map)
    }

    #[test]
    fn insert_get_update_remove_round_trip() {
        let (system, map) = small_map(8);
        let mut tx = direct_tx(&system);
        assert_eq!(map.insert(&mut tx, 10, 100).unwrap(), None);
        assert_eq!(map.insert(&mut tx, 20, 200).unwrap(), None);
        assert_eq!(map.get(&mut tx, 10).unwrap(), Some(100));
        assert_eq!(map.get(&mut tx, 30).unwrap(), None);
        assert_eq!(map.insert(&mut tx, 10, 111).unwrap(), Some(100));
        assert_eq!(map.get(&mut tx, 10).unwrap(), Some(111));
        assert_eq!(map.remove(&mut tx, 10).unwrap(), Some(111));
        assert_eq!(map.get(&mut tx, 10).unwrap(), None);
        assert_eq!(map.remove(&mut tx, 10).unwrap(), None);
        assert_eq!(map.len_direct(&system), 1);
    }

    #[test]
    fn colliding_keys_probe_to_distinct_slots() {
        // Many keys in a tiny table force probing and tombstone reuse.
        let (system, map) = small_map(16);
        let mut tx = direct_tx(&system);
        for k in 0..12u64 {
            assert_eq!(map.insert(&mut tx, k * 16, k).unwrap(), None);
        }
        for k in 0..12u64 {
            assert_eq!(map.get(&mut tx, k * 16).unwrap(), Some(k), "key {k}");
        }
        assert_eq!(map.len_direct(&system), 12);
    }

    #[test]
    fn tombstones_are_reused_and_lookups_skip_them() {
        let (system, map) = small_map(8);
        let mut tx = direct_tx(&system);
        map.insert(&mut tx, 1, 10).unwrap();
        map.insert(&mut tx, 9, 90).unwrap(); // likely probes past key 1's chain
        map.remove(&mut tx, 1).unwrap();
        // Key 9 must remain reachable even if key 1's slot is now a tombstone
        // on its probe path.
        assert_eq!(map.get(&mut tx, 9).unwrap(), Some(90));
        // Re-inserting key 1 reuses the tombstone rather than growing.
        map.insert(&mut tx, 1, 11).unwrap();
        assert_eq!(map.get(&mut tx, 1).unwrap(), Some(11));
        assert_eq!(map.len_direct(&system), 2);
    }

    #[test]
    fn matches_std_hashmap_model() {
        let (system, map) = small_map(64);
        let mut tx = direct_tx(&system);
        let mut model: HashMap<u64, u64> = HashMap::new();
        // A deterministic mixed workload.
        let mut seed = 42u64;
        for i in 0..300u64 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let key = seed % 48;
            match i % 3 {
                0 | 1 => {
                    let expected = model.insert(key, i);
                    assert_eq!(map.insert(&mut tx, key, i).unwrap(), expected);
                }
                _ => {
                    let expected = model.remove(&key);
                    assert_eq!(map.remove(&mut tx, key).unwrap(), expected);
                }
            }
            assert_eq!(map.len_direct(&system), model.len() as u64);
        }
        for (&k, &v) in &model {
            assert_eq!(map.get(&mut tx, k).unwrap(), Some(v));
        }
    }

    #[test]
    fn get_waiting_requests_the_right_deschedule() {
        let (system, map) = small_map(8);
        let mut tx = direct_tx(&system);
        assert!(matches!(
            map.get_waiting(Mechanism::Retry, &mut tx, 5),
            Err(TxCtl::Deschedule(WaitSpec::ReadSetValues))
        ));
        match map.get_waiting(Mechanism::Await, &mut tx, 5) {
            Err(TxCtl::Deschedule(WaitSpec::Addrs(a))) => assert_eq!(a, vec![map.len_addr()]),
            other => panic!("unexpected {other:?}"),
        }
        match map.get_waiting(Mechanism::WaitPred, &mut tx, 5) {
            Err(TxCtl::Deschedule(WaitSpec::Pred { args, .. })) => {
                assert_eq!(args, vec![map.len_addr().0 as u64, 1]);
            }
            other => panic!("unexpected {other:?}"),
        }
        map.insert(&mut tx, 5, 55).unwrap();
        assert_eq!(map.get_waiting(Mechanism::Retry, &mut tx, 5).unwrap(), 55);
    }

    #[test]
    #[should_panic(expected = "full")]
    fn overfilling_panics() {
        let (system, map) = small_map(4);
        let mut tx = direct_tx(&system);
        for k in 0..5u64 {
            map.insert(&mut tx, k, k).unwrap();
        }
    }
}
