//! A tiny, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! This build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched.  This crate implements the small API
//! subset the workspace's benches use — `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — with a simple
//! warm-up + timed-run measurement loop and plain-text output.
//!
//! It is intentionally *not* statistically rigorous (no outlier analysis,
//! no HTML reports); swap the workspace dependency back to crates.io
//! criterion when building with network access for publication-grade
//! numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    config: &'a MeasurementConfig,
    /// Filled in by [`Bencher::iter`].
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    mean: Duration,
    iters: u64,
}

#[derive(Debug, Clone, Copy)]
struct MeasurementConfig {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
        }
    }
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly: first for the warm-up window, then for the
    /// measurement window, and records the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up window elapses.
        let warm_deadline = Instant::now() + self.config.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        // Measurement: run until the measurement window elapses, counting
        // iterations; cap the iteration count so pathologically fast
        // routines still terminate promptly.
        let start = Instant::now();
        let deadline = start + self.config.measurement_time;
        let max_iters = (self.config.sample_size as u64).max(1) * 1_000_000;
        let mut iters: u64 = 0;
        while Instant::now() < deadline && iters < max_iters {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        let mean = if iters == 0 {
            Duration::ZERO
        } else {
            elapsed / (iters as u32).max(1)
        };
        self.result = Some(Sample { mean, iters });
    }
}

/// Measurement strategies (API compatibility; only wall-clock time exists).
pub mod measurement {
    /// Wall-clock time measurement, the crates.io criterion default.
    #[derive(Debug, Default, Clone, Copy)]
    pub struct WallTime;
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    name: String,
    config: MeasurementConfig,
    _criterion: &'a mut Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples (kept for API compatibility; this
    /// harness folds all iterations into one sample).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Overrides the warm-up window.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut bencher = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut bencher);
        report(&self.name, &id.to_string(), bencher.result);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut bencher = Bencher {
            config: &self.config,
            result: None,
        };
        f(&mut bencher, input);
        report(&self.name, &id.to_string(), bencher.result);
        self
    }

    /// Finishes the group (prints a trailing newline).
    pub fn finish(&mut self) {
        println!();
    }
}

fn report(group: &str, id: &str, sample: Option<Sample>) {
    match sample {
        Some(s) => println!(
            "{group}/{id:<40} {:>12.3} µs/iter ({} iters)",
            s.mean.as_secs_f64() * 1e6,
            s.iters
        ),
        None => println!("{group}/{id:<40} (no measurement recorded)"),
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: MeasurementConfig::default(),
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring crates.io criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MeasurementConfig {
        MeasurementConfig {
            warm_up_time: Duration::from_millis(1),
            measurement_time: Duration::from_millis(5),
            sample_size: 2,
        }
    }

    #[test]
    fn bencher_records_a_sample() {
        let config = quick();
        let mut b = Bencher {
            config: &config,
            result: None,
        };
        let mut n = 0u64;
        b.iter(|| n = n.wrapping_add(1));
        let s = b.result.expect("iter must record a sample");
        assert!(s.iters > 0);
        assert!(n >= s.iters);
    }

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(
            BenchmarkId::new("eager", "Retry").to_string(),
            "eager/Retry"
        );
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn groups_run_their_functions() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(2))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = false;
        group.bench_function("f", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
