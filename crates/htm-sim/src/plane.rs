//! The simulator's [`HwTm`] backend: the line-table coherence directory
//! packaged behind the pluggable hardware-plane trait.
//!
//! [`SimPlane`] is what [`crate::HtmSim`] installs by default.  It owns the
//! [`LineTable`] and implements the [`HwTm`] contract over it, delivering
//! dooms to conflicting threads through the system's thread registry so the
//! caller only learns about *its own* aborts.  Wrapping it in a
//! [`tm_core::FaultPlane`](tm_core::hwtm::FaultPlane) (which `HtmSim` does
//! automatically when [`tm_core::FaultConfig`] is enabled) turns the same
//! directory into a deterministic conflict-injection fuzzer.

use std::sync::Arc;

use tm_core::hwtm::{HwAbort, HwAbortKind, HwTm};
use tm_core::{LineId, ThreadId, TmSystem};

use crate::lines::{line_stripes, LineTable, WriteRegistration};

/// The simulated coherence directory as a hardware-plane backend.
pub struct SimPlane {
    system: Arc<TmSystem>,
    lines: LineTable,
}

impl std::fmt::Debug for SimPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimPlane")
            .field("slots", &self.lines.len())
            .finish_non_exhaustive()
    }
}

impl SimPlane {
    /// Creates a backend over `system` (one directory slot per ownership
    /// record, as before the trait split).
    pub fn new(system: Arc<TmSystem>) -> Arc<Self> {
        let lines = LineTable::new(system.config.orec_count);
        Arc::new(SimPlane { system, lines })
    }

    /// The underlying directory (exposed for white-box tests).
    pub fn lines(&self) -> &LineTable {
        &self.lines
    }

    /// Delivers a conflict abort to another thread's in-flight hardware
    /// transaction.
    fn doom(&self, tid: ThreadId) {
        if let Some(t) = self.system.threads.get(tid) {
            t.doom();
        }
    }
}

impl HwTm for SimPlane {
    fn slot_for(&self, line: LineId) -> usize {
        self.lines.slot_for(line)
    }

    fn read_line(&self, _line: LineId, slot: usize, tid: ThreadId) -> Result<(), HwAbort> {
        if let Some(writer) = self.lines.register_reader(slot, tid) {
            // Our coherence request dooms the speculative writer; we abort as
            // well rather than consuming a possibly torn value.
            self.doom(writer);
            self.lines.clear_reader(slot, tid);
            return Err(HwAbort::real(HwAbortKind::Conflict));
        }
        Ok(())
    }

    fn write_line(&self, _line: LineId, slot: usize, tid: ThreadId) -> Result<(), HwAbort> {
        match self.lines.register_writer(slot, tid) {
            WriteRegistration::Acquired {
                doomed_readers,
                doomed_writer,
            } => {
                for t in doomed_readers {
                    self.doom(t);
                }
                if let Some(t) = doomed_writer {
                    self.doom(t);
                }
                Ok(())
            }
            WriteRegistration::Conflict { other } => {
                self.doom(other);
                Err(HwAbort::real(HwAbortKind::Conflict))
            }
        }
    }

    fn check_read_footprint(&self, distinct_lines: usize) -> Result<(), HwAbort> {
        if distinct_lines > self.system.config.htm.max_read_lines {
            return Err(HwAbort::real(HwAbortKind::Capacity));
        }
        Ok(())
    }

    fn check_write_footprint(&self, distinct_lines: usize) -> Result<(), HwAbort> {
        if distinct_lines > self.system.config.htm.max_write_lines {
            return Err(HwAbort::real(HwAbortKind::Capacity));
        }
        Ok(())
    }

    fn commit_check(&self, _tid: ThreadId) -> Result<(), HwAbort> {
        // The simulator's own commit-window hazards (dooms, fallback lock)
        // are checked by the transaction under the commit barrier; the
        // directory adds nothing here.  Fault planes inject at this point.
        Ok(())
    }

    fn clear_read(&self, slot: usize, tid: ThreadId) {
        self.lines.clear_reader(slot, tid);
    }

    fn clear_write(&self, slot: usize, tid: ThreadId) {
        self.lines.clear_writer(slot, tid);
    }

    fn claim_for_writeback(&self, slot: usize, tid: ThreadId) {
        for t in self.lines.claim_for_writeback(slot, tid) {
            self.doom(t);
        }
    }

    fn release_writeback(&self, slot: usize, tid: ThreadId) {
        self.lines.clear_writer(slot, tid);
    }

    fn line_cover(&self, line: LineId, out: &mut Vec<usize>) {
        line_stripes(&self.system.orecs, line, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{Addr, TmConfig};

    #[test]
    fn plane_registers_and_clears_through_the_directory() {
        let system = TmSystem::new(TmConfig::small());
        let plane = SimPlane::new(Arc::clone(&system));
        let line = Addr(64).line();
        let slot = plane.slot_for(line);
        assert!(plane.read_line(line, slot, 1).is_ok());
        assert!(plane.lines().is_reader(slot, 1));
        assert!(plane.write_line(line, slot, 1).is_ok());
        assert_eq!(plane.lines().writer_of(slot), Some(1));
        plane.clear_read(slot, 1);
        plane.clear_write(slot, 1);
        assert!(!plane.lines().is_reader(slot, 1));
        assert_eq!(plane.lines().writer_of(slot), None);
    }

    #[test]
    fn conflicting_accesses_abort_and_doom() {
        let system = TmSystem::new(TmConfig::small());
        let t0 = system.register_thread();
        let t1 = system.register_thread();
        let plane = SimPlane::new(Arc::clone(&system));
        let line = Addr(0).line();
        let slot = plane.slot_for(line);
        assert!(plane.write_line(line, slot, t0.id).is_ok());
        let fault = plane.read_line(line, slot, t1.id).unwrap_err();
        assert_eq!(fault.kind, HwAbortKind::Conflict);
        assert!(!fault.injected, "genuine conflicts are not injected");
        assert!(t0.is_doomed(), "requester-wins dooms the writer");
        t0.take_doomed();
        t1.take_doomed();
    }

    #[test]
    fn footprints_police_the_configured_capacity() {
        let system = TmSystem::new(TmConfig::small());
        let max_r = system.config.htm.max_read_lines;
        let max_w = system.config.htm.max_write_lines;
        let plane = SimPlane::new(system);
        assert!(plane.check_read_footprint(max_r).is_ok());
        assert_eq!(
            plane.check_read_footprint(max_r + 1).unwrap_err().kind,
            HwAbortKind::Capacity
        );
        assert!(plane.check_write_footprint(max_w).is_ok());
        assert!(plane.check_write_footprint(max_w + 1).is_err());
    }

    #[test]
    fn writeback_claim_dooms_every_occupant() {
        let system = TmSystem::new(TmConfig::small());
        let reader = system.register_thread();
        let writer = system.register_thread();
        let committer = system.register_thread();
        let plane = SimPlane::new(Arc::clone(&system));
        let line = Addr(128).line();
        let slot = plane.slot_for(line);
        assert!(plane.read_line(line, slot, reader.id).is_ok());
        assert!(plane.write_line(line, slot, writer.id).is_ok());
        reader.take_doomed(); // write_line doomed the reader; reset for the claim
        plane.claim_for_writeback(slot, committer.id);
        assert!(reader.is_doomed());
        assert!(writer.is_doomed());
        assert_eq!(plane.lines().writer_of(slot), Some(committer.id));
        plane.release_writeback(slot, committer.id);
        assert_eq!(plane.lines().writer_of(slot), None);
    }

    #[test]
    fn line_cover_matches_the_orec_mapping() {
        let system = TmSystem::new(TmConfig::small());
        let plane = SimPlane::new(Arc::clone(&system));
        let line = Addr(256).line();
        let mut via_plane = Vec::new();
        plane.line_cover(line, &mut via_plane);
        let mut direct = Vec::new();
        line_stripes(&system.orecs, line, &mut direct);
        assert_eq!(via_plane, direct);
        assert!(!via_plane.is_empty());
    }
}
