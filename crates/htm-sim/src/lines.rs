//! The simulated cache-coherence directory: per-line reader/writer
//! registrations used for eager conflict detection.
//!
//! Each simulated cache line hashes to a slot holding a bitmask of threads
//! that currently read the line speculatively and the (single) thread that
//! currently writes it speculatively.  Conflicts are detected at access time
//! ("requester wins", like an invalidation-based coherence protocol): a new
//! writer dooms registered readers and any previous writer; a new reader that
//! finds a foreign writer aborts.
//!
//! Transactions track *which* slots they registered in per-attempt
//! [`tm_core::access::IndexSet`]s (see [`crate::tx`]), so the per-access
//! "have I already registered this line" test is O(1) and the slot sets are
//! recycled across attempts; this table only holds the global slot states.

use std::sync::atomic::{AtomicU64, Ordering};

use tm_core::{LineId, OrecTable, ThreadId};

/// Maximum number of threads the reader bitmask can represent.
pub const MAX_HW_THREADS: usize = 64;

/// Maps a committed cache line back to the ownership-record stripes of its
/// words, appending them to `out`.
///
/// Hardware transactions never touch ownership records — that is the crux of
/// the paper's compatibility argument — but the targeted `wakeWaiters` scan
/// is indexed by orec stripe, and a hardware commit's effects are visible at
/// line granularity.  Covering every word of each written line yields a
/// superset of the written words' stripes, so targeting from hardware
/// commits can narrow the scan without ever losing a wakeup.  The caller
/// sorts/dedups (stripes from different lines may collide).
///
/// The mapping itself lives in [`OrecTable::line_indices`], shared with the
/// wake-path tests and benches.
pub fn line_stripes(orecs: &OrecTable, line: LineId, out: &mut Vec<usize>) {
    out.extend(orecs.line_indices(line));
}

/// One directory slot.
#[derive(Debug, Default)]
pub struct LineState {
    /// Bitmask of thread ids currently reading this line speculatively.
    readers: AtomicU64,
    /// Thread id + 1 of the current speculative writer, or 0.
    writer: AtomicU64,
}

/// Outcome of attempting to register a speculative writer.
#[derive(Debug, PartialEq, Eq)]
pub enum WriteRegistration {
    /// Registration succeeded; the listed foreign readers (and possibly a
    /// previous writer) must be doomed by the caller.
    Acquired {
        /// Foreign threads that had the line in their speculative read set.
        doomed_readers: Vec<ThreadId>,
        /// A foreign thread that had the line in its speculative write set.
        doomed_writer: Option<ThreadId>,
    },
    /// The line already had a foreign writer that could not be displaced;
    /// the caller must abort (the foreign writer is doomed as well).
    Conflict {
        /// The conflicting writer.
        other: ThreadId,
    },
}

/// The global table of line states, hashed by [`LineId`].
#[derive(Debug)]
pub struct LineTable {
    slots: Box<[LineState]>,
    mask: usize,
}

impl LineTable {
    /// Creates a table with `size` slots (rounded up to a power of two).
    pub fn new(size: usize) -> Self {
        let size = size.next_power_of_two().max(2);
        let slots = (0..size).map(|_| LineState::default()).collect::<Vec<_>>();
        LineTable {
            slots: slots.into_boxed_slice(),
            mask: size - 1,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the table has no slots (never in practice).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Maps a line to its slot index.
    #[inline]
    pub fn slot_for(&self, line: LineId) -> usize {
        const K: u64 = 0x9E37_79B9_7F4A_7C15;
        ((line.0 as u64).wrapping_mul(K) >> 32) as usize & self.mask
    }

    /// Registers `tid` as a speculative reader of the slot.  Returns the
    /// conflicting speculative writer, if any (in which case the reader must
    /// abort; the caller is also expected to doom that writer, modelling the
    /// coherence invalidation its read request would cause).
    pub fn register_reader(&self, slot: usize, tid: ThreadId) -> Option<ThreadId> {
        debug_assert!(tid < MAX_HW_THREADS);
        let s = &self.slots[slot];
        s.readers.fetch_or(1 << tid, Ordering::SeqCst);
        let w = s.writer.load(Ordering::SeqCst);
        if w != 0 && w != tid as u64 + 1 {
            Some((w - 1) as ThreadId)
        } else {
            None
        }
    }

    /// Registers `tid` as the speculative writer of the slot.
    pub fn register_writer(&self, slot: usize, tid: ThreadId) -> WriteRegistration {
        debug_assert!(tid < MAX_HW_THREADS);
        let s = &self.slots[slot];
        let me = tid as u64 + 1;
        let mut doomed_writer = None;
        loop {
            let cur = s.writer.load(Ordering::SeqCst);
            if cur == me {
                break;
            }
            if cur == 0 {
                if s.writer
                    .compare_exchange(0, me, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    break;
                }
                continue;
            }
            // A foreign speculative writer holds the line.  Requester-wins:
            // our store request would invalidate its line, dooming it; but we
            // also abort ourselves rather than taking over mid-flight, which
            // keeps the protocol simple and still guarantees progress via the
            // serial fallback.
            doomed_writer = Some((cur - 1) as ThreadId);
            return WriteRegistration::Conflict {
                other: doomed_writer.unwrap(),
            };
        }
        // Doom all foreign readers of the line.
        let readers = s.readers.load(Ordering::SeqCst);
        let doomed_readers = (0..MAX_HW_THREADS)
            .filter(|&t| t != tid && readers & (1 << t) != 0)
            .collect();
        WriteRegistration::Acquired {
            doomed_readers,
            doomed_writer,
        }
    }

    /// Forcibly claims `slot` for a *software* transaction's commit
    /// write-back (the hybrid runtime's interlock): installs `tid` as the
    /// slot's writer unconditionally and returns every other thread
    /// currently registered on the slot, which the caller must doom.
    ///
    /// Unlike [`LineTable::register_writer`] this never fails — a software
    /// commit has already validated and *will* write this line; any
    /// speculative occupant loses, exactly as a non-transactional store
    /// invalidates speculative lines on real hardware.  A displaced
    /// hardware writer's own `clear_writer` CAS will simply miss.  The
    /// caller releases the claim with [`LineTable::clear_writer`] after the
    /// write-back; while it is held, speculative readers and writers of the
    /// slot observe a foreign writer and abort.
    pub fn claim_for_writeback(&self, slot: usize, tid: ThreadId) -> Vec<ThreadId> {
        debug_assert!(tid < MAX_HW_THREADS);
        let s = &self.slots[slot];
        let prev = s.writer.swap(tid as u64 + 1, Ordering::SeqCst);
        let readers = s.readers.load(Ordering::SeqCst);
        let mut doomed: Vec<ThreadId> = (0..MAX_HW_THREADS)
            .filter(|&t| t != tid && readers & (1 << t) != 0)
            .collect();
        if prev != 0 && prev != tid as u64 + 1 {
            doomed.push((prev - 1) as ThreadId);
        }
        doomed
    }

    /// Removes `tid`'s reader registration from the slot.
    pub fn clear_reader(&self, slot: usize, tid: ThreadId) {
        self.slots[slot]
            .readers
            .fetch_and(!(1u64 << tid), Ordering::SeqCst);
    }

    /// Removes `tid`'s writer registration from the slot (if it still owns
    /// it).
    pub fn clear_writer(&self, slot: usize, tid: ThreadId) {
        let _ = self.slots[slot].writer.compare_exchange(
            tid as u64 + 1,
            0,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
    }

    /// The current speculative writer of a slot, if any (for tests).
    pub fn writer_of(&self, slot: usize) -> Option<ThreadId> {
        let w = self.slots[slot].writer.load(Ordering::SeqCst);
        if w == 0 {
            None
        } else {
            Some((w - 1) as ThreadId)
        }
    }

    /// True if `tid` is registered as a reader of the slot (for tests).
    pub fn is_reader(&self, slot: usize, tid: ThreadId) -> bool {
        self.slots[slot].readers.load(Ordering::SeqCst) & (1 << tid) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_registration_round_trip() {
        let t = LineTable::new(16);
        let slot = t.slot_for(LineId(3));
        assert_eq!(t.register_reader(slot, 2), None);
        assert!(t.is_reader(slot, 2));
        t.clear_reader(slot, 2);
        assert!(!t.is_reader(slot, 2));
    }

    #[test]
    fn reader_sees_foreign_writer() {
        let t = LineTable::new(16);
        let slot = t.slot_for(LineId(5));
        match t.register_writer(slot, 1) {
            WriteRegistration::Acquired { .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(t.register_reader(slot, 2), Some(1));
        // The writer itself can keep reading its own line.
        assert_eq!(t.register_reader(slot, 1), None);
    }

    #[test]
    fn writer_dooms_foreign_readers() {
        let t = LineTable::new(16);
        let slot = t.slot_for(LineId(7));
        t.register_reader(slot, 0);
        t.register_reader(slot, 3);
        t.register_reader(slot, 5);
        match t.register_writer(slot, 3) {
            WriteRegistration::Acquired {
                mut doomed_readers,
                doomed_writer,
            } => {
                doomed_readers.sort_unstable();
                assert_eq!(
                    doomed_readers,
                    vec![0, 5],
                    "own read registration is not doomed"
                );
                assert_eq!(doomed_writer, None);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn second_writer_conflicts() {
        let t = LineTable::new(16);
        let slot = t.slot_for(LineId(9));
        assert!(matches!(
            t.register_writer(slot, 1),
            WriteRegistration::Acquired { .. }
        ));
        assert_eq!(
            t.register_writer(slot, 2),
            WriteRegistration::Conflict { other: 1 }
        );
        // Re-registration by the same writer is idempotent.
        assert!(matches!(
            t.register_writer(slot, 1),
            WriteRegistration::Acquired { .. }
        ));
    }

    #[test]
    fn clear_writer_only_clears_owner() {
        let t = LineTable::new(16);
        let slot = t.slot_for(LineId(2));
        t.register_writer(slot, 4);
        t.clear_writer(slot, 5);
        assert_eq!(t.writer_of(slot), Some(4));
        t.clear_writer(slot, 4);
        assert_eq!(t.writer_of(slot), None);
    }

    #[test]
    fn line_stripes_cover_every_word_of_the_line() {
        use tm_core::LINE_WORDS;
        let orecs = OrecTable::new(256);
        let line = LineId(5);
        let mut stripes = Vec::new();
        line_stripes(&orecs, line, &mut stripes);
        assert_eq!(stripes.len(), LINE_WORDS);
        for i in 0..LINE_WORDS {
            let addr = line.first_word().offset(i);
            assert!(
                stripes.contains(&orecs.index_for(addr)),
                "word {i} of the line must be covered"
            );
        }
    }

    #[test]
    fn claim_for_writeback_displaces_and_dooms_occupants() {
        let t = LineTable::new(16);
        let slot = t.slot_for(LineId(11));
        t.register_reader(slot, 0);
        t.register_reader(slot, 2);
        assert!(matches!(
            t.register_writer(slot, 4),
            WriteRegistration::Acquired { .. }
        ));
        let mut doomed = t.claim_for_writeback(slot, 7);
        doomed.sort_unstable();
        assert_eq!(doomed, vec![0, 2, 4]);
        assert_eq!(t.writer_of(slot), Some(7), "claimant owns the slot");
        // The displaced hardware writer's own clear misses harmlessly.
        t.clear_writer(slot, 4);
        assert_eq!(t.writer_of(slot), Some(7));
        // Speculative access while claimed sees a foreign writer.
        assert_eq!(t.register_reader(slot, 1), Some(7));
        t.clear_writer(slot, 7);
        assert_eq!(t.writer_of(slot), None);
    }

    #[test]
    fn distinct_lines_usually_map_to_distinct_slots() {
        let t = LineTable::new(4096);
        let mut distinct = 0;
        for i in 0..1000 {
            if t.slot_for(LineId(i)) != t.slot_for(LineId(i + 1)) {
                distinct += 1;
            }
        }
        assert!(distinct > 900);
    }
}
