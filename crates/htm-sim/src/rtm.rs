//! Stub backend marking where a real Intel RTM / Arm TME implementation
//! slots into the hardware plane (`--features rtm`).
//!
//! The [`HwTm`] seam is call-granular: the runtime asks the backend about
//! each speculative access and cleans up registrations explicitly.  Real
//! best-effort HTM is the opposite — between `_xbegin` and `_xend` *all*
//! memory accesses are implicitly transactional and the hardware tracks
//! them, so a production backend would not implement `read_line`/`write_line`
//! bookkeeping at all; it would bracket the whole attempt in
//! `_xbegin`/`_xend` (or TME's `TSTART`/`TCOMMIT`) and translate the status
//! word of an abort into [`HwAbortKind`].  That restructuring needs TSX- or
//! TME-capable silicon to test against, which this reproduction cannot
//! assume; until then this stub keeps the build honest on capable hosts:
//!
//! * [`RtmHw::supported`] performs the real capability probe
//!   (`is_x86_feature_detected!("rtm")` on x86-64, `false` elsewhere);
//! * every speculative access reports a (non-injected) spurious abort, so a
//!   runtime constructed over [`RtmHw`] stays correct — the mode ladder
//!   walks every attempt off speculation to the software/serial rungs.

use std::sync::Arc;

use tm_core::hwtm::{HwAbort, HwAbortKind, HwTm};
use tm_core::{LineId, ThreadId, TmSystem};

/// Placeholder for a real RTM/TME hardware backend: reports the host's
/// capability truthfully, and aborts every speculative attempt so execution
/// falls back to the software rungs.
pub struct RtmHw {
    system: Arc<TmSystem>,
}

impl std::fmt::Debug for RtmHw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtmHw")
            .field("supported", &Self::supported())
            .finish_non_exhaustive()
    }
}

impl RtmHw {
    /// Creates the stub backend over `system`.
    pub fn new(system: Arc<TmSystem>) -> Arc<Self> {
        Arc::new(RtmHw { system })
    }

    /// True when the host CPU actually supports restricted transactional
    /// memory.
    pub fn supported() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            std::arch::is_x86_feature_detected!("rtm")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    fn unsupported() -> HwAbort {
        HwAbort::real(HwAbortKind::Spurious)
    }
}

impl HwTm for RtmHw {
    fn slot_for(&self, line: LineId) -> usize {
        line.0
    }

    fn read_line(&self, _line: LineId, _slot: usize, _tid: ThreadId) -> Result<(), HwAbort> {
        Err(Self::unsupported())
    }

    fn write_line(&self, _line: LineId, _slot: usize, _tid: ThreadId) -> Result<(), HwAbort> {
        Err(Self::unsupported())
    }

    fn check_read_footprint(&self, _distinct_lines: usize) -> Result<(), HwAbort> {
        Err(Self::unsupported())
    }

    fn check_write_footprint(&self, _distinct_lines: usize) -> Result<(), HwAbort> {
        Err(Self::unsupported())
    }

    fn commit_check(&self, _tid: ThreadId) -> Result<(), HwAbort> {
        Err(Self::unsupported())
    }

    fn clear_read(&self, _slot: usize, _tid: ThreadId) {}

    fn clear_write(&self, _slot: usize, _tid: ThreadId) {}

    fn claim_for_writeback(&self, _slot: usize, _tid: ThreadId) {
        // Nothing speculative can be in flight (every attempt aborts), so a
        // software write-back has nobody to doom.
    }

    fn release_writeback(&self, _slot: usize, _tid: ThreadId) {}

    fn line_cover(&self, line: LineId, out: &mut Vec<usize>) {
        out.extend(self.system.orecs.line_indices(line));
    }
}
