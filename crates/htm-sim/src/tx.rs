//! The per-attempt transaction descriptor for the HTM simulator.
//!
//! A transaction attempt is either **hardware** (speculative: redo-buffered
//! writes, line-granularity conflict detection, capacity limits, no escape
//! actions) or **serial** (runs while holding the global fallback lock:
//! direct writes with an undo log so that condition synchronization can still
//! roll it back).  The serial flavour doubles as the "software mode with
//! escape actions" that descheduling hardware transactions must fall back to
//! (§2.2.2), and as GCC-style serial-irrevocable execution after repeated
//! aborts.

use std::sync::Arc;

use tm_core::access::{IndexSet, WriteLog};
use tm_core::driver::CommitOutcome;
use tm_core::hwtm::HwAbort;
use tm_core::stats::TxStats;
use tm_core::{
    AbortReason, Addr, OrecValue, ThreadCtx, TmSystem, Tx, TxCommon, TxCtl, TxMode, TxResult,
    WaitCondition, WaitSpec,
};

use crate::runtime::HtmSim;

/// Converts a hardware-plane abort into the driver-level control request,
/// counting injected faults as they surface.
fn hw_fault(thread: &ThreadCtx, fault: HwAbort) -> TxCtl {
    if fault.injected {
        TxStats::bump(&thread.stats.hw_faults_injected);
    }
    TxCtl::Abort(fault.kind.reason())
}

/// Execution state specific to the attempt flavour.
///
/// The slot sets and logs are pooled access-set containers
/// (`tm_core::access`): slot membership and read-after-write lookups are
/// O(1), and re-executed attempts recycle capacity through the thread's
/// `LogPool`.
#[derive(Debug)]
enum State {
    Hardware {
        /// Directory slots registered as read.
        read_slots: IndexSet,
        /// Directory slots registered as written.
        write_slots: IndexSet,
        /// Buffered writes, one entry per address (last value wins).
        redo: WriteLog,
    },
    Serial {
        /// True while this attempt holds the global serial lock.
        holding: bool,
        /// Old values of written locations, one entry per address.
        undo: WriteLog,
    },
}

impl State {
    /// Returns the state's containers to `thread`'s pool.  Set-size
    /// high-water marks are recorded where the logs are cleared
    /// (rollback/commit), before the sizes are lost.
    fn recycle(self, thread: &ThreadCtx) {
        match self {
            State::Hardware {
                read_slots,
                write_slots,
                redo,
            } => {
                thread.put_index_set(read_slots);
                thread.put_index_set(write_slots);
                thread.put_write_log(redo);
            }
            State::Serial { undo, .. } => thread.put_write_log(undo),
        }
    }

    /// Records the attempt's set-size high-water marks (called before the
    /// logs are cleared).
    fn note_sizes(&self, thread: &ThreadCtx) {
        match self {
            State::Hardware {
                read_slots, redo, ..
            } => {
                TxStats::record_max(&thread.stats.read_set_max, read_slots.len() as u64);
                TxStats::record_max(&thread.stats.write_set_max, redo.len() as u64);
            }
            State::Serial { undo, .. } => {
                TxStats::record_max(&thread.stats.write_set_max, undo.len() as u64);
            }
        }
    }
}

/// An in-flight attempt on the HTM simulator.
#[derive(Debug)]
pub struct HtmTx<'rt> {
    rt: &'rt HtmSim,
    common: TxCommon,
    state: State,
    mallocs: Vec<(Addr, usize)>,
    frees: Vec<(Addr, usize)>,
}

impl<'rt> HtmTx<'rt> {
    /// Begins a new attempt.  Hardware attempts wait for the fallback lock to
    /// be free before starting (lock-elision subscription); serial attempts
    /// acquire the lock and doom all in-flight hardware transactions.
    pub fn begin(rt: &'rt HtmSim, common: TxCommon) -> Self {
        let state = if common.mode == TxMode::Hardware {
            rt.wait_fallback_clear();
            // A stale doom flag from a previous attempt must not kill this one.
            common.thread.take_doomed();
            rt.plane().begin_attempt(common.thread.id);
            State::Hardware {
                read_slots: common.thread.take_index_set(),
                write_slots: common.thread.take_index_set(),
                redo: common.thread.take_write_log(),
            }
        } else {
            rt.acquire_serial(&common.thread);
            State::Serial {
                holding: true,
                undo: common.thread.take_write_log(),
            }
        };
        HtmTx {
            rt,
            common,
            state,
            mallocs: Vec::new(),
            frees: Vec::new(),
        }
    }

    /// True if this attempt is speculative (hardware).
    pub fn is_hardware(&self) -> bool {
        matches!(self.state, State::Hardware { .. })
    }

    fn retry_log(&mut self, addr: Addr, observed: u64) {
        if self.common.mode != TxMode::SoftwareRetry {
            return;
        }
        // Substitute the pre-transaction value for locations this (serial)
        // attempt has already written, as Algorithm 5 does with the undo log.
        let logged = match &self.state {
            State::Serial { undo, .. } => undo.lookup(addr).unwrap_or(observed),
            State::Hardware { .. } => observed,
        };
        self.common.log_retry_read(addr, logged);
    }

    /// Rolls the attempt back.  Safe to call more than once.  Serial attempts
    /// release the fallback lock.
    pub fn rollback(&mut self) {
        self.state.note_sizes(&self.common.thread);
        match &mut self.state {
            State::Hardware {
                read_slots,
                write_slots,
                redo,
            } => {
                let me = self.common.thread.id;
                for slot in read_slots.iter() {
                    self.rt.plane().clear_read(slot, me);
                }
                for slot in write_slots.iter() {
                    self.rt.plane().clear_write(slot, me);
                }
                read_slots.clear();
                write_slots.clear();
                redo.clear();
                self.common.thread.take_doomed();
            }
            State::Serial { holding, undo } => {
                for e in undo.iter().rev() {
                    self.rt.system().heap.store(e.addr, e.val);
                }
                undo.clear();
                if *holding {
                    self.rt.release_serial();
                    *holding = false;
                }
            }
        }
        for &(addr, words) in &self.mallocs {
            self.rt
                .system()
                .heap
                .dealloc_for(&self.common.thread, addr, words);
        }
        self.mallocs.clear();
        self.frees.clear();
    }

    /// Attempts to commit.  On failure the caller must call
    /// [`HtmTx::rollback`].
    pub fn try_commit(&mut self) -> Result<CommitOutcome, TxCtl> {
        let system = Arc::clone(self.rt.system());
        self.state.note_sizes(&self.common.thread);
        match &mut self.state {
            State::Hardware {
                read_slots,
                write_slots,
                redo,
            } => {
                // The doom check and the write-back must be one atomic step
                // with respect to other commits and to serial-lock
                // acquisition (on real hardware the coherence protocol
                // guarantees this); otherwise two mutually conflicting
                // transactions can both pass their doom checks and interleave
                // write-backs, losing updates.  A hybrid runtime's software
                // write-backs take the same barrier (`commit_barrier`).
                let commit_guard = self.rt.commit_barrier();
                if self.common.thread.is_doomed() {
                    drop(commit_guard);
                    return Err(TxCtl::Abort(AbortReason::HwConflict));
                }
                // The backend's commit-window check: past the doom check,
                // before anything is written, so an abort here (a fault
                // plane's injection point) can never lose an update.
                if let Err(f) = self.rt.plane().commit_check(self.common.thread.id) {
                    drop(commit_guard);
                    return Err(hw_fault(&self.common.thread, f));
                }
                let was_writer = !redo.is_empty();
                // The stripe cover of the written cache lines (a superset of
                // the written words' stripes), needed up front by the orec
                // coupling and after the write-back by the targeted wake
                // scan.
                let plane = self.rt.plane();
                let written_cover = |redo: &WriteLog| {
                    let mut lines: Vec<_> = redo.iter().map(|e| e.addr.line()).collect();
                    lines.sort_unstable();
                    lines.dedup();
                    let mut cover = Vec::new();
                    for line in lines {
                        plane.line_cover(line, &mut cover);
                    }
                    cover.sort_unstable();
                    cover.dedup();
                    cover
                };
                // Hybrid coupling: publish this commit through the software
                // STM's metadata, with the *same* protocol a software
                // committer uses.  Every stripe covering a written line is
                // CAS-acquired (abort on any stripe a software commit
                // already holds — overlapping data is mid-commit), held
                // across the write-back, and released at a freshly ticked
                // clock value after it.  Holding the locks is what makes
                // the write-back opaque to software readers: a validated
                // read can never interleave with it, and any transaction
                // that began before the release observes the new version
                // and aborts rather than mixing old and new values.  An
                // acquisition failure releases the acquired prefix at its
                // original versions and aborts before memory is touched.
                let mut coupled_cover = Vec::new();
                if was_writer && self.rt.orec_coupled() {
                    coupled_cover = written_cover(redo);
                    let me = self.common.thread.id;
                    for (k, &idx) in coupled_cover.iter().enumerate() {
                        let cur = system.orecs.load(idx);
                        let ok = !cur.is_locked()
                            && system
                                .orecs
                                .cas(idx, cur, OrecValue::locked(cur.version(), me));
                        if !ok {
                            for &held in &coupled_cover[..k] {
                                let c = system.orecs.load(held);
                                system.orecs.store(held, OrecValue::unlocked(c.version()));
                            }
                            return Err(TxCtl::Abort(AbortReason::HwConflict));
                        }
                    }
                }
                // Write back the buffered stores.  All conflicting in-flight
                // transactions were doomed when we registered as writer of
                // their lines, and our writer registrations are still in
                // place, so no new reader can adopt a partial view without
                // observing the conflict.
                for e in redo.iter() {
                    system.heap.store(e.addr, e.val);
                }
                // Release the coupled stripes at a fresh commit timestamp,
                // making the hardware write-back visible to software read
                // validation exactly like a software commit's.  The stamp is
                // taken while the whole CAS cover is held (the ordering the
                // lazy clock plane's soundness requires), and the epoch is
                // published only after every stripe is released.
                if !coupled_cover.is_empty() {
                    let stamp = system.clock.commit_stamp(&self.common.thread.stats);
                    for &idx in &coupled_cover {
                        system.orecs.store(idx, OrecValue::unlocked(stamp.ts));
                    }
                    self.common.thread.publish_epoch(stamp.ts);
                }
                // Map the committed cache lines back to orec stripes for the
                // targeted post-commit wake scan (the word-level write set is
                // architecturally invisible; the line cover is a superset) —
                // but only if someone is actually waiting, so the common
                // no-sleeper case pays one atomic load and nothing else.
                // A waiter that registers after this check double-checks its
                // condition after registering, and the write-back above is
                // already complete, so no wakeup is lost.  The coupled path
                // already computed the cover; reuse it.
                let mut wake_stripes = coupled_cover;
                if wake_stripes.is_empty() && was_writer && !system.waiters.is_empty() {
                    wake_stripes = written_cover(redo);
                }
                let me = self.common.thread.id;
                for slot in write_slots.iter() {
                    plane.clear_write(slot, me);
                }
                for slot in read_slots.iter() {
                    plane.clear_read(slot, me);
                }
                read_slots.clear();
                write_slots.clear();
                redo.clear();
                for &(addr, words) in &self.frees {
                    system.heap.dealloc_for(&self.common.thread, addr, words);
                }
                self.mallocs.clear();
                self.frees.clear();
                Ok(CommitOutcome::hardware(was_writer, wake_stripes))
            }
            State::Serial { holding, undo } => {
                let was_writer = !undo.is_empty();
                undo.clear();
                for &(addr, words) in &self.frees {
                    system.heap.dealloc_for(&self.common.thread, addr, words);
                }
                self.mallocs.clear();
                self.frees.clear();
                if *holding {
                    self.rt.release_serial();
                    *holding = false;
                }
                Ok(CommitOutcome::serial(was_writer))
            }
        }
    }

    /// Rolls back and materialises the wait condition for a deschedule
    /// request.  Only meaningful for serial attempts (hardware attempts are
    /// switched to the serial mode by the driver before descheduling).
    pub fn rollback_for_deschedule(&mut self, spec: WaitSpec) -> Result<WaitCondition, TxCtl> {
        match spec {
            WaitSpec::ReadSetValues | WaitSpec::OrigReadLocks => {
                let pairs = self.common.waitset.drain_pairs();
                self.rollback();
                Ok(WaitCondition::ValuesChanged(pairs))
            }
            WaitSpec::Addrs(addrs) => {
                // Record the set high-water marks now: the undo log is
                // drained below, before `rollback` can observe its size.
                self.state.note_sizes(&self.common.thread);
                // Undo our writes first so the captured snapshot reflects the
                // pre-transaction state; as the serial-lock holder we are the
                // only transaction running, so plain loads are consistent.
                if let State::Serial { undo, .. } = &mut self.state {
                    for e in undo.iter().rev() {
                        self.rt.system().heap.store(e.addr, e.val);
                    }
                    undo.clear();
                }
                let pairs = addrs
                    .iter()
                    .map(|&a| (a, self.rt.system().heap.load(a)))
                    .collect();
                self.rollback();
                Ok(WaitCondition::ValuesChanged(pairs))
            }
            WaitSpec::Pred { f, args } => {
                self.rollback();
                Ok(WaitCondition::Pred { f, args })
            }
        }
    }
}

impl Drop for HtmTx<'_> {
    fn drop(&mut self) {
        // Defensive: never leak the serial lock or stale line registrations
        // if a body panics.
        self.rollback();
        // Recycle the attempt's access sets for the next attempt.
        let state = std::mem::replace(
            &mut self.state,
            State::Serial {
                holding: false,
                undo: WriteLog::new(),
            },
        );
        state.recycle(&self.common.thread);
    }
}

impl Tx for HtmTx<'_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if addr.index() >= self.rt.system().heap.len() {
            // A zombie transaction may compute a garbage address; turn that
            // into an abort instead of a panic.
            return Err(TxCtl::Abort(AbortReason::HwConflict));
        }
        if !self.is_hardware() {
            let val = self.rt.system().heap.load(addr);
            self.retry_log(addr, val);
            return Ok(val);
        }
        if self.common.thread.is_doomed() {
            return Err(TxCtl::Abort(AbortReason::HwConflict));
        }
        if self.rt.fallback_held() {
            return Err(TxCtl::Abort(AbortReason::HwFallbackLock));
        }
        let State::Hardware {
            read_slots, redo, ..
        } = &mut self.state
        else {
            unreachable!("checked above");
        };
        // Read-your-writes from the buffered store, O(1) by hash index.
        if let Some(v) = redo.lookup(addr) {
            return Ok(v);
        }
        let plane = self.rt.plane();
        let line = addr.line();
        let slot = plane.slot_for(line);
        if let Err(f) = plane.read_line(line, slot, self.common.thread.id) {
            // A conflicting speculative writer has been doomed by the backend
            // (our coherence request invalidates its line); we abort as well
            // rather than consuming a possibly torn value.
            return Err(hw_fault(&self.common.thread, f));
        }
        if read_slots.insert(slot) {
            if let Err(f) = plane.check_read_footprint(read_slots.len()) {
                return Err(hw_fault(&self.common.thread, f));
            }
        }
        Ok(self.rt.system().heap.load(addr))
    }

    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        if addr.index() >= self.rt.system().heap.len() {
            return Err(TxCtl::Abort(AbortReason::HwConflict));
        }
        match &mut self.state {
            State::Hardware {
                write_slots, redo, ..
            } => {
                if self.common.thread.is_doomed() {
                    return Err(TxCtl::Abort(AbortReason::HwConflict));
                }
                if self.rt.fallback_held() {
                    return Err(TxCtl::Abort(AbortReason::HwFallbackLock));
                }
                let plane = self.rt.plane();
                let line = addr.line();
                let slot = plane.slot_for(line);
                // The backend registers us as the line's writer, dooming
                // every conflicting speculative occupant; a conflict abort
                // means a foreign writer could not be displaced.
                if let Err(f) = plane.write_line(line, slot, self.common.thread.id) {
                    return Err(hw_fault(&self.common.thread, f));
                }
                if write_slots.insert(slot) {
                    if let Err(f) = plane.check_write_footprint(write_slots.len()) {
                        return Err(hw_fault(&self.common.thread, f));
                    }
                }
                // Buffer the store.  The HTM never consults ownership
                // records and nothing reads this log's cover (commit maps
                // written *lines* to stripes), so the cached index is left
                // degenerate rather than maintained for nobody.
                redo.record(addr, val, || 0);
                Ok(())
            }
            State::Serial { undo, .. } => {
                let old = self.rt.system().heap.load(addr);
                // First write per address keeps the pre-transaction value.
                undo.record_first(addr, old, || 0);
                self.rt.system().heap.store(addr, val);
                Ok(())
            }
        }
    }

    fn alloc(&mut self, words: usize) -> TxResult<Addr> {
        match self.rt.system().heap.alloc_for(&self.common.thread, words) {
            Some(addr) => {
                self.mallocs.push((addr, words));
                Ok(addr)
            }
            None => Err(TxCtl::Abort(AbortReason::OutOfMemory)),
        }
    }

    fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
        self.frees.push((addr, words));
        Ok(())
    }

    fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
        let hardware = self.is_hardware();
        match self.try_commit() {
            Ok(info) => {
                let stats = &self.common.thread.stats;
                if info.hardware {
                    TxStats::bump(&stats.hw_commits);
                } else {
                    TxStats::bump(&stats.sw_commits);
                }
                if info.serial {
                    TxStats::bump(&stats.serial_commits);
                }
                block();
                // Begin the continuation transaction in the same flavour,
                // recycling the committed attempt's (cleared) containers.
                let prev = std::mem::replace(
                    &mut self.state,
                    State::Serial {
                        holding: false,
                        undo: WriteLog::new(),
                    },
                );
                prev.recycle(&self.common.thread);
                if hardware {
                    self.rt.wait_fallback_clear();
                    self.common.thread.take_doomed();
                    self.rt.plane().begin_attempt(self.common.thread.id);
                    self.state = State::Hardware {
                        read_slots: self.common.thread.take_index_set(),
                        write_slots: self.common.thread.take_index_set(),
                        redo: self.common.thread.take_write_log(),
                    };
                } else {
                    self.rt.acquire_serial(&self.common.thread);
                    self.state = State::Serial {
                        holding: true,
                        undo: self.common.thread.take_write_log(),
                    };
                }
                Ok(())
            }
            Err(ctl) => Err(ctl),
        }
    }

    fn explicit_abort(&mut self, code: u8) -> TxCtl {
        TxCtl::Abort(AbortReason::Explicit(code))
    }

    fn common(&self) -> &TxCommon {
        &self.common
    }

    fn common_mut(&mut self) -> &mut TxCommon {
        &mut self.common
    }

    fn system(&self) -> &Arc<TmSystem> {
        self.rt.system()
    }
}
