//! The HTM simulator's driver loop: speculative attempts, the GCC-style
//! serial fallback, and the software-mode fallback for descheduling
//! transactions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use tm_core::backoff::Backoff;
use tm_core::stats::TxStats;
use tm_core::{
    AbortReason, ThreadCtx, ThreadId, TmRt, TmRuntime, TmSystem, Tx, TxCommon, TxCtl, TxMode,
    TxResult, WaitSpec,
};

use crate::lines::LineTable;
use crate::tx::HtmTx;

/// The simulated best-effort hardware TM runtime.
pub struct HtmSim {
    system: Arc<TmSystem>,
    lines: LineTable,
    /// The serial fallback lock, doubling as the subscription word that
    /// hardware transactions observe: they refuse to start (and abort) while
    /// it is held.
    fallback_flag: AtomicBool,
    seed: AtomicU64,
}

impl std::fmt::Debug for HtmSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmSim")
            .field("fallback_held", &self.fallback_held())
            .finish_non_exhaustive()
    }
}

impl HtmSim {
    /// Creates a runtime over `system`.
    pub fn new(system: Arc<TmSystem>) -> Arc<Self> {
        let lines = LineTable::new(system.config.orec_count);
        Arc::new(HtmSim {
            system,
            lines,
            fallback_flag: AtomicBool::new(false),
            seed: AtomicU64::new(1),
        })
    }

    /// The simulated coherence directory.
    pub fn lines(&self) -> &LineTable {
        &self.lines
    }

    /// The shared system.
    pub fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    /// True while some transaction holds the serial fallback lock.
    #[inline]
    pub fn fallback_held(&self) -> bool {
        self.fallback_flag.load(Ordering::SeqCst)
    }

    /// Spins until the fallback lock is free (hardware transactions subscribe
    /// to the lock before starting, as in lock elision).
    pub fn wait_fallback_clear(&self) {
        let mut spins = 0u32;
        while self.fallback_held() {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Acquires the serial lock and dooms every in-flight hardware
    /// transaction (their next access or commit will abort, exactly as
    /// acquiring the fallback lock aborts elided transactions on real
    /// hardware).
    pub fn acquire_serial(&self, thread: &Arc<ThreadCtx>) {
        let mut spins = 0u32;
        while self
            .fallback_flag
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            spins += 1;
            if spins > 64 {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        TxStats::bump(&thread.stats.serial_acquires);
        self.system.threads.for_each_other(thread.id, |t| t.doom());
    }

    /// Releases the serial lock.
    pub fn release_serial(&self) {
        self.fallback_flag.store(false, Ordering::SeqCst);
    }

    /// Delivers a conflict abort to another thread's in-flight hardware
    /// transaction.
    pub fn doom_thread(&self, tid: ThreadId) {
        if let Some(t) = self.system.threads.get(tid) {
            t.doom();
        }
    }

    fn run<T, F>(&self, thread: &Arc<ThreadCtx>, mut body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        let seed = self
            .seed
            .fetch_add(0x9E37_79B9, Ordering::Relaxed)
            .wrapping_add(thread.id as u64);
        let mut backoff = Backoff::new(self.system.config.backoff, seed);
        let mut mode = TxMode::Hardware;
        let mut hw_failures: u32 = 0;
        let mut attempts: u32 = 0;

        loop {
            let mut tx = HtmTx::begin(self, TxCommon::new(Arc::clone(thread), mode, attempts));
            let ctl = match body(&mut tx) {
                Ok(value) => match tx.try_commit() {
                    Ok(info) => {
                        if info.hardware {
                            TxStats::bump(&thread.stats.hw_commits);
                        } else {
                            TxStats::bump(&thread.stats.sw_commits);
                        }
                        drop(tx);
                        if info.was_writer {
                            // Post-commit wake-ups run outside the (already
                            // committed) transaction; on this runtime the
                            // condition checks themselves execute as hardware
                            // transactions where possible.
                            condsync::wake_waiters(self, thread);
                        }
                        return value;
                    }
                    Err(ctl) => ctl,
                },
                Err(ctl) => ctl,
            };

            attempts += 1;
            let hardware_attempt = tx.is_hardware();
            match ctl {
                TxCtl::Abort(reason) => {
                    tx.rollback();
                    drop(tx);
                    if hardware_attempt {
                        TxStats::bump(&thread.stats.hw_aborts);
                        if let AbortReason::Explicit(_) = reason {
                            // Program-requested restarts (the Restart
                            // baseline) stay speculative; only genuine
                            // conflict/capacity failures count towards the
                            // fallback budget.
                            TxStats::bump(&thread.stats.explicit_aborts);
                        } else {
                            hw_failures += 1;
                        }
                        // GCC libitm policy: after a bounded number of
                        // speculative failures, suspend concurrency and run
                        // serially so the transaction is guaranteed to finish.
                        if hw_failures >= self.system.config.htm.max_attempts {
                            mode = TxMode::Serial;
                        }
                    } else {
                        TxStats::bump(&thread.stats.sw_aborts);
                        if let AbortReason::Explicit(_) = reason {
                            TxStats::bump(&thread.stats.explicit_aborts);
                        }
                    }
                    if reason.is_conflict() {
                        backoff.abort_and_wait();
                    }
                }
                TxCtl::Deschedule(spec) => {
                    if hardware_attempt {
                        // No escape actions in hardware: abort and re-execute
                        // in the software (serial) mode, value-logging if the
                        // request was a Retry (§2.2.3).
                        tx.rollback();
                        drop(tx);
                        TxStats::bump(&thread.stats.hw_aborts);
                        mode = match spec {
                            WaitSpec::ReadSetValues | WaitSpec::OrigReadLocks => {
                                TxStats::bump(&thread.stats.retry_relogs);
                                TxMode::SoftwareRetry
                            }
                            _ => TxMode::Serial,
                        };
                    } else if matches!(spec, WaitSpec::ReadSetValues | WaitSpec::OrigReadLocks)
                        && mode != TxMode::SoftwareRetry
                    {
                        tx.rollback();
                        drop(tx);
                        TxStats::bump(&thread.stats.retry_relogs);
                        mode = TxMode::SoftwareRetry;
                    } else {
                        match tx.rollback_for_deschedule(spec) {
                            Ok(cond) => {
                                drop(tx);
                                condsync::deschedule(self, thread, cond);
                            }
                            Err(_) => {
                                drop(tx);
                                TxStats::bump(&thread.stats.sw_aborts);
                            }
                        }
                        // After waking, try hardware again from scratch.
                        mode = TxMode::Hardware;
                        hw_failures = 0;
                    }
                }
                TxCtl::SwitchToSoftware => {
                    tx.rollback();
                    drop(tx);
                    mode = TxMode::Serial;
                }
                TxCtl::BecomeSerial => {
                    tx.rollback();
                    drop(tx);
                    mode = TxMode::Serial;
                }
            }
        }
    }
}

impl TmRuntime for HtmSim {
    fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    fn name(&self) -> &'static str {
        "htm"
    }

    fn exec_u64(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
    ) -> u64 {
        self.run(thread, body)
    }

    fn exec_bool(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<bool>,
    ) -> bool {
        self.run(thread, body)
    }
}

impl TmRt for HtmSim {
    fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        self.run(thread, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{Addr, HtmConfig, TmConfig, TmVar};

    fn runtime() -> (Arc<TmSystem>, Arc<HtmSim>) {
        let system = TmSystem::new(TmConfig::small());
        let rt = HtmSim::new(Arc::clone(&system));
        (system, rt)
    }

    #[test]
    fn simple_transaction_commits_in_hardware() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 5);
        let out = rt.atomically(&th, |tx| {
            let x = v.get(tx)?;
            v.set(tx, x + 1)?;
            Ok(x + 1)
        });
        assert_eq!(out, 6);
        assert_eq!(v.load_direct(&system), 6);
        let stats = th.stats.snapshot();
        assert_eq!(stats.hw_commits, 1);
        assert_eq!(stats.sw_commits, 0);
    }

    #[test]
    fn capacity_overflow_falls_back_to_serial() {
        let system = TmSystem::new(
            TmConfig::small().with_htm(HtmConfig {
                max_read_lines: 4,
                max_write_lines: 2,
                max_attempts: 2,
            }),
        );
        let rt = HtmSim::new(Arc::clone(&system));
        let th = system.register_thread();
        let arr = tm_core::TmArray::<u64>::alloc(&system, 256, 0);
        rt.atomically(&th, |tx| {
            // Touch many distinct lines so the write capacity overflows.
            for i in 0..64 {
                arr.set(tx, i, i as u64)?;
            }
            Ok(())
        });
        for i in 0..64 {
            assert_eq!(arr.load_direct(&system, i), i as u64);
        }
        let stats = th.stats.snapshot();
        assert!(stats.hw_aborts >= 2, "should abort speculatively first");
        assert_eq!(stats.sw_commits, 1, "must finish in serial mode");
        assert!(stats.serial_acquires >= 1);
        assert!(!rt.fallback_held(), "serial lock must be released");
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let (system, rt) = runtime();
        let counter = TmVar::<u64>::alloc(&system, 0);
        let threads = 4;
        let per_thread = 300;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let rt = Arc::clone(&rt);
            let system = Arc::clone(&system);
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                let th = system.register_thread();
                for _ in 0..per_thread {
                    rt.atomically(&th, |tx| {
                        let x = counter.get(tx)?;
                        counter.set(tx, x + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load_direct(&system), threads * per_thread);
        assert!(!rt.fallback_held());
    }

    #[test]
    fn retry_switches_to_software_and_wakes() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 3));
        assert_eq!(waiter.join().unwrap(), 3);
        assert!(!rt.fallback_held());
    }

    #[test]
    fn await_and_waitpred_work_on_htm() {
        let (system, rt) = runtime();
        let count = TmVar::<u64>::alloc(&system, 0);

        let c1 = count.clone();
        let rt1 = Arc::clone(&rt);
        let s1 = Arc::clone(&system);
        let awaiter = std::thread::spawn(move || {
            let th = s1.register_thread();
            rt1.atomically(&th, |tx| {
                let v = c1.get(tx)?;
                if v == 0 {
                    return condsync::await_one(tx, c1.addr());
                }
                Ok(v)
            })
        });

        fn nonzero(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
            Ok(tx.read(Addr(args[0] as usize))? != 0)
        }
        let c2 = count.clone();
        let rt2 = Arc::clone(&rt);
        let s2 = Arc::clone(&system);
        let predwaiter = std::thread::spawn(move || {
            let th = s2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = c2.get(tx)?;
                if v == 0 {
                    return condsync::wait_pred(tx, nonzero, &[c2.addr().0 as u64]);
                }
                Ok(v)
            })
        });

        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| count.set(tx, 9));
        assert_eq!(awaiter.join().unwrap(), 9);
        assert_eq!(predwaiter.join().unwrap(), 9);
    }

    #[test]
    fn explicit_restart_works_on_htm() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let spinner = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::restart(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 1));
        assert_eq!(spinner.join().unwrap(), 1);
    }

    #[test]
    fn serial_lock_round_trip() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        assert!(!rt.fallback_held());
        rt.acquire_serial(&th);
        assert!(rt.fallback_held());
        rt.release_serial();
        assert!(!rt.fallback_held());
    }
}
