//! The HTM simulator's runtime: a thin [`TxEngine`] over [`HtmTx`], plus the
//! GCC-style serial fallback lock.
//!
//! The speculative/serial mode ladder — bounded hardware attempts, the
//! serial fallback after repeated failures, and the software re-execution
//! that descheduling hardware transactions require — is expressed through
//! the engine's mode-policy hooks; the loop that drives it is the shared
//! [`tm_core::driver::run`].

use std::sync::Arc;

use tm_core::driver::{self, CommitOutcome, TxEngine};
use tm_core::hwtm::{FaultPlane, HwTm};
use tm_core::lock::{Mutex, MutexGuard};
use tm_core::{
    ThreadCtx, ThreadId, TmRt, TmRuntime, TmSystem, Tx, TxCommon, TxCtl, TxKind, TxMode, TxResult,
    WaitCondition, WaitSpec, WakeSet,
};

use crate::lines::LineTable;
use crate::plane::SimPlane;
use crate::tx::HtmTx;

/// The best-effort hardware TM runtime, generic over its hardware backend.
///
/// By default the backend is the crate's [`SimPlane`] simulator (wrapped in
/// a [`FaultPlane`] when the system's [`tm_core::FaultConfig`] enables
/// injection); [`HtmSim::with_plane`] installs any other [`HwTm`]
/// implementation, e.g. the cfg-gated `rtm` stub (`--features rtm`).
pub struct HtmSim {
    system: Arc<TmSystem>,
    /// The simulator backend, when that is what `plane` is (directly or
    /// behind a fault layer); kept for the white-box [`HtmSim::lines`]
    /// accessor.  `None` under a foreign [`HtmSim::with_plane`] backend.
    sim: Option<Arc<SimPlane>>,
    /// The hardware backend every speculative access goes through.
    plane: Arc<dyn HwTm>,
    /// Serialises hardware commits (doom-check + redo write-back + directory
    /// clear) against each other, against serial-lock acquisition, and —
    /// through [`HtmSim::commit_barrier`] — against a hybrid runtime's
    /// software write-backs.
    ///
    /// On real hardware a transactional commit is atomic at the coherence
    /// layer; without this lock the simulator had a window between a
    /// transaction's final doom check and its write-back in which a
    /// conflicting commit (or the serial fallback's direct stores) could
    /// interleave, producing lost updates.
    ///
    /// The serial fallback *flag* itself is no longer here: it is the
    /// system-wide [`tm_core::SerialGate`] on [`TmSystem`], which every
    /// engine honors.
    commit_mutex: Mutex<()>,
    /// True when this simulator shares its [`TmSystem`] with a software STM
    /// (the hybrid runtime): hardware commits then publish themselves to the
    /// ownership records of their written lines so software validation can
    /// observe them, and abort instead of stomping locked orecs.
    orec_coupled: bool,
}

impl std::fmt::Debug for HtmSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HtmSim")
            .field("fallback_held", &self.fallback_held())
            .finish_non_exhaustive()
    }
}

impl HtmSim {
    /// Creates a runtime over `system`.
    pub fn new(system: Arc<TmSystem>) -> Arc<Self> {
        Self::build(system, false)
    }

    /// Creates a runtime whose hardware commits are *coupled* to the
    /// system's ownership records, for use as the fast path of a hybrid
    /// HTM+STM runtime sharing `system` with a software STM: commits
    /// validate against (and abort on) locked orecs covering their written
    /// lines, and publish a fresh version to those orecs so software read
    /// validation observes hardware writes.
    pub fn new_coupled(system: Arc<TmSystem>) -> Arc<Self> {
        Self::build(system, true)
    }

    fn build(system: Arc<TmSystem>, orec_coupled: bool) -> Arc<Self> {
        let sim = SimPlane::new(Arc::clone(&system));
        let fault = system.config.fault;
        let plane: Arc<dyn HwTm> = if fault.enabled() {
            Arc::new(FaultPlane::new(
                Arc::clone(&sim) as Arc<dyn HwTm>,
                fault,
                system.config.max_threads,
            ))
        } else {
            Arc::clone(&sim) as Arc<dyn HwTm>
        };
        Arc::new(HtmSim {
            system,
            sim: Some(sim),
            plane,
            commit_mutex: Mutex::new(()),
            orec_coupled,
        })
    }

    /// Creates a runtime over `system` driving the given hardware backend
    /// instead of the built-in simulator.  `orec_coupled` has the same
    /// meaning as in [`HtmSim::new_coupled`].
    pub fn with_plane(
        system: Arc<TmSystem>,
        plane: Arc<dyn HwTm>,
        orec_coupled: bool,
    ) -> Arc<Self> {
        Arc::new(HtmSim {
            system,
            sim: None,
            plane,
            commit_mutex: Mutex::new(()),
            orec_coupled,
        })
    }

    /// The hardware backend speculative accesses go through.
    #[inline]
    pub fn plane(&self) -> &Arc<dyn HwTm> {
        &self.plane
    }

    /// The simulated coherence directory (white-box test access).
    ///
    /// # Panics
    /// When a foreign backend was installed via [`HtmSim::with_plane`].
    pub fn lines(&self) -> &LineTable {
        self.sim
            .as_ref()
            .expect("no simulator backend installed (HtmSim::with_plane)")
            .lines()
    }

    /// The shared system.
    pub fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    /// True when hardware commits publish to the ownership records
    /// (hybrid-runtime coupling; see [`HtmSim::new_coupled`]).
    #[inline]
    pub fn orec_coupled(&self) -> bool {
        self.orec_coupled
    }

    /// True while some transaction holds the serial fallback lock (the
    /// system-wide [`tm_core::SerialGate`]).
    #[inline]
    pub fn fallback_held(&self) -> bool {
        self.system.serial.held()
    }

    /// Spins until the fallback lock is free (hardware transactions subscribe
    /// to the lock before starting, as in lock elision).
    pub fn wait_fallback_clear(&self) {
        self.system.serial.wait_clear();
    }

    /// Acquires the system's serial gate — which dooms every in-flight
    /// hardware transaction and quiesces in-flight software transactions —
    /// and then drains the hardware commit barrier.
    pub fn acquire_serial(&self, thread: &Arc<ThreadCtx>) {
        self.system.serial.acquire(&self.system, thread);
        // Wait out any hardware commit that passed its doom check before the
        // gate's dooms landed: once the commit mutex has been acquired and
        // released, every in-flight write-back has finished and every later
        // hardware commit will observe its doom flag and abort.  Without
        // this barrier the serial section's direct stores could interleave
        // with a lagging speculative write-back.
        drop(self.commit_mutex.lock());
    }

    /// Takes the hardware-commit lock: every hardware commit's
    /// doom-check + write-back runs under it, so holding it excludes them.
    /// Public because a hybrid runtime's software write-back must take the
    /// same barrier (see `stm_lazy::CommitInterlock`).
    pub fn commit_barrier(&self) -> MutexGuard<'_, ()> {
        self.commit_mutex.lock()
    }

    /// Releases the serial lock (the system gate).
    pub fn release_serial(&self) {
        self.system.serial.release(&self.system.clock);
    }

    /// Delivers a conflict abort to another thread's in-flight hardware
    /// transaction.
    pub fn doom_thread(&self, tid: ThreadId) {
        if let Some(t) = self.system.threads.get(tid) {
            t.doom();
        }
    }
}

impl TxEngine for HtmSim {
    type Tx<'eng> = HtmTx<'eng>;

    fn begin(&self, common: TxCommon) -> HtmTx<'_> {
        HtmTx::begin(self, common)
    }

    fn try_commit(&self, tx: &mut HtmTx<'_>) -> Result<CommitOutcome, TxCtl> {
        tx.try_commit()
    }

    fn rollback(&self, tx: &mut HtmTx<'_>) {
        tx.rollback();
    }

    fn materialise_wait(&self, tx: &mut HtmTx<'_>, spec: WaitSpec) -> Result<WaitCondition, TxCtl> {
        tx.rollback_for_deschedule(spec)
    }

    fn initial_mode(&self) -> TxMode {
        TxMode::Hardware
    }

    fn attempt_is_hardware(&self, tx: &HtmTx<'_>) -> bool {
        tx.is_hardware()
    }

    fn mode_after_wake(&self) -> TxMode {
        // After waking, try hardware again from scratch.
        TxMode::Hardware
    }

    fn committed_stripes(&self, outcome: &CommitOutcome) -> WakeSet {
        if outcome.hardware {
            // The commit path mapped its written cache lines to stripes
            // (a superset of the written words' stripes), so the wake scan
            // can be targeted even though orecs were never touched.
            WakeSet::Stripes(outcome.written_orecs.clone())
        } else {
            // Serial-fallback commits write directly with no metadata at
            // all; conservatively wake every shard.
            WakeSet::All
        }
    }

    fn mode_for_software_switch(&self, _current: TxMode) -> TxMode {
        // No finer-grained software mode exists here: a transaction that
        // needs software facilities runs serially (holding the fallback
        // lock), exactly as descheduling transactions do on real TSX.
        TxMode::Serial
    }
}

impl TmRuntime for HtmSim {
    fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    fn name(&self) -> &'static str {
        "htm"
    }

    fn exec_u64(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
    ) -> u64 {
        driver::run(self, thread, body)
    }

    fn exec_bool(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<bool>,
    ) -> bool {
        driver::run(self, thread, body)
    }
}

impl TmRt for HtmSim {
    fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        driver::run(self, thread, body)
    }

    fn atomically_read<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        // No software snapshot rung exists here (the fallback is the serial
        // lock), but declared-read-only hardware commits still count as
        // `ro_fast_commits` in the driver.
        driver::run_kind(self, thread, TxKind::ReadOnly, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{Addr, HtmConfig, TmConfig, TmVar};

    fn runtime() -> (Arc<TmSystem>, Arc<HtmSim>) {
        let system = TmSystem::new(TmConfig::small());
        let rt = HtmSim::new(Arc::clone(&system));
        (system, rt)
    }

    #[test]
    fn simple_transaction_commits_in_hardware() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 5);
        let out = rt.atomically(&th, |tx| {
            let x = v.get(tx)?;
            v.set(tx, x + 1)?;
            Ok(x + 1)
        });
        assert_eq!(out, 6);
        assert_eq!(v.load_direct(&system), 6);
        let stats = th.stats.snapshot();
        assert_eq!(stats.hw_commits, 1);
        assert_eq!(stats.sw_commits, 0);
    }

    #[test]
    fn capacity_overflow_falls_back_to_serial() {
        let system = TmSystem::new(TmConfig::small().with_htm(HtmConfig {
            max_read_lines: 4,
            max_write_lines: 2,
            max_attempts: 2,
        }));
        let rt = HtmSim::new(Arc::clone(&system));
        let th = system.register_thread();
        let arr = tm_core::TmArray::<u64>::alloc(&system, 256, 0);
        rt.atomically(&th, |tx| {
            // Touch many distinct lines so the write capacity overflows.
            for i in 0..64 {
                arr.set(tx, i, i as u64)?;
            }
            Ok(())
        });
        for i in 0..64 {
            assert_eq!(arr.load_direct(&system, i), i as u64);
        }
        let stats = th.stats.snapshot();
        assert!(stats.hw_aborts >= 2, "should abort speculatively first");
        assert_eq!(stats.sw_commits, 1, "must finish in serial mode");
        assert!(stats.serial_acquires >= 1);
        assert!(!rt.fallback_held(), "serial lock must be released");
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let (system, rt) = runtime();
        let counter = TmVar::<u64>::alloc(&system, 0);
        let threads = 4;
        let per_thread = 300;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let rt = Arc::clone(&rt);
            let system = Arc::clone(&system);
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                let th = system.register_thread();
                for _ in 0..per_thread {
                    rt.atomically(&th, |tx| {
                        let x = counter.get(tx)?;
                        counter.set(tx, x + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load_direct(&system), threads * per_thread);
        assert!(!rt.fallback_held());
    }

    #[test]
    fn retry_switches_to_software_and_wakes() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 3));
        assert_eq!(waiter.join().unwrap(), 3);
        assert!(!rt.fallback_held());
    }

    #[test]
    fn await_and_waitpred_work_on_htm() {
        let (system, rt) = runtime();
        let count = TmVar::<u64>::alloc(&system, 0);

        let c1 = count.clone();
        let rt1 = Arc::clone(&rt);
        let s1 = Arc::clone(&system);
        let awaiter = std::thread::spawn(move || {
            let th = s1.register_thread();
            rt1.atomically(&th, |tx| {
                let v = c1.get(tx)?;
                if v == 0 {
                    return condsync::await_one(tx, c1.addr());
                }
                Ok(v)
            })
        });

        fn nonzero(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
            Ok(tx.read(Addr(args[0] as usize))? != 0)
        }
        let c2 = count.clone();
        let rt2 = Arc::clone(&rt);
        let s2 = Arc::clone(&system);
        let predwaiter = std::thread::spawn(move || {
            let th = s2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = c2.get(tx)?;
                if v == 0 {
                    return condsync::wait_pred(tx, nonzero, &[c2.addr().0 as u64]);
                }
                Ok(v)
            })
        });

        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| count.set(tx, 9));
        assert_eq!(awaiter.join().unwrap(), 9);
        assert_eq!(predwaiter.join().unwrap(), 9);
    }

    #[test]
    fn explicit_restart_works_on_htm() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let spinner = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::restart(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 1));
        assert_eq!(spinner.join().unwrap(), 1);
    }

    #[test]
    fn serial_lock_round_trip() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        assert!(!rt.fallback_held());
        rt.acquire_serial(&th);
        assert!(rt.fallback_held());
        rt.release_serial();
        assert!(!rt.fallback_held());
    }
}
