//! A best-effort hardware transactional memory **simulator**, the default
//! backend of the pluggable hardware plane ([`tm_core::hwtm::HwTm`]) used by
//! the paper's **HTM** configuration.
//!
//! The runtime here ([`HtmSim`]) drives *any* [`tm_core::hwtm::HwTm`]
//! backend; this crate supplies two of them — the simulator ([`SimPlane`],
//! the default) and the cfg-gated `rtm` stub (compiled with
//! `--features rtm`) where a real Intel RTM / Arm TME implementation slots
//! in — and `tm-core` supplies a third, the deterministic fault-injection
//! decorator
//! ([`tm_core::hwtm::FaultPlane`], installed automatically when
//! [`tm_core::FaultConfig`] enables it).
//!
//! Why the default backend is a simulator: issuing real `xbegin`/`xend`
//! requires inline assembly and TSX-enabled silicon, neither of which this
//! reproduction can rely on.  What the paper's mechanisms actually depend on
//! are the *architectural properties* of best-effort HTM, and those are what
//! the simulator provides:
//!
//! * **Invisible write sets** — a committed hardware transaction leaves no
//!   record of what it wrote, so wake-up decisions must be computable from
//!   shared memory alone (the paper's central design constraint).
//! * **No escape actions** — a hardware transaction cannot make a syscall or
//!   publish a waiter record without aborting; descheduling therefore
//!   requires re-executing in a software (serial) mode, exactly as in §2.2.3.
//! * **Eager, requester-wins conflict detection at cache-line granularity** —
//!   including aborts of read-only transactions (such as `wakeWaiters`) that
//!   collide with writers, the effect §2.4.1 observes on real TSX.
//! * **Capacity limits** and **explicit 8-bit abort codes** (`xabort`).
//! * **A serial fallback lock** taken after a bounded number of speculative
//!   attempts, mirroring GCC libitm's policy of suspending concurrency after
//!   a transaction aborts twice.
//!
//! The simulator is *not* cycle-accurate and makes one deliberate
//! simplification: a transaction doomed by a conflicting writer observes the
//! abort at its next instrumented access (or at commit), not instantaneously.
//! Workload code therefore runs briefly as a "zombie" on a possibly
//! inconsistent snapshot; because all workload state lives in the bounds-
//! checked word heap this is benign, and it does not change which
//! transactions commit.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lines;
pub mod plane;
#[cfg(feature = "rtm")]
pub mod rtm;
pub mod runtime;
pub mod tx;

pub use lines::LineTable;
pub use plane::SimPlane;
pub use runtime::HtmSim;
pub use tx::HtmTx;
