//! A lazy (redo-log, commit-time locking) software TM in the style of TL2,
//! corresponding to the paper's **Lazy STM** configuration (a
//! privatization-safe, redo-log variant of the GCC STM).
//!
//! * Writes are buffered in a redo log; memory is untouched until commit.
//! * Reads check the redo log first (read-your-writes) and otherwise
//!   validate against the global version clock, exactly as in TL2.
//! * Commit acquires the ownership records covering the write set, increments
//!   the clock, validates the read set, writes the redo log back to memory,
//!   and releases the locks at the commit timestamp.
//! * Abort merely discards the logs (nothing was written in place).
//!
//! Condition synchronization reuses the *same* driver loop as the eager
//! runtime (`tm_core::driver::run`, via the `TxEngine` trait); the only
//! difference the mechanisms see is how `Await` captures its value snapshot
//! (no undo is needed because memory was never modified).

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod runtime;
pub mod tx;

pub use runtime::LazyStm;
pub use tx::{CommitInterlock, LazyTx};
