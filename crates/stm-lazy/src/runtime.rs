//! The lazy-STM driver loop (mirrors the eager runtime's driver; the
//! differences are entirely inside [`crate::tx::LazyTx`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use condsync::{OrigRegistry, OrigWaiter};
use tm_core::backoff::Backoff;
use tm_core::stats::TxStats;
use tm_core::{
    AbortReason, Semaphore, ThreadCtx, TmRt, TmRuntime, TmSystem, Tx, TxCommon, TxCtl, TxMode,
    TxResult, WaitSpec,
};

use crate::tx::LazyTx;

/// The lazy (redo-log) software TM runtime.
#[derive(Debug)]
pub struct LazyStm {
    system: Arc<TmSystem>,
    orig: OrigRegistry,
    seed: AtomicU64,
}

impl LazyStm {
    /// Creates a runtime over `system`.
    pub fn new(system: Arc<TmSystem>) -> Arc<Self> {
        Arc::new(LazyStm {
            system,
            orig: OrigRegistry::new(),
            seed: AtomicU64::new(1),
        })
    }

    /// The `Retry-Orig` waiting list (exposed for tests).
    pub fn orig_registry(&self) -> &OrigRegistry {
        &self.orig
    }

    fn run<T, F>(&self, thread: &Arc<ThreadCtx>, mut body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        let seed = self
            .seed
            .fetch_add(0x9E37_79B9, Ordering::Relaxed)
            .wrapping_add(thread.id as u64);
        let mut backoff = Backoff::new(self.system.config.backoff, seed);
        let mut mode = TxMode::Software;
        let mut attempts: u32 = 0;

        loop {
            let mut tx = LazyTx::begin(
                &self.system,
                TxCommon::new(Arc::clone(thread), mode, attempts),
            );
            let ctl = match body(&mut tx) {
                Ok(value) => match tx.try_commit() {
                    Ok(info) => {
                        TxStats::bump(&thread.stats.sw_commits);
                        if info.was_writer {
                            condsync::wake_waiters(self, thread);
                            if !self.orig.is_empty() {
                                self.orig.wake_matching(thread, &info.written_orecs);
                            }
                        }
                        return value;
                    }
                    Err(ctl) => ctl,
                },
                Err(ctl) => ctl,
            };

            attempts += 1;
            match ctl {
                TxCtl::Abort(reason) => {
                    tx.rollback();
                    TxStats::bump(&thread.stats.sw_aborts);
                    if let AbortReason::Explicit(_) = reason {
                        TxStats::bump(&thread.stats.explicit_aborts);
                    } else if reason.is_conflict() {
                        backoff.abort_and_wait();
                    }
                }
                TxCtl::Deschedule(WaitSpec::ReadSetValues) if mode != TxMode::SoftwareRetry => {
                    tx.rollback();
                    TxStats::bump(&thread.stats.retry_relogs);
                    mode = TxMode::SoftwareRetry;
                }
                TxCtl::Deschedule(WaitSpec::OrigReadLocks) => {
                    self.deschedule_orig(thread, &mut tx);
                    mode = TxMode::Software;
                }
                TxCtl::Deschedule(spec) => {
                    match tx.rollback_for_deschedule(spec) {
                        Ok(cond) => {
                            condsync::deschedule(self, thread, cond);
                        }
                        Err(_) => {
                            TxStats::bump(&thread.stats.sw_aborts);
                            backoff.abort_and_wait();
                        }
                    }
                    mode = TxMode::Software;
                }
                TxCtl::SwitchToSoftware | TxCtl::BecomeSerial => {
                    tx.rollback();
                }
            }
        }
    }

    fn deschedule_orig(&self, thread: &Arc<ThreadCtx>, tx: &mut LazyTx) {
        let read_orecs = tx.read_orec_indices();
        let start = tx.start();
        tx.rollback();
        TxStats::bump(&thread.stats.descheds);

        let sem = Arc::new(Semaphore::new());
        let waiter = OrigWaiter::new(thread.id, read_orecs.clone(), Arc::clone(&sem));
        let registered = self.orig.register_if(Arc::clone(&waiter), || {
            LazyTx::reads_valid_at(&self.system, &read_orecs, start)
        });
        if registered {
            TxStats::bump(&thread.stats.sleeps);
            sem.wait();
            self.orig.deregister(&waiter);
        } else {
            TxStats::bump(&thread.stats.desched_skips);
        }
    }
}

impl TmRuntime for LazyStm {
    fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    fn name(&self) -> &'static str {
        "lazy-stm"
    }

    fn exec_u64(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
    ) -> u64 {
        self.run(thread, body)
    }

    fn exec_bool(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<bool>,
    ) -> bool {
        self.run(thread, body)
    }
}

impl TmRt for LazyStm {
    fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        self.run(thread, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{TmConfig, TmVar};

    fn runtime() -> (Arc<TmSystem>, Arc<LazyStm>) {
        let system = TmSystem::new(TmConfig::small());
        let rt = LazyStm::new(Arc::clone(&system));
        (system, rt)
    }

    #[test]
    fn simple_transaction_commits() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 3);
        let doubled = rt.atomically(&th, |tx| {
            let x = v.get(tx)?;
            v.set(tx, x * 2)?;
            Ok(x * 2)
        });
        assert_eq!(doubled, 6);
        assert_eq!(v.load_direct(&system), 6);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let (system, rt) = runtime();
        let counter = TmVar::<u64>::alloc(&system, 0);
        let threads = 4;
        let per_thread = 500;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let rt = Arc::clone(&rt);
            let system = Arc::clone(&system);
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                let th = system.register_thread();
                for _ in 0..per_thread {
                    rt.atomically(&th, |tx| {
                        let x = counter.get(tx)?;
                        counter.set(tx, x + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load_direct(&system), threads * per_thread);
    }

    #[test]
    fn retry_sleeps_until_value_changes() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 7));
        assert_eq!(waiter.join().unwrap(), 7);
    }

    #[test]
    fn await_and_waitpred_wake_correctly() {
        let (system, rt) = runtime();
        let count = TmVar::<u64>::alloc(&system, 0);

        // Await waiter.
        let c1 = count.clone();
        let rt1 = Arc::clone(&rt);
        let s1 = Arc::clone(&system);
        let awaiter = std::thread::spawn(move || {
            let th = s1.register_thread();
            rt1.atomically(&th, |tx| {
                let v = c1.get(tx)?;
                if v == 0 {
                    return condsync::await_one(tx, c1.addr());
                }
                Ok(v)
            })
        });

        // WaitPred waiter (wants count >= 2).
        fn ge2(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
            Ok(tx.read(tm_core::Addr(args[0] as usize))? >= 2)
        }
        let c2 = count.clone();
        let rt2 = Arc::clone(&rt);
        let s2 = Arc::clone(&system);
        let predwaiter = std::thread::spawn(move || {
            let th = s2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = c2.get(tx)?;
                if v < 2 {
                    return condsync::wait_pred(tx, ge2, &[c2.addr().0 as u64]);
                }
                Ok(v)
            })
        });

        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| count.set(tx, 1));
        let first = awaiter.join().unwrap();
        assert!(first >= 1);
        rt.atomically(&th, |tx| count.set(tx, 2));
        assert_eq!(predwaiter.join().unwrap(), 2);
    }

    #[test]
    fn retry_orig_on_lazy_stm() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry_orig(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 2));
        assert_eq!(waiter.join().unwrap(), 2);
    }
}
