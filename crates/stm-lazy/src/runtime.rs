//! The lazy-STM runtime: a thin [`TxEngine`] over [`LazyTx`].
//!
//! The engine hooks are identical in shape to the eager runtime's; every
//! behavioural difference between the two STMs lives inside
//! [`crate::tx::LazyTx`].  The driver loop itself is shared
//! ([`tm_core::driver::run`]).

use std::sync::Arc;

use condsync::OrigRegistry;
use tm_core::driver::{self, CommitOutcome, TxEngine};
use tm_core::{
    ThreadCtx, TmRt, TmRuntime, TmSystem, Tx, TxCommon, TxCtl, TxKind, TxResult, WaitCondition,
    WaitSpec, WakeSet,
};

use crate::tx::LazyTx;

/// The lazy (redo-log) software TM runtime.
#[derive(Debug)]
pub struct LazyStm {
    system: Arc<TmSystem>,
    /// Waiting list for the `Retry-Orig` baseline (Algorithm 1).
    orig: OrigRegistry,
}

impl LazyStm {
    /// Creates a runtime over `system`.
    pub fn new(system: Arc<TmSystem>) -> Arc<Self> {
        Arc::new(LazyStm {
            system,
            orig: OrigRegistry::new(),
        })
    }

    /// The `Retry-Orig` waiting list (exposed for tests).
    pub fn orig_registry(&self) -> &OrigRegistry {
        &self.orig
    }
}

impl TxEngine for LazyStm {
    type Tx<'eng> = LazyTx;

    fn begin(&self, common: TxCommon) -> LazyTx {
        LazyTx::begin(&self.system, common)
    }

    fn try_commit(&self, tx: &mut LazyTx) -> Result<CommitOutcome, TxCtl> {
        tx.try_commit()
    }

    fn rollback(&self, tx: &mut LazyTx) {
        tx.rollback();
    }

    fn materialise_wait(&self, tx: &mut LazyTx, spec: WaitSpec) -> Result<WaitCondition, TxCtl> {
        tx.rollback_for_deschedule(spec)
    }

    fn supports_orig_retry(&self) -> bool {
        true
    }

    fn committed_stripes(&self, outcome: &CommitOutcome) -> WakeSet {
        if outcome.serial {
            // Serial commits write directly with no metadata at all;
            // conservatively wake every shard.
            return WakeSet::All;
        }
        // Commit-time lock acquisition covered every redo-log address with
        // one of these ownership records, so they are a complete stripe
        // cover of the write set.
        WakeSet::Stripes(outcome.written_orecs.clone())
    }

    fn deschedule_orig(&self, thread: &Arc<ThreadCtx>, tx: &mut LazyTx) {
        let read_orecs = tx.read_orec_indices();
        let start = tx.start();
        tx.rollback();
        condsync::sleep_until_intersection(&self.orig, thread, read_orecs.clone(), || {
            tm_core::access::cover_valid_at(&self.system.orecs, &read_orecs, start)
        });
    }

    fn after_writer_commit(&self, thread: &Arc<ThreadCtx>, outcome: &CommitOutcome) {
        if !self.orig.is_empty() {
            if outcome.serial {
                // A serial commit has no lock set to intersect: any
                // Retry-Orig sleeper's reads may have changed.
                self.orig.wake_all(thread);
            } else {
                self.orig.wake_matching(thread, &outcome.written_orecs);
            }
        }
    }
}

impl TmRuntime for LazyStm {
    fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    fn name(&self) -> &'static str {
        "lazy-stm"
    }

    fn exec_u64(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
    ) -> u64 {
        driver::run(self, thread, body)
    }

    fn exec_bool(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<bool>,
    ) -> bool {
        driver::run(self, thread, body)
    }
}

impl TmRt for LazyStm {
    fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        driver::run(self, thread, body)
    }

    fn atomically_read<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        driver::run_kind(self, thread, TxKind::ReadOnly, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{TmConfig, TmVar};

    fn runtime() -> (Arc<TmSystem>, Arc<LazyStm>) {
        let system = TmSystem::new(TmConfig::small());
        let rt = LazyStm::new(Arc::clone(&system));
        (system, rt)
    }

    #[test]
    fn simple_transaction_commits() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 3);
        let doubled = rt.atomically(&th, |tx| {
            let x = v.get(tx)?;
            v.set(tx, x * 2)?;
            Ok(x * 2)
        });
        assert_eq!(doubled, 6);
        assert_eq!(v.load_direct(&system), 6);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let (system, rt) = runtime();
        let counter = TmVar::<u64>::alloc(&system, 0);
        let threads = 4;
        let per_thread = 500;
        let mut handles = Vec::new();
        for _ in 0..threads {
            let rt = Arc::clone(&rt);
            let system = Arc::clone(&system);
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                let th = system.register_thread();
                for _ in 0..per_thread {
                    rt.atomically(&th, |tx| {
                        let x = counter.get(tx)?;
                        counter.set(tx, x + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load_direct(&system), threads * per_thread);
    }

    #[test]
    fn retry_sleeps_until_value_changes() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 7));
        assert_eq!(waiter.join().unwrap(), 7);
    }

    #[test]
    fn await_and_waitpred_wake_correctly() {
        let (system, rt) = runtime();
        let count = TmVar::<u64>::alloc(&system, 0);

        // Await waiter.
        let c1 = count.clone();
        let rt1 = Arc::clone(&rt);
        let s1 = Arc::clone(&system);
        let awaiter = std::thread::spawn(move || {
            let th = s1.register_thread();
            rt1.atomically(&th, |tx| {
                let v = c1.get(tx)?;
                if v == 0 {
                    return condsync::await_one(tx, c1.addr());
                }
                Ok(v)
            })
        });

        // WaitPred waiter (wants count >= 2).
        fn ge2(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
            Ok(tx.read(tm_core::Addr(args[0] as usize))? >= 2)
        }
        let c2 = count.clone();
        let rt2 = Arc::clone(&rt);
        let s2 = Arc::clone(&system);
        let predwaiter = std::thread::spawn(move || {
            let th = s2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = c2.get(tx)?;
                if v < 2 {
                    return condsync::wait_pred(tx, ge2, &[c2.addr().0 as u64]);
                }
                Ok(v)
            })
        });

        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| count.set(tx, 1));
        let first = awaiter.join().unwrap();
        assert!(first >= 1);
        rt.atomically(&th, |tx| count.set(tx, 2));
        assert_eq!(predwaiter.join().unwrap(), 2);
    }

    #[test]
    fn retry_orig_on_lazy_stm() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry_orig(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 2));
        assert_eq!(waiter.join().unwrap(), 2);
    }
}
