//! The per-attempt transaction descriptor for the lazy (TL2-style) STM.

use std::sync::Arc;

use tm_core::access::{cover_valid_at, IndexSet, ReadSet, WriteEntry, WriteLog};
use tm_core::driver::CommitOutcome;
use tm_core::serial::{subscribe_begin, SerialAttempt};
use tm_core::stats::TxStats;
use tm_core::{
    AbortReason, Addr, OrecValue, SnapshotMode, ThreadId, TmSystem, Tx, TxCommon, TxCtl, TxKind,
    TxMode, TxResult, WaitCondition, WaitSpec,
};

/// Hook a hybrid runtime installs around the redo-log write-back so that
/// software commits and (simulated) hardware commits exclude each other.
///
/// [`CommitInterlock::commit_section`] must (1) take whatever barrier also
/// serialises hardware commits, (2) run `validate` (the read-set check —
/// before any hardware state is disturbed, so a doomed validation costs
/// nobody else anything), and if it passes (3) claim/doom the hardware
/// state covering `write_entries` so no speculative reader can observe a
/// partial write-back, (4) run `writeback` (the write-back and lock
/// release), and (5) release its claims.  The plain lazy runtime installs
/// no interlock and runs the two phases back to back.
pub trait CommitInterlock: Send + Sync + std::fmt::Debug {
    /// Runs a commit's validate and write-back + unlock phases under mutual
    /// exclusion with hardware commits.  `writer` is the committing thread,
    /// `write_entries` the redo-log entries about to be written back
    /// (borrowed straight from the log — the commit path allocates
    /// nothing); returns `validate`'s verdict (false = validation failed,
    /// nothing written, no hardware transaction disturbed).
    fn commit_section(
        &self,
        writer: ThreadId,
        write_entries: &[WriteEntry],
        validate: &mut dyn FnMut() -> bool,
        writeback: &mut dyn FnMut(),
    ) -> bool;
}

/// An in-flight lazy-STM transaction attempt.
///
/// The read set and redo log are pooled access-set containers
/// (`tm_core::access`): read-after-write lookups are O(1) instead of a
/// reverse scan over the redo log, the write set's orec cover is kept
/// sorted incrementally for commit-time lock acquisition, and re-executed
/// attempts recycle capacity through the thread's `LogPool`.
#[derive(Debug)]
pub struct LazyTx {
    common: TxCommon,
    system: Arc<TmSystem>,
    start: u64,
    /// Validated reads with their orec stripes cached at read time.
    reads: ReadSet,
    /// Redo log: pending writes, one entry per address (last value wins).
    redo: WriteLog,
    mallocs: Vec<(Addr, usize)>,
    frees: Vec<(Addr, usize)>,
    /// `Some` when this attempt runs serially behind the system's
    /// [`tm_core::SerialGate`] ([`TxMode::Serial`]): all accesses go
    /// straight to the shared serial attempt, the instrumented logs stay
    /// empty.
    serial: Option<SerialAttempt>,
    /// Hybrid-runtime hook serialising the commit write-back against
    /// hardware commits; `None` for the plain lazy runtime.
    interlock: Option<Arc<dyn CommitInterlock>>,
    /// True when this attempt runs on the snapshot read path: a declared
    /// read-only transaction in plain [`TxMode::Software`] mode with
    /// [`SnapshotMode`] enabled.  Reads validate against `start` only, no
    /// read set is kept, writes abort with
    /// [`AbortReason::ReadOnlyWrite`], and the commit is free.
    snapshot: bool,
    /// Whether the snapshot attempt has completed at least one read
    /// (gates the [`SnapshotMode::On`] first-read refresh).
    snap_observed: bool,
    /// The distinct orec stripes read so far, kept only under
    /// [`SnapshotMode::Extend`] so a too-new version can be survived by
    /// re-checking that no covered stripe moved past `start`.
    snap_cover: IndexSet,
}

impl LazyTx {
    /// Begins a new attempt (no hybrid interlock).
    pub fn begin(system: &Arc<TmSystem>, common: TxCommon) -> Self {
        Self::begin_with(system, common, None)
    }

    /// Begins a new attempt, optionally installing a hybrid-runtime commit
    /// interlock.  Serial-mode attempts acquire the system's serial gate;
    /// instrumented attempts publish their start time through the gate's
    /// subscription protocol so a serial acquirer can quiesce them.
    pub fn begin_with(
        system: &Arc<TmSystem>,
        common: TxCommon,
        interlock: Option<Arc<dyn CommitInterlock>>,
    ) -> Self {
        let (serial, start) = if common.mode == TxMode::Serial {
            (
                Some(SerialAttempt::begin(system, &common.thread)),
                system.clock.now(),
            )
        } else {
            (None, subscribe_begin(system, &common.thread))
        };
        let snapshot = common.kind == TxKind::ReadOnly
            && common.mode == TxMode::Software
            && system.config.snapshot.is_enabled();
        // Snapshot attempts keep no logs at all; skip the pool round trip
        // (zero-capacity containers are dropped, not pooled, on `put`).
        let (reads, redo) = if snapshot {
            (ReadSet::new(), WriteLog::new())
        } else {
            (
                common.thread.take_read_set(),
                common.thread.take_write_log(),
            )
        };
        let snap_cover = if snapshot && system.config.snapshot == SnapshotMode::Extend {
            common.thread.take_index_set()
        } else {
            IndexSet::new()
        };
        LazyTx {
            common,
            system: Arc::clone(system),
            start,
            reads,
            redo,
            mallocs: Vec::new(),
            frees: Vec::new(),
            serial,
            interlock,
            snapshot,
            snap_observed: false,
            snap_cover,
        }
    }

    /// The clock value sampled at begin.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Ownership-record indices covering the read set (for `Retry-Orig`),
    /// sorted and deduplicated — the read set's own stripe cover, not
    /// recomputed from the address list.
    pub fn read_orec_indices(&mut self) -> Vec<usize> {
        self.reads.orec_cover().to_vec()
    }

    fn me(&self) -> usize {
        self.common.thread.id
    }

    /// Validated read of the *in-memory* value (ignoring the redo log),
    /// returning the value together with the address's orec stripe so
    /// callers can cache it instead of hashing again.
    fn read_memory(&self, addr: Addr) -> TxResult<(u64, usize)> {
        let idx = self.system.orecs.index_for(addr);
        let before = self.system.orecs.load(idx);
        let val = self.system.heap.load(addr);
        let after = self.system.orecs.load(idx);
        if before == after && !before.is_locked() {
            if before.version() <= self.start {
                return Ok((val, idx));
            }
            // Too new: fold the version into the clock so the retry begins
            // current even before the committer publishes its epoch (lazy
            // clock plane; no-op under GV1).
            self.system
                .clock
                .note_stale(before.version(), &self.common.thread.stats);
        }
        Err(TxCtl::Abort(AbortReason::ReadConflict))
    }

    /// One snapshot-path read: lock–value–lock against `start` only.  No
    /// read set, no value logging; a too-new version first tries a snapshot
    /// refresh ([`LazyTx::try_snapshot_refresh`]) before aborting.
    fn snapshot_read(&mut self, addr: Addr) -> TxResult<u64> {
        let idx = self.system.orecs.index_for(addr);
        loop {
            let before = self.system.orecs.load(idx);
            let val = self.system.heap.load(addr);
            let after = self.system.orecs.load(idx);
            if before == after && !before.is_locked() {
                if before.version() <= self.start {
                    self.snap_observed = true;
                    if self.system.config.snapshot == SnapshotMode::Extend {
                        self.snap_cover.insert(idx);
                    }
                    return Ok(val);
                }
                self.system
                    .clock
                    .note_stale(before.version(), &self.common.thread.stats);
                if self.try_snapshot_refresh() {
                    continue;
                }
            }
            return Err(TxCtl::Abort(AbortReason::ReadConflict));
        }
    }

    /// Attempts to advance the begin snapshot past a too-new version.
    ///
    /// Under [`SnapshotMode::On`] this is sound only before the first
    /// successful read (nothing has been observed, so any snapshot is still
    /// admissible).  Under [`SnapshotMode::Extend`] the accumulated stripe
    /// cover is re-checked at the *old* snapshot: if no covered stripe is
    /// locked or newer than `start`, no covered location changed between the
    /// old snapshot and now, so every prior read is also valid at the new
    /// one.  The new start is re-published through the serial-gate
    /// subscription handshake, exactly like a fresh begin.
    fn try_snapshot_refresh(&mut self) -> bool {
        let extendable = match self.system.config.snapshot {
            SnapshotMode::Extend => true,
            SnapshotMode::On => !self.snap_observed,
            SnapshotMode::Off => false,
        };
        if !extendable {
            return false;
        }
        self.common.thread.exit_tx();
        let new_start = subscribe_begin(&self.system, &self.common.thread);
        // Re-validate *after* the new snapshot is published: anything the
        // check admits was unchanged up to a point at or after `new_start`.
        if self.system.config.snapshot == SnapshotMode::Extend
            && !cover_valid_at(&self.system.orecs, self.snap_cover.as_slice(), self.start)
        {
            // A covered stripe moved; the attempt is doomed.  Keep the newly
            // published start — the caller aborts and the rollback exits.
            self.start = new_start;
            return false;
        }
        self.start = new_start;
        TxStats::bump(&self.common.thread.stats.snapshot_refreshes);
        true
    }

    fn reset_logs(&mut self) {
        let stats = &self.common.thread.stats;
        TxStats::record_max(&stats.read_set_max, self.reads.len() as u64);
        TxStats::record_max(&stats.write_set_max, self.redo.len() as u64);
        self.reads.clear();
        self.redo.clear();
        self.snap_cover.clear();
        self.snap_observed = false;
        self.mallocs.clear();
        self.frees.clear();
    }

    /// Discards the attempt (nothing was written in place; serial attempts
    /// undo their direct writes).  Safe to call more than once.
    pub fn rollback(&mut self) {
        if let Some(serial) = &mut self.serial {
            serial.rollback();
            return;
        }
        for &(addr, words) in &self.mallocs {
            self.system
                .heap
                .dealloc_for(&self.common.thread, addr, words);
        }
        self.reset_logs();
        self.common.thread.exit_tx();
    }

    /// Attempts to commit.  On failure the caller must invoke
    /// [`LazyTx::rollback`].
    pub fn try_commit(&mut self) -> Result<CommitOutcome, TxCtl> {
        if let Some(serial) = &mut self.serial {
            return Ok(serial.commit());
        }
        if self.redo.is_empty() {
            if self.snapshot {
                // The snapshot commit did zero read-set pushes and performs
                // zero commit-time orec loads.
                TxStats::bump(&self.common.thread.stats.ro_fast_commits);
            }
            for &(addr, words) in &self.frees {
                self.system
                    .heap
                    .dealloc_for(&self.common.thread, addr, words);
            }
            self.reset_logs();
            self.common.thread.exit_tx();
            return Ok(CommitOutcome::read_only());
        }

        // Acquire the ownership records covering the write set.  The cover
        // is the redo log's own sorted distinct-stripe list (borrowed, not
        // copied — the abort path stays allocation-free), so on failure at
        // position `k` the locks we hold are exactly the prefix `cover[..k]`
        // (this attempt holds no locks before commit).
        let me = self.me();
        let start = self.start;
        let system = &self.system;
        let interlock = self.interlock.as_ref();
        let (entries, write_orecs) = self.redo.entries_with_cover();
        let release_prefix = |n: usize| {
            for &a in &write_orecs[..n] {
                let c = system.orecs.load(a);
                system.orecs.store(a, OrecValue::unlocked(c.version()));
            }
        };
        let stats = &self.common.thread.stats;
        for (k, &idx) in write_orecs.iter().enumerate() {
            let cur = system.orecs.load(idx);
            let ok = if cur.is_locked() {
                cur.is_locked_by(me)
            } else if cur.version() <= start {
                system
                    .orecs
                    .cas(idx, cur, OrecValue::locked(cur.version(), me))
            } else {
                system.clock.note_stale(cur.version(), stats);
                false
            };
            if !ok {
                release_prefix(k);
                return Err(TxCtl::Abort(AbortReason::WriteConflict));
            }
        }

        // Stamped after the whole cover is held, which is what makes a
        // non-unique (lazy) stamp sound: any reader that began before this
        // point sees our locks, any later reader sees `end > rv`.
        let stamp = system.clock.commit_stamp(stats);
        let end = stamp.ts;
        // The nothing-committed-since-start fast path needs a *unique*
        // stamp (GV1): a lazy stamp may be shared with a concurrent
        // committer.  With a hybrid interlock installed, hardware commits
        // publish to the orecs under their own clock ticks, so the fast
        // path is no longer a proof of validity either: validate always.
        // Validation and write-back then run inside the interlock's
        // `commit_section`, mutually exclusive with hardware commits — a
        // hardware commit serialises entirely before (its orec releases fail
        // our validation) or entirely after (it observes our locked orecs /
        // doomed lines) this section.
        let must_validate = !stamp.unique || end != start + 1 || interlock.is_some();
        let reads = &self.reads;
        let mut validate = || -> bool {
            if must_validate {
                for e in reads.iter() {
                    // The stripe index was cached when the read was
                    // validated, so validation does not hash the address a
                    // second time.
                    let o = system.orecs.load(e.stripe);
                    let ok = if o.is_locked() {
                        o.is_locked_by(me)
                    } else if o.version() <= start {
                        true
                    } else {
                        system.clock.note_stale(o.version(), stats);
                        false
                    };
                    if !ok {
                        return false;
                    }
                }
            }
            true
        };
        // Write back the redo log (one entry per address already holding
        // the latest value) and release locks at the commit timestamp.
        let mut writeback = || {
            for e in entries {
                system.heap.store(e.addr, e.val);
            }
            for &idx in write_orecs {
                system.orecs.store(idx, OrecValue::unlocked(end));
            }
        };
        let committed = match interlock {
            Some(interlock) => interlock.commit_section(me, entries, &mut validate, &mut writeback),
            None => {
                let ok = validate();
                if ok {
                    writeback();
                }
                ok
            }
        };
        if !committed {
            release_prefix(write_orecs.len());
            return Err(TxCtl::Abort(AbortReason::CommitValidation));
        }

        // Success path only: copy the cover out for the outcome.
        let write_orecs = write_orecs.to_vec();
        for &(addr, words) in &self.frees {
            self.system
                .heap
                .dealloc_for(&self.common.thread, addr, words);
        }
        self.reset_logs();
        // Publish the commit epoch only now that the write-back is visible
        // and every lock is released; later begins start at or above `end`,
        // which also bounds the quiescence wait below.
        self.common.thread.publish_epoch(end);
        self.common.thread.exit_tx();
        self.system.quiesce(&self.common.thread, end);
        Ok(CommitOutcome::software_writer(write_orecs, end))
    }

    /// Rolls back and materialises the wait condition for a deschedule
    /// request.
    pub fn rollback_for_deschedule(&mut self, spec: WaitSpec) -> Result<WaitCondition, TxCtl> {
        if let Some(serial) = &mut self.serial {
            return serial.rollback_for_deschedule(spec, &mut self.common);
        }
        match spec {
            WaitSpec::ReadSetValues => {
                let pairs = self.common.waitset.drain_pairs();
                self.rollback();
                Ok(WaitCondition::ValuesChanged(pairs))
            }
            WaitSpec::Addrs(addrs) => {
                // Memory was never modified, so the pre-transaction values
                // are simply the current contents — but each read must still
                // be consistent with our start time.
                let mut pairs = Vec::with_capacity(addrs.len());
                let mut consistent = true;
                for addr in addrs {
                    match self.read_memory(addr) {
                        Ok((v, _)) => pairs.push((addr, v)),
                        Err(_) => {
                            consistent = false;
                            break;
                        }
                    }
                }
                self.rollback();
                if consistent {
                    Ok(WaitCondition::ValuesChanged(pairs))
                } else {
                    Err(TxCtl::Abort(AbortReason::ReadConflict))
                }
            }
            WaitSpec::Pred { f, args } => {
                self.rollback();
                Ok(WaitCondition::Pred { f, args })
            }
            WaitSpec::OrigReadLocks => {
                self.rollback();
                Err(TxCtl::Abort(AbortReason::ReadConflict))
            }
        }
    }
}

impl Drop for LazyTx {
    fn drop(&mut self) {
        // Recycle the attempt's access sets so the next attempt (or the
        // thread's next transaction) reuses their capacity.
        let thread = Arc::clone(&self.common.thread);
        thread.put_read_set(std::mem::take(&mut self.reads));
        thread.put_write_log(std::mem::take(&mut self.redo));
        // The Extend-mode stripe cover is an index set, not a read set: it
        // must not feed the `read_set_max` high-water mark (snapshot commits
        // keep no read set by construction).
        thread
            .pool
            .put_index_set(std::mem::take(&mut self.snap_cover));
    }
}

impl Tx for LazyTx {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        // Serial attempts read directly: the gate holder runs alone.  Their
        // reads are never value-logged — a serial `Retry` relogs in
        // SoftwareRetry mode (see the driver's ReadSetValues dispatch).
        if let Some(serial) = &self.serial {
            return Ok(serial.read(addr));
        }
        if self.snapshot {
            return self.snapshot_read(addr);
        }
        // Read-your-writes: the redo log takes precedence (O(1) hash-index
        // lookup; the old implementation scanned the log backwards).
        if let Some(v) = self.redo.lookup(addr) {
            if self.common.mode == TxMode::SoftwareRetry {
                // The Retry value log must hold the value that will be in
                // memory after the (lazy) transaction is discarded, i.e. the
                // committed value, not our own pending write.
                let (mem, _) = self.read_memory(addr)?;
                self.common.log_retry_read(addr, mem);
            }
            return Ok(v);
        }
        let (val, idx) = self.read_memory(addr)?;
        // The stripe computed by the validated read is cached in the entry,
        // so commit-time re-validation never hashes the address again.
        self.reads.record(addr, idx);
        if self.common.mode == TxMode::SoftwareRetry {
            self.common.log_retry_read(addr, val);
        }
        Ok(val)
    }

    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        if let Some(serial) = &mut self.serial {
            serial.write(addr, val);
            return Ok(());
        }
        if self.snapshot {
            // Discovered-read-only speculation failed: the driver upgrades
            // the transaction to a full update attempt and restarts it.
            return Err(TxCtl::Abort(AbortReason::ReadOnlyWrite));
        }
        // One redo entry per address (last value wins); the orec stripe is
        // hashed once, on the first write.
        let orecs = &self.system.orecs;
        self.redo.record(addr, val, || orecs.index_for(addr));
        Ok(())
    }

    fn read_for_write(&mut self, addr: Addr) -> TxResult<u64> {
        // Lazy STM has no encounter-time locking; a read-for-write is just a
        // read (the address still enters the read set, unlike the eager
        // runtime).
        self.read(addr)
    }

    fn alloc(&mut self, words: usize) -> TxResult<Addr> {
        if let Some(serial) = &mut self.serial {
            return serial
                .alloc(words)
                .ok_or(TxCtl::Abort(AbortReason::OutOfMemory));
        }
        if self.snapshot {
            return Err(TxCtl::Abort(AbortReason::ReadOnlyWrite));
        }
        match self.system.heap.alloc_for(&self.common.thread, words) {
            Some(addr) => {
                self.mallocs.push((addr, words));
                Ok(addr)
            }
            None => Err(TxCtl::Abort(AbortReason::OutOfMemory)),
        }
    }

    fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
        if let Some(serial) = &mut self.serial {
            serial.free(addr, words);
            return Ok(());
        }
        if self.snapshot {
            return Err(TxCtl::Abort(AbortReason::ReadOnlyWrite));
        }
        self.frees.push((addr, words));
        Ok(())
    }

    fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
        if self.serial.is_some() {
            let outcome = self.try_commit()?;
            // Same accounting rule as the non-serial branch below — only
            // writer segments count — plus the serial_commits ⊆ sw_commits
            // invariant the stats docs establish.
            if outcome.was_writer {
                TxStats::bump(&self.common.thread.stats.sw_commits);
                TxStats::bump(&self.common.thread.stats.serial_commits);
            }
            block();
            // Continue in the same (serial) flavour: re-acquire the gate.
            self.serial = Some(SerialAttempt::begin(&self.system, &self.common.thread));
            self.start = self.system.clock.now();
            return Ok(());
        }
        match self.try_commit() {
            Ok(info) => {
                if info.was_writer {
                    TxStats::bump(&self.common.thread.stats.sw_commits);
                }
                block();
                self.start = subscribe_begin(&self.system, &self.common.thread);
                Ok(())
            }
            Err(ctl) => Err(ctl),
        }
    }

    fn explicit_abort(&mut self, code: u8) -> TxCtl {
        TxCtl::Abort(AbortReason::Explicit(code))
    }

    fn common(&self) -> &TxCommon {
        &self.common
    }

    fn common_mut(&mut self) -> &mut TxCommon {
        &mut self.common
    }

    fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::TmConfig;

    fn fresh_tx(system: &Arc<TmSystem>) -> LazyTx {
        let th = system.register_thread();
        LazyTx::begin(system, TxCommon::new(th, TxMode::Software, 0))
    }

    #[test]
    fn writes_are_buffered_until_commit() {
        let system = TmSystem::new(TmConfig::small());
        let mut tx = fresh_tx(&system);
        tx.write(Addr(5), 42).unwrap();
        assert_eq!(
            system.heap.load(Addr(5)),
            0,
            "lazy STM must not write in place"
        );
        assert_eq!(tx.read(Addr(5)).unwrap(), 42, "read-your-writes");
        tx.try_commit().unwrap();
        assert_eq!(system.heap.load(Addr(5)), 42);
    }

    #[test]
    fn last_write_to_an_address_wins() {
        let system = TmSystem::new(TmConfig::small());
        let mut tx = fresh_tx(&system);
        tx.write(Addr(3), 1).unwrap();
        tx.write(Addr(3), 2).unwrap();
        tx.write(Addr(3), 3).unwrap();
        assert_eq!(tx.read(Addr(3)).unwrap(), 3);
        tx.try_commit().unwrap();
        assert_eq!(system.heap.load(Addr(3)), 3);
    }

    #[test]
    fn rollback_discards_buffered_writes() {
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(8), 9);
        let mut tx = fresh_tx(&system);
        tx.write(Addr(8), 100).unwrap();
        tx.rollback();
        assert_eq!(system.heap.load(Addr(8)), 9);
    }

    #[test]
    fn commit_validation_detects_stale_reads() {
        // Single-threaded test driving two handles: disable quiescence so the
        // committing handle does not wait for the in-flight one.
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let mut tx1 = fresh_tx(&system);
        assert_eq!(tx1.read(Addr(6)).unwrap(), 0);
        let mut tx2 = fresh_tx(&system);
        tx2.write(Addr(6), 5).unwrap();
        tx2.try_commit().unwrap();
        tx1.write(Addr(7), 1).unwrap();
        assert!(matches!(
            tx1.try_commit(),
            Err(TxCtl::Abort(AbortReason::CommitValidation))
        ));
        tx1.rollback();
        assert_eq!(system.heap.load(Addr(7)), 0);
    }

    #[test]
    fn write_write_conflict_detected_at_commit() {
        // Single-threaded test driving two handles: disable quiescence so the
        // committing handle does not wait for the in-flight one.
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let mut tx1 = fresh_tx(&system);
        let mut tx2 = fresh_tx(&system);
        tx1.write(Addr(4), 1).unwrap();
        tx2.write(Addr(4), 2).unwrap();
        tx1.try_commit().unwrap();
        // tx2 started before tx1's commit, so its lock acquisition sees a
        // version newer than its start and must abort.
        assert!(tx2.try_commit().is_err());
        tx2.rollback();
        assert_eq!(system.heap.load(Addr(4)), 1);
    }

    #[test]
    fn failed_lock_acquisition_releases_partial_locks() {
        // Single-threaded test driving two handles: disable quiescence so the
        // committing handle does not wait for the in-flight one.
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let mut tx1 = fresh_tx(&system);
        let mut tx2 = fresh_tx(&system);
        // tx1 will hold the orec for addr 10 by being mid-commit is hard to
        // arrange directly; instead let tx1 commit a write to addr 10 so its
        // version is newer than tx2's start, forcing tx2's multi-location
        // commit to fail and release the lock it already took on addr 200.
        tx2.write(Addr(200), 1).unwrap();
        tx2.write(Addr(10), 2).unwrap();
        tx1.write(Addr(10), 7).unwrap();
        tx1.try_commit().unwrap();
        assert!(tx2.try_commit().is_err());
        tx2.rollback();
        let idx200 = system.orecs.index_for(Addr(200));
        let idx10 = system.orecs.index_for(Addr(10));
        assert!(!system.orecs.load(idx200).is_locked());
        assert!(!system.orecs.load(idx10).is_locked());
    }

    #[test]
    fn retry_log_records_committed_values_not_pending_writes() {
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(12), 50);
        let th = system.register_thread();
        let mut tx = LazyTx::begin(&system, TxCommon::new(th, TxMode::SoftwareRetry, 1));
        assert_eq!(tx.read(Addr(12)).unwrap(), 50);
        tx.write(Addr(12), 99).unwrap();
        assert_eq!(tx.read(Addr(12)).unwrap(), 99);
        assert_eq!(tx.common().waitset.pairs(), vec![(Addr(12), 50)]);
        tx.rollback();
    }

    #[test]
    fn reexecuted_attempts_reuse_pooled_logs() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let mut tx = LazyTx::begin(&system, TxCommon::new(Arc::clone(&th), TxMode::Software, 0));
        let _ = tx.read(Addr(1)).unwrap();
        tx.write(Addr(2), 2).unwrap();
        tx.rollback();
        drop(tx);
        let before = th.stats.snapshot().log_pool_reuses;
        let mut tx = LazyTx::begin(&system, TxCommon::new(Arc::clone(&th), TxMode::Software, 1));
        assert!(
            th.stats.snapshot().log_pool_reuses >= before + 2,
            "the second attempt must recycle the first attempt's containers"
        );
        tx.rollback();
    }

    #[test]
    fn await_snapshot_is_current_memory() {
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(20), 5);
        let mut tx = fresh_tx(&system);
        assert_eq!(tx.read(Addr(20)).unwrap(), 5);
        tx.write(Addr(20), 6).unwrap();
        let cond = tx
            .rollback_for_deschedule(WaitSpec::Addrs(vec![Addr(20)]))
            .unwrap();
        match cond {
            WaitCondition::ValuesChanged(pairs) => assert_eq!(pairs, vec![(Addr(20), 5)]),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(system.heap.load(Addr(20)), 5);
    }

    #[test]
    fn alloc_rolls_back_and_free_defers() {
        let system = TmSystem::new(TmConfig::small());
        let base = system.heap.allocated_words();
        let mut tx = fresh_tx(&system);
        tx.alloc(8).unwrap();
        tx.rollback();
        assert_eq!(system.heap.allocated_words(), base);

        let a = system.heap.alloc(4).unwrap();
        let mut tx = fresh_tx(&system);
        tx.free(a, 4).unwrap();
        tx.write(Addr(1), 1).unwrap();
        tx.try_commit().unwrap();
        assert_eq!(system.heap.allocated_words(), base);
    }

    fn begin_snapshot(system: &Arc<TmSystem>) -> LazyTx {
        let th = system.register_thread();
        LazyTx::begin(
            system,
            TxCommon::new(th, TxMode::Software, 0).with_kind(TxKind::ReadOnly),
        )
    }

    #[test]
    fn snapshot_read_keeps_no_read_set_and_commits_free() {
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(3), 7);
        system.heap.store(Addr(4), 8);
        let mut tx = begin_snapshot(&system);
        assert!(tx.snapshot, "small config enables snapshots");
        assert_eq!(tx.read(Addr(3)).unwrap(), 7);
        assert_eq!(tx.read(Addr(4)).unwrap(), 8);
        assert!(tx.reads.is_empty(), "snapshot reads record nothing");
        let th = Arc::clone(&tx.common.thread);
        let info = tx.try_commit().unwrap();
        assert!(!info.was_writer);
        drop(tx);
        let snap = th.stats.snapshot();
        assert_eq!(snap.ro_fast_commits, 1);
        assert_eq!(snap.read_set_max, 0, "no read set ever pooled back");
    }

    #[test]
    fn snapshot_write_aborts_with_read_only_write() {
        let system = TmSystem::new(TmConfig::small());
        let mut tx = begin_snapshot(&system);
        assert!(matches!(
            tx.write(Addr(1), 9),
            Err(TxCtl::Abort(AbortReason::ReadOnlyWrite))
        ));
        // Lazy read-for-write is just a read — still legal on the snapshot
        // path (the upgrade happens at the first actual write).
        assert_eq!(tx.read_for_write(Addr(1)).unwrap(), 0);
        assert!(matches!(
            tx.alloc(4),
            Err(TxCtl::Abort(AbortReason::ReadOnlyWrite))
        ));
        assert!(matches!(
            tx.free(Addr(1), 1),
            Err(TxCtl::Abort(AbortReason::ReadOnlyWrite))
        ));
        tx.rollback();
    }

    #[test]
    fn snapshot_refreshes_at_first_read_instead_of_aborting() {
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let mut tx = begin_snapshot(&system);
        // A foreign commit moves Addr(6) past the snapshot's start.
        let mut w = fresh_tx(&system);
        w.write(Addr(6), 9).unwrap();
        w.try_commit().unwrap();
        // First read: too new, but nothing observed yet — refresh, not abort.
        assert_eq!(tx.read(Addr(6)).unwrap(), 9);
        let th = Arc::clone(&tx.common.thread);
        tx.try_commit().unwrap();
        assert_eq!(th.stats.snapshot().snapshot_refreshes, 1);
    }

    #[test]
    fn snapshot_on_aborts_on_too_new_after_first_read() {
        let system = TmSystem::new(TmConfig::small().without_quiescence());
        let mut tx = begin_snapshot(&system);
        assert_eq!(tx.read(Addr(5)).unwrap(), 0, "pin the snapshot");
        let mut w = fresh_tx(&system);
        w.write(Addr(6), 9).unwrap();
        w.try_commit().unwrap();
        assert!(matches!(
            tx.read(Addr(6)),
            Err(TxCtl::Abort(AbortReason::ReadConflict))
        ));
        tx.rollback();
    }

    #[test]
    fn snapshot_extend_advances_past_disjoint_commits() {
        let system = TmSystem::new(
            TmConfig::small()
                .without_quiescence()
                .with_snapshot(SnapshotMode::Extend),
        );
        system.heap.store(Addr(5), 1);
        // An address on a different orec stripe than Addr(5).
        let other = (6..300)
            .map(Addr)
            .find(|&a| system.orecs.index_for(a) != system.orecs.index_for(Addr(5)))
            .unwrap();
        let mut tx = begin_snapshot(&system);
        assert_eq!(tx.read(Addr(5)).unwrap(), 1, "pin the snapshot");
        // A commit to a *different* stripe moves the clock forward.
        let mut w = fresh_tx(&system);
        w.write(other, 9).unwrap();
        w.try_commit().unwrap();
        // The cover (only Addr(5)'s stripe) still holds at the old start, so
        // the snapshot extends instead of aborting.
        assert_eq!(tx.read(other).unwrap(), 9);
        let th = Arc::clone(&tx.common.thread);
        tx.try_commit().unwrap();
        let snap = th.stats.snapshot();
        assert_eq!(snap.snapshot_refreshes, 1);
        assert_eq!(snap.ro_fast_commits, 1);
        assert_eq!(snap.read_set_max, 0);
    }

    #[test]
    fn snapshot_extend_aborts_when_a_covered_stripe_moves() {
        let system = TmSystem::new(
            TmConfig::small()
                .without_quiescence()
                .with_snapshot(SnapshotMode::Extend),
        );
        let mut tx = begin_snapshot(&system);
        assert_eq!(tx.read(Addr(5)).unwrap(), 0);
        // A commit to the *same* address invalidates the cover; the next
        // too-new read cannot extend.
        let mut w = fresh_tx(&system);
        w.write(Addr(5), 9).unwrap();
        w.try_commit().unwrap();
        assert!(tx.read(Addr(5)).is_err());
        tx.rollback();
    }

    #[test]
    fn snapshot_off_disables_the_fast_path() {
        let system = TmSystem::new(TmConfig::small().with_snapshot(SnapshotMode::Off));
        let mut tx = begin_snapshot(&system);
        assert!(!tx.snapshot);
        assert_eq!(tx.read(Addr(3)).unwrap(), 0);
        assert_eq!(tx.reads.len(), 1, "falls back to the tracked read path");
        let th = Arc::clone(&tx.common.thread);
        tx.try_commit().unwrap();
        assert_eq!(th.stats.snapshot().ro_fast_commits, 0);
    }
}
