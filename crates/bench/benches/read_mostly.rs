//! `read_mostly` — snapshot-read throughput on a Zipfian read/write mix.
//!
//! The snapshot read path promises that a *declared* read-only transaction
//! (`atomically_read`) costs nothing beyond the reads themselves: no read
//! set is populated, no commit-time validation runs, and the commit is a
//! single statistics bump (`ro_fast_commits`) with zero clock traffic.
//! This bench drives that claim with the workload it targets: a skewed
//! (Zipfian) key space scanned by read transactions while a minority of
//! write transactions mutate hot keys underneath them.
//!
//! Each cell spawns two workers over a shared 256-key table; each worker
//! runs `iters` transactions, choosing per transaction between a read-only
//! scan (via `atomically_read`) and a writer increment (via `atomically`)
//! according to `read_pct`.  The sweep crosses read percentage
//! {100, 90, 50} x all four runtimes x snapshot {off, on} and records
//! throughput plus the snapshot-plane counters.  Headline assertions, run
//! on every invocation (smoke included):
//!
//! * every snapshot-enabled cell commits through the fast path
//!   (`ro_fast_commits > 0`);
//! * on the 100%-read snapshot-enabled STM cells the read-set pool
//!   high-water stays at **zero** (`read_set_max == 0`) — snapshot readers
//!   genuinely have no footprint;
//! * on the 90%-read sweep, snapshot-on throughput is at least snapshot-off
//!   throughput on both STMs (with a small slack factor under
//!   `TM_BENCH_SMOKE`, where single-repeat timing is noisy).
//!
//! Output: a plain-text table on stdout plus a JSON report (via
//! `tm_workloads::json`) written to `$TM_BENCH_JSON` (default
//! `BENCH_read_mostly.json`), matching the `thread_scaling` conventions so
//! CI can archive the trajectory.
//!
//! Environment:
//!
//! | variable            | meaning                                  | default |
//! |---------------------|------------------------------------------|---------|
//! | `TM_BENCH_SMOKE=1`  | tiny iteration counts + slack for CI     | off     |
//! | `TM_BENCH_ITERS`    | transactions per worker per cell         | `20000` |
//! | `TM_BENCH_REPEATS`  | runs per cell (fastest kept)             | `3` (smoke `1`) |
//! | `TM_BENCH_JSON`     | JSON report path                         | `BENCH_read_mostly.json` |

use std::sync::{Arc, Barrier};
use std::time::Instant;

use tm_core::{SnapshotMode, TmConfig, TmVar};
use tm_workloads::json::Value;
use tm_workloads::runtime::RuntimeKind;

/// Shared table size.  Large enough that the Zipfian tail spreads writers
/// across orec stripes, small enough that the head keys stay genuinely hot.
const KEYS: usize = 256;

/// Keys touched by one read-only scan.  Deliberately large: the snapshot
/// path's saving is per read (no read-set record, no retry-value log, and —
/// on the lazy runtime — no commit-time validation pass), so the scan must
/// be long enough for that saving to rise above scheduler noise on small
/// hosts.
const READS_PER_TX: usize = 32;

/// Zipfian skew exponent (`P(k) ~ 1/k^s`).  0.8 is the classic
/// read-mostly-cache shape: a hot head without starving the tail.
const ZIPF_S: f64 = 0.8;

const READ_PCTS: [u32; 3] = [100, 90, 50];
const SNAPSHOTS: [SnapshotMode; 2] = [SnapshotMode::Off, SnapshotMode::On];
const THREADS: usize = 2;

/// Cumulative Zipfian distribution over `KEYS` ranks, hand-rolled so the
/// bench needs no external crates.  `sample` maps a uniform u64 to a key.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(s);
            cdf.push(total);
        }
        for p in &mut cdf {
            *p /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, uniform: u64) -> usize {
        // Map the top 53 bits to [0, 1) and binary-search the CDF.
        let u = (uniform >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&p| p < u).min(self.cdf.len() - 1)
    }
}

/// xorshift64*: deterministic per-worker stream, no external RNG crate.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

struct Cell {
    runtime: RuntimeKind,
    snapshot: SnapshotMode,
    read_pct: u32,
    seconds: f64,
    commits: u64,
    aborts: u64,
    ro_fast_commits: u64,
    ro_upgrades: u64,
    snapshot_refreshes: u64,
    read_set_max: u64,
}

impl Cell {
    fn throughput(&self) -> f64 {
        self.commits as f64 / self.seconds
    }

    fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }
}

fn measure(kind: RuntimeKind, snapshot: SnapshotMode, read_pct: u32, iters: u64) -> Cell {
    let config = TmConfig::default()
        .with_heap_words(1 << 12)
        .with_snapshot(snapshot);
    let rt = kind.build(config);
    let system = Arc::clone(rt.system());
    let zipf = Zipf::new(KEYS, ZIPF_S);
    let table: Vec<TmVar<u64>> = (0..KEYS).map(|_| TmVar::alloc(&system, 0)).collect();
    let barrier = Barrier::new(THREADS + 1);
    let mut start = None;
    let mut writes_done = 0u64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|worker| {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let (zipf, table, barrier) = (&zipf, &table, &barrier);
                s.spawn(move || {
                    let th = system.register_thread();
                    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ ((worker as u64 + 1) << 17);
                    let mut writes = 0u64;
                    let mut blackhole = 0u64;
                    barrier.wait();
                    for _ in 0..iters {
                        let roll = xorshift(&mut rng) % 100;
                        if (roll as u32) < read_pct {
                            // Read-only scan over READS_PER_TX skewed keys,
                            // chosen before the transaction so a retry
                            // replays the same footprint.
                            let mut keys = [0usize; READS_PER_TX];
                            for k in &mut keys {
                                *k = zipf.sample(xorshift(&mut rng));
                            }
                            blackhole ^= rt.atomically_read(&th, |tx| {
                                let mut sum = 0u64;
                                for &k in &keys {
                                    sum = sum.wrapping_add(table[k].get(tx)?);
                                }
                                Ok(sum)
                            });
                        } else {
                            // Writer: bump one hot key.
                            let k = zipf.sample(xorshift(&mut rng));
                            rt.atomically(&th, |tx| {
                                let v = table[k].get(tx)?;
                                table[k].set(tx, v + 1)
                            });
                            writes += 1;
                        }
                    }
                    // Keep the scan results observable so the read loop
                    // cannot be optimized away.
                    std::hint::black_box(blackhole);
                    writes
                })
            })
            .collect();
        // Stopwatch before the barrier release, mirroring `thread_scaling`:
        // on a loaded host the workers can finish before this thread is
        // rescheduled to read the clock.
        start = Some(Instant::now());
        barrier.wait();
        writes_done = handles.into_iter().map(|h| h.join().unwrap()).sum();
    });
    let seconds = start.expect("barrier passed").elapsed().as_secs_f64();
    let total: u64 = table.iter().map(|v| v.load_direct(&system)).sum();
    assert_eq!(
        total,
        writes_done,
        "{kind} {}: lost updates under the read-mostly mix",
        snapshot.label()
    );
    let stats = system.stats();
    Cell {
        runtime: kind,
        snapshot,
        read_pct,
        seconds,
        commits: stats.hw_commits + stats.sw_commits + stats.serial_commits,
        aborts: stats.total_aborts(),
        ro_fast_commits: stats.ro_fast_commits,
        ro_upgrades: stats.ro_upgrades,
        snapshot_refreshes: stats.snapshot_refreshes,
        read_set_max: stats.read_set_max,
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn main() {
    let smoke = env_flag("TM_BENCH_SMOKE");
    let iters: u64 = std::env::var("TM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1000 } else { 20000 });
    let repeats: usize = std::env::var("TM_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let json_path =
        std::env::var("TM_BENCH_JSON").unwrap_or_else(|_| "BENCH_read_mostly.json".to_string());

    let mut cells = Vec::new();
    println!(
        "{:<10} {:<9} {:>8} {:>9} {:>11} {:>9} {:>9} {:>9} {:>10} {:>9}",
        "runtime",
        "snapshot",
        "read_pct",
        "seconds",
        "commits/s",
        "aborts",
        "ro_fast",
        "upgrades",
        "refreshes",
        "rset_max"
    );
    for kind in RuntimeKind::ALL {
        for snapshot in SNAPSHOTS {
            for read_pct in READ_PCTS {
                // Best-of-N on a fresh system per repeat, like thread_scaling.
                let cell = (0..repeats)
                    .map(|_| measure(kind, snapshot, read_pct, iters))
                    .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
                    .expect("at least one repeat");
                println!(
                    "{:<10} {:<9} {:>8} {:>9.4} {:>11.0} {:>9} {:>9} {:>9} {:>10} {:>9}",
                    cell.runtime.label(),
                    cell.snapshot.label(),
                    cell.read_pct,
                    cell.seconds,
                    cell.throughput(),
                    cell.aborts,
                    cell.ro_fast_commits,
                    cell.ro_upgrades,
                    cell.snapshot_refreshes,
                    cell.read_set_max,
                );
                cells.push(cell);
            }
        }
    }

    // Headline claims, checked on every run (smoke included).
    for cell in cells.iter().filter(|c| c.snapshot.is_enabled()) {
        // Every snapshot-enabled cell runs declared read-only transactions,
        // so the fast path must have fired: in hardware (declared-RO HTM
        // commits) or in software (empty-footprint snapshot commits).
        assert!(
            cell.ro_fast_commits > 0,
            "{}/{}% read: snapshot enabled but no fast read-only commits",
            cell.runtime.label(),
            cell.read_pct
        );
    }
    for cell in cells.iter().filter(|c| {
        c.snapshot.is_enabled()
            && c.read_pct == 100
            && matches!(c.runtime, RuntimeKind::EagerStm | RuntimeKind::LazyStm)
    }) {
        // Pure-reader STM cells never populate a read set: the snapshot
        // path validates against the begin timestamp instead of logging.
        assert_eq!(
            cell.read_set_max,
            0,
            "{}: snapshot readers populated a read set (max {})",
            cell.runtime.label(),
            cell.read_set_max
        );
    }
    // Single-repeat smoke timings on shared CI runners are noisy; the full
    // bench holds the strict inequality.
    let slack = if smoke { 0.90 } else { 1.0 };
    for kind in [RuntimeKind::EagerStm, RuntimeKind::LazyStm] {
        let pick = |mode: SnapshotMode| {
            cells
                .iter()
                .find(|c| c.runtime == kind && c.snapshot == mode && c.read_pct == 90)
                .expect("90%-read cell")
        };
        let off = pick(SnapshotMode::Off);
        let on = pick(SnapshotMode::On);
        println!(
            "  -> {} @ 90% read: snap-on {:.0} commits/s vs snap-off {:.0} ({:+.1}%)",
            kind.label(),
            on.throughput(),
            off.throughput(),
            (on.throughput() / off.throughput() - 1.0) * 100.0,
        );
        assert!(
            on.throughput() >= off.throughput() * slack,
            "{}: 90%-read snapshot-on {:.0} commits/s below snapshot-off {:.0}",
            kind.label(),
            on.throughput(),
            off.throughput()
        );
    }

    let report = Value::obj(vec![
        ("experiment", Value::Str("read_mostly".to_string())),
        (
            "description",
            Value::Str(
                "snapshot read-only throughput vs footprint-logging reads on a Zipfian mix"
                    .to_string(),
            ),
        ),
        ("iters_per_thread", Value::Num(iters as f64)),
        ("threads", Value::Num(THREADS as f64)),
        ("keys", Value::Num(KEYS as f64)),
        ("reads_per_tx", Value::Num(READS_PER_TX as f64)),
        ("zipf_s", Value::Num(ZIPF_S)),
        ("smoke", Value::Bool(smoke)),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("runtime", Value::Str(c.runtime.label().to_string())),
                            ("snapshot", Value::Str(c.snapshot.label().to_string())),
                            ("read_pct", Value::Num(c.read_pct as f64)),
                            ("seconds", Value::Num(c.seconds)),
                            ("commits", Value::Num(c.commits as f64)),
                            ("throughput", Value::Num(c.throughput())),
                            ("aborts", Value::Num(c.aborts as f64)),
                            ("abort_rate", Value::Num(c.abort_rate())),
                            ("ro_fast_commits", Value::Num(c.ro_fast_commits as f64)),
                            ("ro_upgrades", Value::Num(c.ro_upgrades as f64)),
                            (
                                "snapshot_refreshes",
                                Value::Num(c.snapshot_refreshes as f64),
                            ),
                            ("read_set_max", Value::Num(c.read_set_max as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&json_path, report.pretty()).expect("write JSON report");
    println!("wrote {json_path}");
}
