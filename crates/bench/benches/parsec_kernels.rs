//! Criterion benchmarks behind Figures 2.6–2.8: one iteration runs a whole
//! PARSEC-like kernel at test scale.
//!
//! The figure binaries sweep thread counts and mechanisms; these benches pin
//! a representative configuration (2 threads, eager STM) and compare the
//! kernels and a few mechanisms head-to-head under Criterion's statistics.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use condsync::Mechanism;
use tm_workloads::parsec::{KernelParams, ParsecApp, Scale};
use tm_workloads::runtime::RuntimeKind;

fn kernels_under_retry(c: &mut Criterion) {
    let mut group = c.benchmark_group("parsec_retry_eager_2t");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    for app in ParsecApp::ALL {
        let params = KernelParams::new(2, Mechanism::Retry, RuntimeKind::EagerStm, Scale::Test);
        group.bench_with_input(BenchmarkId::from_parameter(app.label()), &app, |b, &app| {
            b.iter(|| app.run(&params))
        });
    }
    group.finish();
}

fn ferret_across_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("parsec_ferret_mechanisms");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    for mechanism in Mechanism::ALL {
        let params = KernelParams::new(2, mechanism, RuntimeKind::EagerStm, Scale::Test);
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.label()),
            &params,
            |b, params| b.iter(|| ParsecApp::Ferret.run(params)),
        );
    }
    group.finish();
}

fn dedup_across_runtimes(c: &mut Criterion) {
    // dedup is the paper's pathological TM case (serialized I/O stage); the
    // interesting comparison is TM runtimes against the lock baseline.
    let mut group = c.benchmark_group("parsec_dedup_runtimes");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.bench_function("pthreads", |b| {
        let params = KernelParams::new(2, Mechanism::Pthreads, RuntimeKind::EagerStm, Scale::Test);
        b.iter(|| ParsecApp::Dedup.run(&params))
    });
    for kind in RuntimeKind::ALL {
        let params = KernelParams::new(2, Mechanism::Retry, kind, Scale::Test);
        group.bench_with_input(
            BenchmarkId::new("retry", kind.label()),
            &params,
            |b, params| b.iter(|| ParsecApp::Dedup.run(params)),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    kernels_under_retry,
    ferret_across_mechanisms,
    dedup_across_runtimes
);
criterion_main!(benches);
