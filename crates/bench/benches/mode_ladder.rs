//! `mode_ladder` — where transactions commit (hardware / software / serial)
//! as contention rises, across every runtime and contention policy.
//!
//! The unified mode-control plane promises two things this bench
//! demonstrates on the producer/consumer workload:
//!
//! * the **hybrid** runtime commits in hardware under low contention and
//!   degrades to *software* commits — not to the global serial lock — under
//!   high contention (hardware remains a fast path, the lazy STM the safety
//!   net, serial the last rung);
//! * the **contention policies** (`fixed`, `adaptive`, `stubborn`) shift
//!   that distribution: adaptive/stubborn escalate starving transactions to
//!   the serial gate, visible in `serial_commits` / `cm_escalations`.
//!
//! Contention is swept by scaling the thread count over a tiny buffer
//! (p1-c1 on a roomy buffer is near-uncontended; p4-c4 on a 2-slot buffer
//! keeps every thread colliding).
//!
//! Output: a plain-text table on stdout plus a JSON report (via
//! `tm_workloads::json`) written to `$TM_BENCH_JSON` (default
//! `BENCH_mode_ladder.json`), matching the `wake_scaling` / `set_scaling`
//! conventions so CI can archive the trajectory.
//!
//! Environment:
//!
//! | variable            | meaning                                 | default |
//! |---------------------|-----------------------------------------|---------|
//! | `TM_BENCH_SMOKE=1`  | tiny item counts for CI smoke runs      | off     |
//! | `TM_BENCH_ITEMS`    | items produced+consumed per cell        | `8192`  |
//! | `TM_BENCH_JSON`     | JSON report path                        | `BENCH_mode_ladder.json` |

use condsync::Mechanism;
use tm_core::{PolicyKind, TmConfig};
use tm_workloads::json::Value;
use tm_workloads::pc::{run_pc_configured, PcParams};
use tm_workloads::runtime::RuntimeKind;

/// One contention level of the sweep: thread counts and buffer size.
#[derive(Copy, Clone, Debug)]
struct Level {
    label: &'static str,
    producers: usize,
    consumers: usize,
    buffer: usize,
}

const LEVELS: [Level; 3] = [
    Level {
        label: "low",
        producers: 1,
        consumers: 1,
        buffer: 64,
    },
    Level {
        label: "mid",
        producers: 2,
        consumers: 2,
        buffer: 8,
    },
    Level {
        label: "high",
        producers: 4,
        consumers: 4,
        buffer: 2,
    },
];

const POLICIES: [PolicyKind; 3] = [
    PolicyKind::Fixed,
    PolicyKind::ADAPTIVE_DEFAULT,
    PolicyKind::STUBBORN_DEFAULT,
];

struct Cell {
    runtime: RuntimeKind,
    policy: PolicyKind,
    level: Level,
    seconds: f64,
    hw_commits: u64,
    sw_commits: u64,
    serial_commits: u64,
    mode_switches: u64,
    cm_escalations: u64,
    aborts: u64,
}

fn measure(kind: RuntimeKind, policy: PolicyKind, level: Level, items: u64) -> Cell {
    let params = PcParams::new(
        level.producers,
        level.consumers,
        level.buffer,
        items,
        Mechanism::Retry,
    );
    let config = TmConfig {
        heap_words: params.heap_words(),
        ..TmConfig::default()
    }
    .with_policy(policy);
    let result = run_pc_configured(kind, &params, config);
    assert!(result.checksum_ok, "{kind} {policy:?} {level:?}");
    let s = result.stats;
    Cell {
        runtime: kind,
        policy,
        level,
        seconds: result.seconds(),
        hw_commits: s.hw_commits,
        sw_commits: s.sw_commits,
        serial_commits: s.serial_commits,
        mode_switches: s.mode_switches,
        cm_escalations: s.cm_escalations,
        aborts: s.total_aborts(),
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn main() {
    let smoke = env_flag("TM_BENCH_SMOKE");
    let items: u64 = std::env::var("TM_BENCH_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 512 } else { 8192 });
    let json_path =
        std::env::var("TM_BENCH_JSON").unwrap_or_else(|_| "BENCH_mode_ladder.json".to_string());

    let mut cells = Vec::new();
    println!(
        "{:<10} {:<9} {:<6} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
        "runtime",
        "policy",
        "level",
        "seconds",
        "hw_commit",
        "sw_commit",
        "serial",
        "switches",
        "escalate",
        "aborts"
    );
    for kind in RuntimeKind::ALL {
        for policy in POLICIES {
            for level in LEVELS {
                let cell = measure(kind, policy, level, items);
                println!(
                    "{:<10} {:<9} {:<6} {:>9.4} {:>10} {:>10} {:>9} {:>9} {:>9} {:>9}",
                    cell.runtime.label(),
                    cell.policy.label(),
                    cell.level.label,
                    cell.seconds,
                    cell.hw_commits,
                    cell.sw_commits,
                    cell.serial_commits,
                    cell.mode_switches,
                    cell.cm_escalations,
                    cell.aborts,
                );
                cells.push(cell);
            }
        }
    }

    // The headline claims, checked on every run (smoke included): under low
    // contention the hybrid commits in hardware; under high contention it
    // degrades to software commits rather than collapsing onto the serial
    // gate.
    for policy in POLICIES {
        let low = cells
            .iter()
            .find(|c| {
                c.runtime == RuntimeKind::Hybrid && c.policy == policy && c.level.label == "low"
            })
            .expect("low cell");
        let high = cells
            .iter()
            .find(|c| {
                c.runtime == RuntimeKind::Hybrid && c.policy == policy && c.level.label == "high"
            })
            .expect("high cell");
        assert!(
            low.hw_commits > 0,
            "hybrid/{}: no hardware commits under low contention",
            policy.label()
        );
        assert!(
            high.serial_commits < high.sw_commits,
            "hybrid/{}: high contention collapsed onto the serial gate \
             (serial {} >= sw {})",
            policy.label(),
            high.serial_commits,
            high.sw_commits
        );
        println!(
            "  -> hybrid/{}: low-contention hw commits {}, high-contention sw {} vs serial {}",
            policy.label(),
            low.hw_commits,
            high.sw_commits,
            high.serial_commits
        );
    }

    let report = Value::obj(vec![
        ("experiment", Value::Str("mode_ladder".to_string())),
        (
            "description",
            Value::Str(
                "commit distribution across the Hw/Sw/Serial mode ladder vs contention and policy"
                    .to_string(),
            ),
        ),
        ("items_per_cell", Value::Num(items as f64)),
        ("smoke", Value::Bool(smoke)),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("runtime", Value::Str(c.runtime.label().to_string())),
                            ("policy", Value::Str(c.policy.label().to_string())),
                            ("level", Value::Str(c.level.label.to_string())),
                            ("producers", Value::Num(c.level.producers as f64)),
                            ("consumers", Value::Num(c.level.consumers as f64)),
                            ("buffer", Value::Num(c.level.buffer as f64)),
                            ("seconds", Value::Num(c.seconds)),
                            ("hw_commits", Value::Num(c.hw_commits as f64)),
                            ("sw_commits", Value::Num(c.sw_commits as f64)),
                            ("serial_commits", Value::Num(c.serial_commits as f64)),
                            ("mode_switches", Value::Num(c.mode_switches as f64)),
                            ("cm_escalations", Value::Num(c.cm_escalations as f64)),
                            ("aborts", Value::Num(c.aborts as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&json_path, report.pretty()).expect("write JSON report");
    println!("wrote {json_path}");
}
