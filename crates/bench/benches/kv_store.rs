//! `kv_store` — session-store throughput and tail latency on the KV plane.
//!
//! The transactional KV plane makes two measurable promises:
//!
//! 1. **Snapshot lookups are free.**  `TmHashMap::get` and
//!    `TmOrderedMap::range` run as declared read-only transactions, so with
//!    `SnapshotMode::On` they commit through the zero-footprint fast path —
//!    no read set, no commit-time validation, a single `ro_fast_commits`
//!    bump.
//! 2. **Stripe-aligned layout sheds structural contention.**  The striped
//!    map spreads its occupancy counters across pairwise-distinct orec
//!    stripes, so concurrent inserts/deletes do not serialize on one
//!    length word the way the naive layout's single `len` TmVar forces
//!    them to.
//!
//! Part A drives claim 1: two workers run a Zipf-skewed get/scan/put/delete
//! session mix (each get loads a `GET_BATCH`-field session record in one
//! read-only transaction) over a prepopulated store + ordered index, sweeping read
//! percentage {100, 90} x skew theta {0.6, 0.99} x snapshot {off, on} x all
//! four runtimes.  Part B drives claim 2: eight workers run a write-heavy
//! mix over both map layouts and the sweep records orec CAS failures per
//! commit.  Every operation is tagged with its `OpClass`, so the per-class
//! latency histograms (get/put/del/scan p50/p99/p999) come out of the same
//! runs; a rendered per-runtime report is printed after the sweep.
//!
//! Headline assertions, run on every invocation (smoke included):
//!
//! * every snapshot-enabled cell commits lookups through the fast path
//!   (`ro_fast_commits > 0`);
//! * on the 100%-read snapshot-enabled STM cells the read-set pool
//!   high-water stays at **zero** (`read_set_max == 0`) — the measured loop
//!   has no mailbox or setup transactions to muddy the claim;
//! * on the 90%-read theta-0.99 cells, snapshot-on throughput is at least
//!   snapshot-off throughput on both STMs (slack under `TM_BENCH_SMOKE`);
//! * at 8 threads the stripe-aligned layout suffers no more orec CAS
//!   failures per commit than the naive layout on both STMs.
//!
//! Output: plain-text tables plus per-runtime latency reports on stdout and
//! a JSON report written to `$TM_BENCH_JSON` (default `BENCH_kv_store.json`).
//!
//! Environment:
//!
//! | variable            | meaning                                  | default |
//! |---------------------|------------------------------------------|---------|
//! | `TM_BENCH_SMOKE=1`  | tiny iteration counts + slack for CI     | off     |
//! | `TM_BENCH_ITERS`    | operations per worker per cell           | `12000` |
//! | `TM_BENCH_REPEATS`  | runs per cell (fastest kept)             | `7` (smoke `1`) |
//! | `TM_BENCH_JSON`     | JSON report path                         | `BENCH_kv_store.json` |

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use condsync::Mechanism;
use tm_core::{OpClass, SnapshotMode, StatsSnapshot, TmConfig};
use tm_sync::{MapLayout, TmHashMap, TmOrderedMap};
use tm_workloads::json::Value;
use tm_workloads::runtime::RuntimeKind;
use tm_workloads::zipf::ZipfGen;
use tm_workloads::{DataPoint, Panel};

/// Distinct keys in the session key space; all prepopulated, so 100%-read
/// cells never miss and the cold start costs nothing.
const KEYSPACE: usize = 384;

/// Hash-map slot capacity.  Headroom over `KEYSPACE` keeps probe chains
/// short even once delete/insert churn leaves tombstones behind.
const CAPACITY: usize = 1024;

/// A scan covers `[k, k + SCAN_SPAN]` in key order.
const SCAN_SPAN: u64 = 8;

/// Fields loaded per session read: a `Get` materialises one session record
/// — `GET_BATCH` Zipf-drawn keys — in a single declared read-only
/// transaction, the way a request handler loads a session in one shot.
/// Wide enough that the per-read saving of the snapshot path (no read-set
/// recording) dominates its fixed per-transaction cost.
const GET_BATCH: usize = 16;

/// Part A (snapshot sweep) worker count: concurrent readers and writers
/// without drowning small CI hosts in scheduler noise (the snapshot
/// comparison is wall-clock-based, so oversubscription hurts its signal).
const THREADS_A: usize = 2;

/// Part B (layout sweep) worker count — the contention point of the claim.
const THREADS_B: usize = 8;

/// Part A read percentages: the pure-lookup cell pins `read_set_max == 0`;
/// the 90% cell is the paper-shaped read-mostly session mix.
const READ_PCTS: [u32; 2] = [100, 90];

/// Part A Zipf skews: mild and classic-YCSB hot-spot.
const THETAS: [f64; 2] = [0.6, 0.99];

/// Part B mix: write-heavy (20% reads) so structural churn — the traffic
/// the layouts disagree on — dominates.
const B_READ_PCT: u32 = 20;
const B_THETA: f64 = 0.8;

const SNAPSHOTS: [SnapshotMode; 2] = [SnapshotMode::Off, SnapshotMode::On];

/// Base seed for the per-worker Zipf streams.
const SEED: u64 = 0x005E_5510_4B50;

struct Cell {
    runtime: RuntimeKind,
    snapshot: SnapshotMode,
    layout: MapLayout,
    threads: usize,
    read_pct: u32,
    theta: f64,
    seconds: f64,
    commits: u64,
    aborts: u64,
    ro_fast_commits: u64,
    snapshot_refreshes: u64,
    read_set_max: u64,
    orec_cas_failures: u64,
    gets: u64,
    puts: u64,
    dels: u64,
    scans: u64,
    stats: StatsSnapshot,
}

impl Cell {
    fn throughput(&self) -> f64 {
        self.commits as f64 / self.seconds
    }

    fn cas_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.orec_cas_failures as f64 / self.commits as f64
        }
    }
}

#[allow(clippy::too_many_lines)]
fn measure(
    kind: RuntimeKind,
    snapshot: SnapshotMode,
    layout: MapLayout,
    threads: usize,
    read_pct: u32,
    theta: f64,
    iters: u64,
) -> Cell {
    let config = TmConfig::default()
        .with_heap_words(1 << 16)
        .with_snapshot(snapshot);
    let rt = kind.build(config);
    let system = Arc::clone(rt.system());
    let store = Arc::new(TmHashMap::<u64, u64>::with_layout(
        &system, CAPACITY, layout,
    ));
    let index = Arc::new(TmOrderedMap::<u64, u64>::new(&system));
    // Non-transactional prepopulation: the measured stats are the session
    // operations alone (critical for the `read_set_max == 0` claim).
    for k in 0..KEYSPACE as u64 {
        store.insert_direct(&system, k, k.wrapping_mul(2) + 1);
        index.insert_direct(&system, k, k.wrapping_mul(2) + 1);
    }

    let barrier = Barrier::new(threads + 1);
    let inserts_new = AtomicU64::new(0);
    let delete_hits = AtomicU64::new(0);
    let op_counts = [
        AtomicU64::new(0), // gets
        AtomicU64::new(0), // puts
        AtomicU64::new(0), // dels
        AtomicU64::new(0), // scans
    ];
    let mut start = None;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let rt = rt.clone();
                let system = Arc::clone(&system);
                let store = Arc::clone(&store);
                let index = Arc::clone(&index);
                let (barrier, inserts_new, delete_hits, op_counts) =
                    (&barrier, &inserts_new, &delete_hits, &op_counts);
                s.spawn(move || {
                    let th = system.register_thread();
                    let mut rng = ZipfGen::new(KEYSPACE, theta, SEED ^ ((worker as u64 + 1) << 17));
                    let mut blackhole = 0u64;
                    let (mut gets, mut puts, mut dels, mut scans) = (0u64, 0u64, 0u64, 0u64);
                    let (mut fresh, mut hits) = (0u64, 0u64);
                    barrier.wait();
                    for i in 0..iters {
                        let key = rng.next_key() as u64;
                        let roll = (rng.next_u64() >> 32) as u32 % 100;
                        let sub = rng.next_u64();
                        if roll < read_pct {
                            if sub & 7 == 0 {
                                // Range scan over the ordered index.
                                th.set_op_class(OpClass::Scan);
                                let hi = key.saturating_add(SCAN_SPAN);
                                let entries =
                                    rt.atomically_read(&th, |tx| index.range(tx, key, hi));
                                for (_, v) in entries {
                                    blackhole = blackhole.wrapping_add(v);
                                }
                                scans += 1;
                            } else {
                                // Session read: one declared read-only
                                // transaction loads the whole record —
                                // `GET_BATCH` Zipf-drawn fields.
                                th.set_op_class(OpClass::Get);
                                let mut keys = [key; GET_BATCH];
                                for k in keys.iter_mut().skip(1) {
                                    *k = rng.next_key() as u64;
                                }
                                let sum = rt.atomically_read(&th, |tx| {
                                    let mut sum = 0u64;
                                    for &k in &keys {
                                        sum = sum.wrapping_add(store.get(tx, k)?.unwrap_or(0));
                                    }
                                    Ok(sum)
                                });
                                blackhole ^= sum;
                                gets += 1;
                            }
                        } else if sub & 1 == 0 {
                            // Delete from store and index in one transaction.
                            th.set_op_class(OpClass::Delete);
                            let old = rt.atomically(&th, |tx| {
                                let old = store.remove(tx, key)?;
                                if old.is_some() {
                                    index.remove(tx, key)?;
                                }
                                Ok(old)
                            });
                            if old.is_some() {
                                hits += 1;
                            }
                            dels += 1;
                        } else {
                            // Put into store and index in one transaction.
                            th.set_op_class(OpClass::Put);
                            let value = ((worker as u64 + 1) << 32) | i;
                            let old = rt.atomically(&th, |tx| {
                                let old = store.insert(tx, key, value)?;
                                index.insert(tx, key, value)?;
                                Ok(old)
                            });
                            if old.is_none() {
                                fresh += 1;
                            }
                            puts += 1;
                        }
                        th.clear_op_class();
                    }
                    std::hint::black_box(blackhole);
                    inserts_new.fetch_add(fresh, Ordering::Relaxed);
                    delete_hits.fetch_add(hits, Ordering::Relaxed);
                    op_counts[0].fetch_add(gets, Ordering::Relaxed);
                    op_counts[1].fetch_add(puts, Ordering::Relaxed);
                    op_counts[2].fetch_add(dels, Ordering::Relaxed);
                    op_counts[3].fetch_add(scans, Ordering::Relaxed);
                })
            })
            .collect();
        // Stopwatch before the barrier release, mirroring `read_mostly`.
        start = Some(Instant::now());
        barrier.wait();
        for h in handles {
            h.join().unwrap();
        }
    });
    let seconds = start.expect("barrier passed").elapsed().as_secs_f64();

    // Conservation: the store's final size is exactly what the structural
    // operations say it is, and the ordered index agrees entry-for-entry.
    let final_len = store.len_direct(&system);
    let expected =
        KEYSPACE as u64 + inserts_new.load(Ordering::Relaxed) - delete_hits.load(Ordering::Relaxed);
    assert_eq!(
        final_len,
        expected,
        "{kind} {} {}: store lost structural updates",
        snapshot.label(),
        layout.label()
    );
    assert_eq!(
        store.dump_direct(&system),
        index.dump_direct(&system),
        "{kind} {} {}: store and index disagree",
        snapshot.label(),
        layout.label()
    );

    let stats = system.stats();
    Cell {
        runtime: kind,
        snapshot,
        layout,
        threads,
        read_pct,
        theta,
        seconds,
        commits: stats.hw_commits + stats.sw_commits + stats.serial_commits,
        aborts: stats.total_aborts(),
        ro_fast_commits: stats.ro_fast_commits,
        snapshot_refreshes: stats.snapshot_refreshes,
        read_set_max: stats.read_set_max,
        orec_cas_failures: stats.orec_cas_failures,
        gets: op_counts[0].load(Ordering::Relaxed),
        puts: op_counts[1].load(Ordering::Relaxed),
        dels: op_counts[2].load(Ordering::Relaxed),
        scans: op_counts[3].load(Ordering::Relaxed),
        stats,
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn cell_json(c: &Cell) -> Value {
    Value::obj(vec![
        ("runtime", Value::Str(c.runtime.label().to_string())),
        ("snapshot", Value::Str(c.snapshot.label().to_string())),
        ("layout", Value::Str(c.layout.label().to_string())),
        ("threads", Value::Num(c.threads as f64)),
        ("read_pct", Value::Num(c.read_pct as f64)),
        ("theta", Value::Num(c.theta)),
        ("seconds", Value::Num(c.seconds)),
        ("commits", Value::Num(c.commits as f64)),
        ("throughput", Value::Num(c.throughput())),
        ("aborts", Value::Num(c.aborts as f64)),
        ("ro_fast_commits", Value::Num(c.ro_fast_commits as f64)),
        (
            "snapshot_refreshes",
            Value::Num(c.snapshot_refreshes as f64),
        ),
        ("read_set_max", Value::Num(c.read_set_max as f64)),
        ("orec_cas_failures", Value::Num(c.orec_cas_failures as f64)),
        ("cas_per_commit", Value::Num(c.cas_per_commit())),
        ("gets", Value::Num(c.gets as f64)),
        ("puts", Value::Num(c.puts as f64)),
        ("dels", Value::Num(c.dels as f64)),
        ("scans", Value::Num(c.scans as f64)),
    ])
}

fn main() {
    let smoke = env_flag("TM_BENCH_SMOKE");
    let iters: u64 = std::env::var("TM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 600 } else { 12000 });
    let repeats: usize = std::env::var("TM_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 7 })
        .max(1);
    let json_path =
        std::env::var("TM_BENCH_JSON").unwrap_or_else(|_| "BENCH_kv_store.json".to_string());

    // ---- Part A: snapshot sweep (striped layout, 4 threads) ----
    let mut snap_cells = Vec::new();
    println!(
        "{:<10} {:<9} {:>8} {:>6} {:>9} {:>11} {:>9} {:>9} {:>10} {:>9}",
        "runtime",
        "snapshot",
        "read_pct",
        "theta",
        "seconds",
        "commits/s",
        "aborts",
        "ro_fast",
        "refreshes",
        "rset_max"
    );
    for kind in RuntimeKind::ALL {
        for snapshot in SNAPSHOTS {
            for theta in THETAS {
                for read_pct in READ_PCTS {
                    let cell = (0..repeats)
                        .map(|_| {
                            measure(
                                kind,
                                snapshot,
                                MapLayout::StripeAligned,
                                THREADS_A,
                                read_pct,
                                theta,
                                iters,
                            )
                        })
                        .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
                        .expect("at least one repeat");
                    println!(
                        "{:<10} {:<9} {:>8} {:>6} {:>9.4} {:>11.0} {:>9} {:>9} {:>10} {:>9}",
                        cell.runtime.label(),
                        cell.snapshot.label(),
                        cell.read_pct,
                        cell.theta,
                        cell.seconds,
                        cell.throughput(),
                        cell.aborts,
                        cell.ro_fast_commits,
                        cell.snapshot_refreshes,
                        cell.read_set_max,
                    );
                    snap_cells.push(cell);
                }
            }
        }
    }

    // ---- Part B: layout sweep (8 threads, write-heavy, snapshot on) ----
    let mut layout_cells = Vec::new();
    println!(
        "\n{:<10} {:<8} {:>8} {:>9} {:>11} {:>9} {:>12} {:>11}",
        "runtime",
        "layout",
        "threads",
        "seconds",
        "commits/s",
        "aborts",
        "cas_failures",
        "cas/commit"
    );
    let b_iters = (iters / 2).max(1);
    for kind in RuntimeKind::ALL {
        for layout in MapLayout::ALL {
            let cell = (0..repeats)
                .map(|_| {
                    measure(
                        kind,
                        SnapshotMode::On,
                        layout,
                        THREADS_B,
                        B_READ_PCT,
                        B_THETA,
                        b_iters,
                    )
                })
                .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
                .expect("at least one repeat");
            println!(
                "{:<10} {:<8} {:>8} {:>9.4} {:>11.0} {:>9} {:>12} {:>11.4}",
                cell.runtime.label(),
                cell.layout.label(),
                cell.threads,
                cell.seconds,
                cell.throughput(),
                cell.aborts,
                cell.orec_cas_failures,
                cell.cas_per_commit(),
            );
            layout_cells.push(cell);
        }
    }

    // ---- Per-runtime latency reports: p50/p99/p999 per operation class ----
    // The op-class histograms come from the 90%-read theta-0.99 snapshot-on
    // cell (the session-store shape), rendered through the same report
    // machinery the figure binaries use.
    for kind in RuntimeKind::ALL {
        let cell = snap_cells
            .iter()
            .find(|c| {
                c.runtime == kind && c.snapshot.is_enabled() && c.read_pct == 90 && c.theta == 0.99
            })
            .expect("90%-read snapshot-on cell");
        let mut panel = Panel::new(format!("kv_store {}", kind.label()), "threads");
        panel
            .series_mut(Mechanism::Await)
            .push(DataPoint::from_trials(
                cell.threads as u64,
                &[std::time::Duration::from_secs_f64(cell.seconds)],
                cell.stats,
            ));
        print!(
            "\n# report {}\n{}",
            kind.label(),
            panel.render_latency_stats()
        );
    }

    // ---- Headline claims, checked on every run (smoke included) ----
    for cell in snap_cells.iter().filter(|c| c.snapshot.is_enabled()) {
        assert!(
            cell.ro_fast_commits > 0,
            "{}/{}%/theta {}: snapshot enabled but no fast read-only commits",
            cell.runtime.label(),
            cell.read_pct,
            cell.theta
        );
    }
    for cell in snap_cells.iter().filter(|c| {
        c.snapshot.is_enabled()
            && c.read_pct == 100
            && matches!(c.runtime, RuntimeKind::EagerStm | RuntimeKind::LazyStm)
    }) {
        // Pure-lookup STM cells never populate a read set: there is no
        // mailbox or setup transaction in the measured loop, so the
        // high-water mark is exactly the lookups' footprint — zero.
        assert_eq!(
            cell.read_set_max,
            0,
            "{}/theta {}: snapshot lookups populated a read set (max {})",
            cell.runtime.label(),
            cell.theta,
            cell.read_set_max
        );
    }
    // Single-repeat smoke timings on shared CI runners are noisy; the full
    // bench holds the strict inequality.
    let slack = if smoke { 0.90 } else { 1.0 };
    for kind in [RuntimeKind::EagerStm, RuntimeKind::LazyStm] {
        let pick = |mode: SnapshotMode| {
            snap_cells
                .iter()
                .find(|c| {
                    c.runtime == kind && c.snapshot == mode && c.read_pct == 90 && c.theta == 0.99
                })
                .expect("90%-read theta-0.99 cell")
        };
        let off = pick(SnapshotMode::Off);
        let on = pick(SnapshotMode::On);
        println!(
            "  -> {} @ 90% read, theta 0.99: snap-on {:.0} commits/s vs snap-off {:.0} ({:+.1}%)",
            kind.label(),
            on.throughput(),
            off.throughput(),
            (on.throughput() / off.throughput() - 1.0) * 100.0,
        );
        assert!(
            on.throughput() >= off.throughput() * slack,
            "{}: 90%-read snapshot-on {:.0} commits/s below snapshot-off {:.0}",
            kind.label(),
            on.throughput(),
            off.throughput()
        );
    }
    // The layout claim: striped counters shed the naive layout's single-
    // length-word serialization.  CAS-failure counts are far less noisy
    // than wall-clock, but smoke runs still get a little slack.
    let cas_slack = if smoke { 1.25 } else { 1.0 };
    for kind in [RuntimeKind::EagerStm, RuntimeKind::LazyStm] {
        let pick = |layout: MapLayout| {
            layout_cells
                .iter()
                .find(|c| c.runtime == kind && c.layout == layout)
                .expect("layout cell")
        };
        let naive = pick(MapLayout::Naive);
        let striped = pick(MapLayout::StripeAligned);
        println!(
            "  -> {} @ {} threads: striped {:.4} CAS-failures/commit vs naive {:.4}",
            kind.label(),
            THREADS_B,
            striped.cas_per_commit(),
            naive.cas_per_commit(),
        );
        assert!(
            striped.cas_per_commit() <= naive.cas_per_commit() * cas_slack + 0.02,
            "{}: striped layout {:.4} CAS-failures/commit above naive {:.4}",
            kind.label(),
            striped.cas_per_commit(),
            naive.cas_per_commit()
        );
    }

    let report = Value::obj(vec![
        ("experiment", Value::Str("kv_store".to_string())),
        (
            "description",
            Value::Str(
                "session-store mix over the transactional KV plane: snapshot sweep + layout sweep"
                    .to_string(),
            ),
        ),
        ("iters_per_thread", Value::Num(iters as f64)),
        ("keyspace", Value::Num(KEYSPACE as f64)),
        ("capacity", Value::Num(CAPACITY as f64)),
        ("scan_span", Value::Num(SCAN_SPAN as f64)),
        ("smoke", Value::Bool(smoke)),
        (
            "snapshot_cells",
            Value::Arr(snap_cells.iter().map(cell_json).collect()),
        ),
        (
            "layout_cells",
            Value::Arr(layout_cells.iter().map(cell_json).collect()),
        ),
    ]);
    std::fs::write(&json_path, report.pretty()).expect("write JSON report");
    println!("wrote {json_path}");
}
