//! `memory_plane` — allocation-heavy churn versus the core-local memory
//! plane: per-thread heap arenas on/off, swept across orec shard counts.
//!
//! The memory plane promises that a steady-state transactional allocation
//! never takes the global heap lock: each thread front-ends the allocator
//! with exact-size bins refilled in batches (`heap_global_refills`), serves
//! repeat allocations mutex-free (`heap_arena_allocs`), and absorbs
//! cross-thread frees through a lock-free remote-free stack drained by the
//! owning thread (`heap_remote_frees`).  This bench drives the claim with
//! the worst case for a centralized heap: every thread churning a private
//! linked list — one node allocated per transaction, one freed once the
//! list reaches capacity — so the global allocator lock is the only thing
//! the threads would otherwise share.  Every `DONATE_EVERY`-th pop hands
//! the live node to a neighbor through a mailbox instead of freeing it, so
//! multi-thread cells also exercise the remote-free path.
//!
//! Each cell spawns `threads` workers over a fresh system; the sweep runs
//! arenas on and off across orec shard counts, and a spot check runs every
//! runtime on the same workload.  On every arenas-on cell the bench asserts
//! the headline property: **global refills stay under 5% of arena-served
//! allocations** (the bins, not the lock, carry the steady state), and on
//! multi-thread cells that the remote-free path actually fired.  Full runs
//! additionally assert the throughput claims: arenas within 5% of the bare
//! heap single-threaded, and strictly ahead at the widest cell.  The strict
//! win is only asserted when the host actually has ≥2 cores: on a
//! single-core box the timesliced workers never contend on the global lock,
//! so there is nothing for the mutex-free path to beat and the bench just
//! bounds the arena overhead instead.
//!
//! Output: a plain-text table on stdout plus a JSON report (via
//! `tm_workloads::json`) written to `$TM_BENCH_JSON` (default
//! `BENCH_memory_plane.json`), matching the `thread_scaling` conventions so
//! CI can archive the trajectory.
//!
//! Environment:
//!
//! | variable            | meaning                                  | default |
//! |---------------------|------------------------------------------|---------|
//! | `TM_BENCH_SMOKE=1`  | tiny sweep + iteration counts for CI     | off     |
//! | `TM_BENCH_ITERS`    | transactions per worker per cell         | `10000` |
//! | `TM_BENCH_REPEATS`  | runs per cell (fastest kept)             | `3` (smoke `1`) |
//! | `TM_BENCH_JSON`     | JSON report path                         | `BENCH_memory_plane.json` |

use std::sync::{Arc, Barrier};
use std::time::Instant;

use tm_core::{default_orec_shards, Addr, TmConfig, TmVar};
use tm_workloads::json::Value;
use tm_workloads::runtime::RuntimeKind;

/// Words per list node: a next pointer plus a small payload, the shape of
/// the `tm-sync` queue/stack nodes.
const NODE_WORDS: usize = 4;

/// Live nodes each worker keeps before it starts freeing the tail.
const LIST_CAP: usize = 32;

/// Every n-th pop is donated to the neighbor's mailbox instead of freed, so
/// the neighbor's free lands on a block another thread's arena owns.
const DONATE_EVERY: u64 = 16;

/// Nil sentinel for list links and mailboxes; `Addr(0)` is the reserved
/// null address and never returned by the allocator.
const NIL: u64 = 0;

struct Cell {
    runtime: RuntimeKind,
    arenas: bool,
    shards: usize,
    threads: usize,
    seconds: f64,
    commits: u64,
    aborts: u64,
    arena_allocs: u64,
    refills: u64,
    remote_frees: u64,
    orec_cas: u64,
}

impl Cell {
    fn throughput(&self) -> f64 {
        self.commits as f64 / self.seconds
    }

    fn refill_ratio(&self) -> f64 {
        if self.arena_allocs == 0 {
            0.0
        } else {
            self.refills as f64 / self.arena_allocs as f64
        }
    }
}

fn measure(kind: RuntimeKind, arenas: bool, shards: usize, threads: usize, iters: u64) -> Cell {
    let config = TmConfig::default()
        .with_heap_words(1 << 15)
        .with_max_threads(16)
        .with_orec_shards(shards)
        .with_heap_arenas(arenas);
    let rt = kind.build(config);
    let system = Arc::clone(rt.system());
    let heads: Vec<TmVar<u64>> = (0..threads).map(|_| TmVar::alloc(&system, NIL)).collect();
    let mailboxes: Vec<TmVar<u64>> = (0..threads).map(|_| TmVar::alloc(&system, NIL)).collect();
    // Everything the workers allocate is freed again before the scope ends,
    // so the heap must return to this baseline (bin-cached blocks included:
    // `allocated_words` nets out arena caches).
    let baseline = system.heap.allocated_words();
    let start_gate = Barrier::new(threads + 1);
    let drain_gate = Barrier::new(threads);
    let mut start = None;
    std::thread::scope(|s| {
        for t in 0..threads {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let heads = &heads;
            let mailboxes = &mailboxes;
            let start_gate = &start_gate;
            let drain_gate = &drain_gate;
            s.spawn(move || {
                let th = system.register_thread();
                let head = &heads[t];
                let inbox = &mailboxes[t];
                let outbox = &mailboxes[(t + 1) % threads];
                let mut len = 0usize;
                let mut pops = 0u64;
                start_gate.wait();
                for i in 0..iters {
                    // Push: allocate a node and link it at the head.
                    rt.atomically(&th, |tx| {
                        let node = tx.alloc(NODE_WORDS)?;
                        let prev = head.get(tx)?;
                        tx.write(node, prev as usize as u64)?;
                        tx.write(Addr(node.0 + 1), i)?;
                        head.set(tx, node.0 as u64)
                    });
                    len += 1;
                    // Pop once the list is full; mostly free in place, but
                    // donate every n-th node to the neighbor so its free
                    // crosses arena ownership.
                    if len > LIST_CAP {
                        len -= 1;
                        pops += 1;
                        let donate = pops.is_multiple_of(DONATE_EVERY);
                        rt.atomically(&th, |tx| {
                            let top = head.get(tx)? as usize;
                            let next = tx.read(Addr(top))?;
                            head.set(tx, next)?;
                            if donate && outbox.get(tx)? == NIL {
                                // Hand the live node over; the neighbor
                                // frees it.
                                return outbox.set(tx, top as u64);
                            }
                            tx.free(Addr(top), NODE_WORDS)
                        });
                    }
                    // Poll the inbox occasionally and free whatever a
                    // neighbor donated.
                    if i % DONATE_EVERY == 7 {
                        rt.atomically(&th, |tx| {
                            let a = inbox.get(tx)?;
                            if a != NIL {
                                inbox.set(tx, NIL)?;
                                tx.free(Addr(a as usize), NODE_WORDS)?;
                            }
                            Ok(())
                        });
                    }
                }
                // All donations happen before this barrier, so after it the
                // mailboxes are quiescent and each worker can drain its own.
                drain_gate.wait();
                while len > 0 {
                    len -= 1;
                    rt.atomically(&th, |tx| {
                        let top = head.get(tx)? as usize;
                        let next = tx.read(Addr(top))?;
                        head.set(tx, next)?;
                        tx.free(Addr(top), NODE_WORDS)
                    });
                }
                rt.atomically(&th, |tx| {
                    let a = inbox.get(tx)?;
                    if a != NIL {
                        inbox.set(tx, NIL)?;
                        tx.free(Addr(a as usize), NODE_WORDS)?;
                    }
                    Ok(())
                });
            });
        }
        // Start the stopwatch *before* releasing the barrier: on a loaded
        // (or single-core) host the workers can otherwise run to completion
        // before this thread is rescheduled to read the clock.
        start = Some(Instant::now());
        start_gate.wait();
    });
    let seconds = start.expect("barrier passed").elapsed().as_secs_f64();
    assert_eq!(
        system.heap.allocated_words(),
        baseline,
        "{kind} arenas={arenas} shards={shards} {threads}t leaked heap words"
    );
    let stats = system.stats();
    Cell {
        runtime: kind,
        arenas,
        shards,
        threads,
        seconds,
        commits: stats.hw_commits + stats.sw_commits + stats.serial_commits,
        aborts: stats.total_aborts(),
        arena_allocs: stats.heap_arena_allocs,
        refills: stats.heap_global_refills,
        remote_frees: stats.heap_remote_frees,
        orec_cas: stats.orec_cas_failures,
    }
}

fn check_plane_counters(cell: &Cell) {
    let tag = format!(
        "{} arenas={} shards={} {}t",
        cell.runtime.label(),
        cell.arenas,
        cell.shards,
        cell.threads
    );
    if !cell.arenas {
        assert_eq!(cell.arena_allocs, 0, "{tag}: bare heap served arena allocs");
        assert_eq!(cell.refills, 0, "{tag}: bare heap recorded refills");
        assert_eq!(
            cell.remote_frees, 0,
            "{tag}: bare heap recorded remote frees"
        );
        return;
    }
    assert!(cell.arena_allocs > 0, "{tag}: arenas never served an alloc");
    assert!(
        cell.refill_ratio() < 0.05,
        "{tag}: refills {} / arena allocs {} = {:.4} — steady state still hits the global lock",
        cell.refills,
        cell.arena_allocs,
        cell.refill_ratio()
    );
    if cell.threads >= 2 {
        // Donations are guaranteed (iters >> LIST_CAP + DONATE_EVERY) and
        // every donated node is freed by its recipient, whose arena does
        // not own the block.
        assert!(cell.remote_frees > 0, "{tag}: remote-free path never fired");
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn main() {
    let smoke = env_flag("TM_BENCH_SMOKE");
    let iters: u64 = std::env::var("TM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1000 } else { 10000 });
    let repeats: usize = std::env::var("TM_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 5 })
        .max(1);
    let json_path =
        std::env::var("TM_BENCH_JSON").unwrap_or_else(|_| "BENCH_memory_plane.json".to_string());
    let thread_sweep: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut shard_sweep = vec![1, 4, default_orec_shards()];
    shard_sweep.sort_unstable();
    shard_sweep.dedup();
    if smoke {
        shard_sweep = vec![default_orec_shards()];
    }

    let mut cells = Vec::new();
    println!(
        "{:<10} {:<7} {:>7} {:>8} {:>9} {:>11} {:>8} {:>12} {:>8} {:>12} {:>9}",
        "runtime",
        "arenas",
        "shards",
        "threads",
        "seconds",
        "commits/s",
        "aborts",
        "arena_alloc",
        "refills",
        "remote_free",
        "orec_cas"
    );
    let mut run = |kind: RuntimeKind, arenas: bool, shards: usize, threads: usize| {
        // Best-of-N on a fresh system per repeat, damping scheduler noise.
        let cell = (0..repeats)
            .map(|_| measure(kind, arenas, shards, threads, iters))
            .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
            .expect("at least one repeat");
        println!(
            "{:<10} {:<7} {:>7} {:>8} {:>9.4} {:>11.0} {:>8} {:>12} {:>8} {:>12} {:>9}",
            cell.runtime.label(),
            cell.arenas,
            cell.shards,
            cell.threads,
            cell.seconds,
            cell.throughput(),
            cell.aborts,
            cell.arena_allocs,
            cell.refills,
            cell.remote_frees,
            cell.orec_cas,
        );
        check_plane_counters(&cell);
        cells.push(cell);
    };

    // Main sweep: one representative software runtime (the heap plane is
    // runtime-agnostic; the eager STM allocates on the same path as the
    // rest), arenas on/off crossed with shard counts and thread counts.
    for &shards in &shard_sweep {
        for arenas in [false, true] {
            for &threads in thread_sweep {
                run(RuntimeKind::EagerStm, arenas, shards, threads);
            }
        }
    }
    // Spot check: every other runtime drives the same churn with the plane
    // fully enabled.
    for kind in RuntimeKind::ALL {
        if kind != RuntimeKind::EagerStm {
            run(
                kind,
                true,
                default_orec_shards(),
                thread_sweep[thread_sweep.len() - 1],
            );
        }
    }

    // Headline throughput claims on the full run (smoke iteration counts
    // are too small to time); best-of-N already damps load spikes.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if !smoke {
        for &shards in &shard_sweep {
            let find = |arenas: bool, threads: usize| {
                cells
                    .iter()
                    .find(|c| {
                        c.runtime == RuntimeKind::EagerStm
                            && c.arenas == arenas
                            && c.shards == shards
                            && c.threads == threads
                    })
                    .expect("swept cell")
            };
            let (off1, on1) = (find(false, 1), find(true, 1));
            // On one core even best-of-N leaves scheduler noise well above
            // the arena overhead itself; widen the band there.
            let tolerance = if cores >= 2 { 1.05 } else { 1.15 };
            assert!(
                on1.seconds <= off1.seconds * tolerance,
                "shards={shards}: arenas cost too much single-threaded ({:.4}s vs {:.4}s)",
                on1.seconds,
                off1.seconds
            );
            let wide = thread_sweep[thread_sweep.len() - 1];
            let (off_w, on_w) = (find(false, wide), find(true, wide));
            if cores >= 2 {
                assert!(
                    on_w.throughput() > off_w.throughput(),
                    "shards={shards}: arenas did not win at {wide} threads ({:.0} vs {:.0} commits/s)",
                    on_w.throughput(),
                    off_w.throughput()
                );
            } else {
                // Timesliced workers never contend on the global lock, so
                // the win has nothing to win against; bound the overhead.
                assert!(
                    on_w.throughput() >= off_w.throughput() * 0.85,
                    "shards={shards}: arenas lost >15% at {wide} threads on one core ({:.0} vs {:.0} commits/s)",
                    on_w.throughput(),
                    off_w.throughput()
                );
            }
            println!(
                "  -> shards={shards}: 1t {:+.1}%, {wide}t {:+.1}% commits/s with arenas on",
                (on1.throughput() / off1.throughput() - 1.0) * 100.0,
                (on_w.throughput() / off_w.throughput() - 1.0) * 100.0,
            );
        }
    }

    let report = Value::obj(vec![
        ("experiment", Value::Str("memory_plane".to_string())),
        (
            "description",
            Value::Str(
                "alloc-heavy list churn vs per-thread heap arenas and orec shard counts"
                    .to_string(),
            ),
        ),
        ("iters_per_thread", Value::Num(iters as f64)),
        ("node_words", Value::Num(NODE_WORDS as f64)),
        ("list_cap", Value::Num(LIST_CAP as f64)),
        ("smoke", Value::Bool(smoke)),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("runtime", Value::Str(c.runtime.label().to_string())),
                            ("arenas", Value::Bool(c.arenas)),
                            ("shards", Value::Num(c.shards as f64)),
                            ("threads", Value::Num(c.threads as f64)),
                            ("seconds", Value::Num(c.seconds)),
                            ("commits", Value::Num(c.commits as f64)),
                            ("throughput", Value::Num(c.throughput())),
                            ("aborts", Value::Num(c.aborts as f64)),
                            ("arena_allocs", Value::Num(c.arena_allocs as f64)),
                            ("global_refills", Value::Num(c.refills as f64)),
                            ("remote_frees", Value::Num(c.remote_frees as f64)),
                            ("refill_ratio", Value::Num(c.refill_ratio())),
                            ("orec_cas_failures", Value::Num(c.orec_cas as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&json_path, report.pretty()).expect("write JSON report");
    println!("wrote {json_path}");
}
