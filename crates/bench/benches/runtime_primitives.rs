//! Criterion benchmarks of the raw transaction primitives each runtime
//! provides: read-only transactions, writer transactions, and the
//! empty-registry fast path of `wakeWaiters`.
//!
//! These numbers establish the baseline transaction costs that the
//! condition-synchronization mechanisms add to; the paper's claim is that
//! in-flight transactions (especially hardware ones) pay nothing beyond the
//! empty-waiter check.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use condsync::wake_waiters;
use tm_core::{TmConfig, TmVar};
use tm_workloads::runtime::RuntimeKind;

fn read_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_read_only_tx");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    for kind in RuntimeKind::ALL {
        for &reads in &[1usize, 16, 128] {
            let rt = kind.build(TmConfig::default().with_heap_words(1 << 12));
            let system = Arc::clone(rt.system());
            let arr: Vec<TmVar<u64>> = (0..reads)
                .map(|i| TmVar::alloc(&system, i as u64))
                .collect();
            let th = system.register_thread();
            group.bench_with_input(BenchmarkId::new(kind.label(), reads), &reads, |b, _| {
                b.iter(|| {
                    rt.atomically(&th, |tx| {
                        let mut sum = 0u64;
                        for v in &arr {
                            sum = sum.wrapping_add(v.get(tx)?);
                        }
                        Ok(sum)
                    })
                })
            });
        }
    }
    group.finish();
}

fn writer(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_writer_tx");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    for kind in RuntimeKind::ALL {
        for &writes in &[1usize, 16] {
            let rt = kind.build(TmConfig::default().with_heap_words(1 << 12));
            let system = Arc::clone(rt.system());
            let arr: Vec<TmVar<u64>> = (0..writes)
                .map(|i| TmVar::alloc(&system, i as u64))
                .collect();
            let th = system.register_thread();
            group.bench_with_input(BenchmarkId::new(kind.label(), writes), &writes, |b, _| {
                b.iter(|| {
                    rt.atomically(&th, |tx| {
                        for v in &arr {
                            let x = v.get(tx)?;
                            v.set(tx, x.wrapping_add(1))?;
                        }
                        Ok(())
                    })
                })
            });
        }
    }
    group.finish();
}

fn wake_waiters_empty(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_wake_waiters_empty");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    for kind in RuntimeKind::ALL {
        let rt = kind.build(TmConfig::default().with_heap_words(1 << 12));
        let system = Arc::clone(rt.system());
        let th = system.register_thread();
        group.bench_function(kind.label(), |b| b.iter(|| wake_waiters(rt.as_dyn(), &th)));
    }
    group.finish();
}

criterion_group!(benches, read_only, writer, wake_waiters_empty);
criterion_main!(benches);
