//! `timeout_scenarios` — throughput and timeout behaviour of timed waits.
//!
//! Sweeps the deschedule-based mechanisms (`Retry`, `Await`, `WaitPred`)
//! across all three runtimes on the stalling-pipeline scenario of
//! `tm_workloads::timeout`: producers stall periodically, consumers drain
//! with `consume_timeout`, and the interesting quantities are how many
//! deadlines fired, who delivered them (sleeper backstop vs lazily polled
//! timer wheel, visible as `timer_ticks`), and what the bounded waiting
//! costs in wall-clock terms.
//!
//! Output: a plain-text table on stdout, plus a JSON report (via
//! `tm_workloads::json`) written to `$TM_BENCH_JSON` (default
//! `BENCH_timeouts.json`) so CI can archive the trajectory.
//!
//! Environment:
//!
//! | variable            | meaning                                 | default |
//! |---------------------|-----------------------------------------|---------|
//! | `TM_BENCH_SMOKE=1`  | tiny iteration counts for CI smoke runs | off     |
//! | `TM_BENCH_ITEMS`    | items produced per cell                 | `2048`  |
//! | `TM_BENCH_JSON`     | JSON report path                        | `BENCH_timeouts.json` |

use condsync::Mechanism;
use tm_workloads::json::Value;
use tm_workloads::runtime::RuntimeKind;
use tm_workloads::timeout::{run_timeout_scenario, TimeoutParams};

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn main() {
    let smoke = env_flag("TM_BENCH_SMOKE");
    let items: u64 = std::env::var("TM_BENCH_ITEMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 64 } else { 2048 });
    let json_path =
        std::env::var("TM_BENCH_JSON").unwrap_or_else(|_| "BENCH_timeouts.json".to_string());

    let mechanisms = [Mechanism::Retry, Mechanism::Await, Mechanism::WaitPred];
    let mut cells = Vec::new();
    println!(
        "{:<10} {:<9} {:>7} {:>10} {:>9} {:>13} {:>11} {:>10}",
        "runtime",
        "mech",
        "items",
        "elapsed_ms",
        "timeouts",
        "rt_timeouts",
        "timer_ticks",
        "wakeups"
    );
    for kind in RuntimeKind::ALL {
        for mechanism in mechanisms {
            let params = TimeoutParams {
                total_items: items,
                ..TimeoutParams::smoke(mechanism)
            };
            let r = run_timeout_scenario(kind, params);
            assert_eq!(r.consumed, r.produced, "scenario must drain");
            assert!(r.checksum_ok, "value conservation");
            println!(
                "{:<10} {:<9} {:>7} {:>10.2} {:>9} {:>13} {:>11} {:>10}",
                kind.label(),
                mechanism.label(),
                r.produced,
                r.elapsed.as_secs_f64() * 1e3,
                r.timeouts,
                r.stats.wake_timeouts,
                r.stats.timer_ticks,
                r.stats.wakeups,
            );
            cells.push((kind, mechanism, r));
        }
    }

    let report = Value::obj(vec![
        ("experiment", Value::Str("timeout_scenarios".to_string())),
        (
            "description",
            Value::Str(
                "stalling-pipeline drain with per-op consume deadlines (timed Deschedule)"
                    .to_string(),
            ),
        ),
        ("items_per_cell", Value::Num(items as f64)),
        ("smoke", Value::Bool(smoke)),
        (
            "op_timeout_ms",
            Value::Num(
                TimeoutParams::smoke(Mechanism::Retry)
                    .op_timeout
                    .as_secs_f64()
                    * 1e3,
            ),
        ),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|(kind, mechanism, r)| {
                        Value::obj(vec![
                            ("runtime", Value::Str(kind.label().to_string())),
                            ("mechanism", Value::Str(mechanism.label().to_string())),
                            ("items", Value::Num(r.produced as f64)),
                            ("elapsed_ms", Value::Num(r.elapsed.as_secs_f64() * 1e3)),
                            ("observed_timeouts", Value::Num(r.timeouts as f64)),
                            ("wake_timeouts", Value::Num(r.stats.wake_timeouts as f64)),
                            ("wake_cancels", Value::Num(r.stats.wake_cancels as f64)),
                            ("timer_ticks", Value::Num(r.stats.timer_ticks as f64)),
                            ("wakeups", Value::Num(r.stats.wakeups as f64)),
                            ("sleeps", Value::Num(r.stats.sleeps as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&json_path, report.pretty()).expect("write JSON report");
    println!("wrote {json_path}");
}
