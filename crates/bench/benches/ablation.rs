//! Ablation benchmarks for the design choices called out in DESIGN.md §5.
//!
//! * `wake_scan` — the post-commit `wakeWaiters` cost as a function of how
//!   many transactions are asleep (the overhead the paper shifts from the
//!   writer's critical path to an after-commit scan).
//! * `silent_store` — value-based validation ignores writes that do not
//!   change a value, so a silent store's scan is as cheap as a no-waiter
//!   scan and never signals.
//! * `waitset_kind` — read instrumentation cost with the Retry value log
//!   (`SoftwareRetry` mode) versus without (plain software mode) versus the
//!   Retry-Orig style orec collection.
//! * `htm_fallback` — cost of a capacity-overflowing hardware transaction as
//!   the speculative-attempt budget grows (GCC's policy is 2).
//! * `quiescence` — writer commit cost with and without privatization-safety
//!   quiescence.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use condsync::{wake_waiters, Mechanism};
use tm_core::{
    Addr, HtmConfig, Semaphore, TmConfig, TmSystem, TmVar, Tx, TxResult, WaitCondition, Waiter,
};
use tm_workloads::runtime::RuntimeKind;
use tm_workloads::AnyRuntime;

/// `WaitPred` predicate used by the `await_vs_retry` ablation: the word at
/// `args[0]` is non-zero.
fn gate_nonzero(tx: &mut dyn Tx, args: &[u64]) -> TxResult<bool> {
    Ok(tx.read(Addr(args[0] as usize))? != 0)
}

fn group_defaults<'a>(
    c: &'a mut Criterion,
    name: &str,
) -> criterion::BenchmarkGroup<'a, criterion::measurement::WallTime> {
    let mut g = c.benchmark_group(name);
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));
    g
}

/// Registers `n` fake sleepers whose conditions never fire (their recorded
/// values match memory), so `wake_waiters` performs a full scan each call.
fn register_sleepers(system: &Arc<TmSystem>, n: usize) -> Vec<Arc<Waiter>> {
    (0..n)
        .map(|i| {
            let addr = Addr(64 + i);
            system.heap.store(addr, i as u64);
            let w = Waiter::new(
                1000 + i,
                WaitCondition::ValuesChanged(vec![(addr, i as u64)]),
                Arc::new(Semaphore::new()),
            );
            let stripes = w.condition.stripes(&system.orecs);
            system.waiters.register(Arc::clone(&w), &stripes);
            w
        })
        .collect()
}

fn wake_scan(c: &mut Criterion) {
    let mut group = group_defaults(c, "ablation_wake_scan");
    for &sleepers in &[0usize, 1, 4, 16, 64] {
        let rt = RuntimeKind::EagerStm.build(TmConfig::default().with_heap_words(1 << 12));
        let system = Arc::clone(rt.system());
        let _waiters = register_sleepers(&system, sleepers);
        let th = system.register_thread();
        group.bench_with_input(BenchmarkId::from_parameter(sleepers), &sleepers, |b, _| {
            b.iter(|| wake_waiters(rt.as_dyn(), &th))
        });
    }
    group.finish();
}

fn silent_store(c: &mut Criterion) {
    let mut group = group_defaults(c, "ablation_silent_store");
    // A writer transaction that stores the same value (silent) versus a new
    // value; with value-based validation the silent store must not pay for
    // waking anyone.
    for (label, delta) in [("silent", 0u64), ("changing", 1u64)] {
        let rt = RuntimeKind::EagerStm.build(TmConfig::default().with_heap_words(1 << 12));
        let system = Arc::clone(rt.system());
        let _waiters = register_sleepers(&system, 8);
        let watched = TmVar::<u64>::alloc(&system, 0);
        let th = system.register_thread();
        group.bench_function(label, |b| {
            b.iter(|| {
                rt.atomically(&th, |tx| {
                    let v = watched.get(tx)?;
                    watched.set(tx, v + delta)
                })
            })
        });
    }
    group.finish();
}

fn waitset_kind(c: &mut Criterion) {
    let mut group = group_defaults(c, "ablation_waitset_kind");
    const READS: usize = 64;

    // Plain software reads (no logging), value-logging reads (Retry), and a
    // transaction that ends with the Retry-Orig deschedule request denied by
    // an immediately-true condition (measures orec collection cost).
    let rt = RuntimeKind::EagerStm.build(TmConfig::default().with_heap_words(1 << 12));
    let system = Arc::clone(rt.system());
    let arr: Vec<TmVar<u64>> = (0..READS)
        .map(|i| TmVar::alloc(&system, i as u64))
        .collect();
    let th = system.register_thread();

    group.bench_function("plain_reads", |b| {
        b.iter(|| {
            rt.atomically(&th, |tx| {
                let mut sum = 0u64;
                for v in &arr {
                    sum = sum.wrapping_add(v.get(tx)?);
                }
                Ok(sum)
            })
        })
    });

    group.bench_function("value_logged_reads", |b| {
        // Force the value log by issuing a Retry on the first attempt; the
        // second attempt logs every read, observes the changed flag and
        // commits (measuring the logging overhead without sleeping).
        let flag = TmVar::<u64>::alloc(&system, 0);
        b.iter(|| {
            flag.store_direct(&system, 0);
            let mut first = true;
            rt.atomically(&th, |tx| {
                let mut sum = 0u64;
                for v in &arr {
                    sum = sum.wrapping_add(v.get(tx)?);
                }
                if first {
                    first = false;
                    flag.store_direct(&system, 1);
                    return condsync::retry(tx);
                }
                Ok(sum)
            })
        })
    });

    group.finish();
}

fn htm_fallback(c: &mut Criterion) {
    let mut group = group_defaults(c, "ablation_htm_fallback");
    const WRITES: usize = 256; // larger than the simulated write capacity

    for &attempts in &[1u32, 2, 4, 8] {
        let config = TmConfig::default()
            .with_heap_words(1 << 12)
            .with_htm(HtmConfig {
                max_read_lines: 512,
                max_write_lines: 8,
                max_attempts: attempts,
            });
        let rt = RuntimeKind::Htm.build(config);
        let system = Arc::clone(rt.system());
        let arr: Vec<TmVar<u64>> = (0..WRITES)
            .map(|i| TmVar::alloc(&system, i as u64))
            .collect();
        let th = system.register_thread();
        group.bench_with_input(BenchmarkId::from_parameter(attempts), &attempts, |b, _| {
            b.iter(|| {
                rt.atomically(&th, |tx| {
                    for v in &arr {
                        let x = v.get(tx)?;
                        v.set(tx, x.wrapping_add(1))?;
                    }
                    Ok(())
                })
            })
        });
    }
    group.finish();
}

fn quiescence(c: &mut Criterion) {
    let mut group = group_defaults(c, "ablation_quiescence");
    for (label, config) in [
        ("on", TmConfig::default().with_heap_words(1 << 12)),
        (
            "off",
            TmConfig::default()
                .with_heap_words(1 << 12)
                .without_quiescence(),
        ),
    ] {
        let rt: AnyRuntime = RuntimeKind::EagerStm.build(config);
        let system = Arc::clone(rt.system());
        let v = TmVar::<u64>::alloc(&system, 0);
        let th = system.register_thread();
        group.bench_function(label, |b| {
            b.iter(|| {
                rt.atomically(&th, |tx| {
                    let x = v.get(tx)?;
                    v.set(tx, x.wrapping_add(1))
                })
            })
        });
    }
    group.finish();
}

/// Retry tracks the whole read set while WaitPred tracks only its predicate;
/// measure the deschedule-request cost difference when the condition is
/// already satisfied (no sleeping, pure bookkeeping).
///
/// `Await` is deliberately absent from this group: its wait condition is
/// captured from memory *after* the rollback, so there is no way to make its
/// double-check succeed without a second thread, and a second thread would
/// turn the measurement into sleep/wake latency rather than bookkeeping.
fn await_vs_retry(c: &mut Criterion) {
    let mut group = group_defaults(c, "ablation_await_vs_retry");
    const READS: usize = 64;
    for mechanism in [Mechanism::Retry, Mechanism::WaitPred] {
        let rt = RuntimeKind::EagerStm.build(TmConfig::default().with_heap_words(1 << 12));
        let system = Arc::clone(rt.system());
        let arr: Vec<TmVar<u64>> = (0..READS)
            .map(|i| TmVar::alloc(&system, i as u64))
            .collect();
        let gate = TmVar::<u64>::alloc(&system, 0);
        let th = system.register_thread();
        group.bench_function(mechanism.label(), |b| {
            b.iter(|| {
                gate.store_direct(&system, 0);
                let mut first = true;
                rt.atomically(&th, |tx| {
                    let mut sum = 0u64;
                    for v in &arr {
                        sum = sum.wrapping_add(v.get(tx)?);
                    }
                    let g = gate.get(tx)?;
                    if g == 0 && first {
                        first = false;
                        // Establish the condition before descheduling so the
                        // double-check skips the sleep; what remains is the
                        // mechanism's bookkeeping cost.
                        gate.store_direct(&system, 1);
                        return match mechanism {
                            Mechanism::Await => condsync::await_one(tx, gate.addr()),
                            Mechanism::WaitPred => {
                                condsync::wait_pred(tx, gate_nonzero, &[gate.addr().0 as u64])
                            }
                            _ => condsync::retry(tx),
                        };
                    }
                    Ok(sum)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    wake_scan,
    silent_store,
    waitset_kind,
    htm_fallback,
    quiescence,
    await_vs_retry
);
criterion_main!(benches);
