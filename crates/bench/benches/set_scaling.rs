//! `set_scaling` — access-set cost as a function of transaction size.
//!
//! The shared access-set layer (`tm_core::access`) promises that the cost
//! of a read-after-write lookup does not depend on how large the write log
//! already is (hash index, was a reverse linear scan), and that re-executed
//! transactions stop allocating their logs (per-thread `LogPool`).  This
//! bench demonstrates both by sweeping the transaction size on every
//! runtime:
//!
//! * each measured transaction writes `size` distinct words and then reads
//!   every one of them back, so every read is a read-after-write hitting
//!   the write log.  With O(1) lookups the per-operation cost stays
//!   near-flat from 16 to 16384 addresses; the flat-`Vec` logs made it grow
//!   linearly (quadratic per transaction);
//! * the repetitions re-enter `atomically` on one thread, so every
//!   transaction after the first takes its containers from the pool —
//!   `log_pool_reuses` in the report shows the allocations that no longer
//!   happen, and `read_set_max`/`write_set_max` confirm the sets really
//!   reached the configured size.
//!
//! On the HTM simulator the large sizes necessarily exceed the simulated
//! line capacity and run in the serial fallback (uninstrumented reads); the
//! STM rows carry the headline claim, `stm-lazy` most directly since its
//! reads consult the redo log.  Note that the HTM rows' `read_set_max`
//! counts speculative read *lines*, not addresses (see
//! `tm_core::stats::StatsSnapshot::read_set_max`), so it is not comparable
//! 1:1 with the STM rows.
//!
//! Output: a plain-text table on stdout, plus a JSON report (via
//! `tm_workloads::json`) written to `$TM_BENCH_JSON` (default
//! `BENCH_set_scaling.json`) so CI can archive the perf trajectory.
//!
//! Environment:
//!
//! | variable           | meaning                                  | default |
//! |--------------------|------------------------------------------|---------|
//! | `TM_BENCH_SMOKE=1` | tiny iteration counts for CI smoke runs  | off     |
//! | `TM_BENCH_SIZES`   | comma list of transaction sizes (addrs)  | `16,64,256,1024,4096,16384` |
//! | `TM_BENCH_OPS`     | target read-after-write ops per cell     | `262144` |
//! | `TM_BENCH_JSON`    | JSON report path                         | `BENCH_set_scaling.json` |

use std::sync::Arc;
use std::time::Instant;

use tm_core::{Addr, TmConfig};
use tm_workloads::json::Value;
use tm_workloads::runtime::RuntimeKind;

struct Cell {
    runtime: RuntimeKind,
    size: usize,
    reps: u64,
    ns_per_op: f64,
    read_set_max: u64,
    write_set_max: u64,
    pool_reuses: u64,
}

fn measure(kind: RuntimeKind, size: usize, target_ops: u64) -> Cell {
    let rt = kind.build(TmConfig::default());
    let system = Arc::clone(rt.system());
    let th = system.register_thread();
    // Two disjoint regions: `rbase` is only ever read (populating the read
    // set), `wbase` is written then read back (populating the write log).
    let rbase = 64usize;
    let wbase = rbase + size;
    assert!(wbase + size < system.heap.len(), "heap too small for sweep");

    // One warm-up transaction grows the logs; everything measured afterwards
    // runs on recycled capacity.
    let reps = (target_ops / size as u64).max(1);
    let body = |tx: &mut dyn tm_core::Tx| {
        let mut acc = 0u64;
        for i in 0..size {
            // Validated read of an untouched location: enters the read set.
            acc = acc.wrapping_add(tx.read(Addr(rbase + i))?);
        }
        for i in 0..size {
            tx.write(Addr(wbase + i), i as u64)?;
        }
        for i in 0..size {
            // Read-after-write: served from the write log on the STMs.
            acc = acc.wrapping_add(tx.read(Addr(wbase + i))?);
        }
        Ok(acc)
    };
    let expected = (0..size as u64).sum::<u64>();
    assert_eq!(rt.atomically(&th, body), expected, "warm-up sanity");

    let before = th.stats.snapshot();
    let start = Instant::now();
    for _ in 0..reps {
        assert_eq!(rt.atomically(&th, body), expected);
    }
    let elapsed = start.elapsed();
    let after = th.stats.snapshot();

    Cell {
        runtime: kind,
        size,
        reps,
        // Three log operations per address per repetition: the validated
        // read, the logged write, and the read-after-write lookup.
        ns_per_op: elapsed.as_nanos() as f64 / (reps * 3 * size as u64) as f64,
        read_set_max: after.read_set_max,
        write_set_max: after.write_set_max,
        pool_reuses: after.log_pool_reuses - before.log_pool_reuses,
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

fn main() {
    let smoke = env_flag("TM_BENCH_SMOKE");
    let sizes = env_list(
        "TM_BENCH_SIZES",
        if smoke {
            &[16, 256]
        } else {
            &[16, 64, 256, 1024, 4096, 16384]
        },
    );
    let target_ops: u64 = std::env::var("TM_BENCH_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 8192 } else { 262_144 });
    let json_path =
        std::env::var("TM_BENCH_JSON").unwrap_or_else(|_| "BENCH_set_scaling.json".to_string());

    let mut cells = Vec::new();
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>13} {:>14} {:>12}",
        "runtime", "size", "reps", "ns/op", "read_set_max", "write_set_max", "pool_reuses"
    );
    for kind in RuntimeKind::ALL {
        for &size in &sizes {
            let cell = measure(kind, size, target_ops);
            println!(
                "{:<10} {:>8} {:>8} {:>10.1} {:>13} {:>14} {:>12}",
                cell.runtime.label(),
                cell.size,
                cell.reps,
                cell.ns_per_op,
                cell.read_set_max,
                cell.write_set_max,
                cell.pool_reuses,
            );
            cells.push(cell);
        }
        // The headline claim: per-op cost at the largest size stays within a
        // small factor of the smallest (the flat-log implementation grew
        // linearly with the write-log size).
        let per_kind: Vec<&Cell> = cells.iter().filter(|c| c.runtime == kind).collect();
        if let (Some(first), Some(last)) = (per_kind.first(), per_kind.last()) {
            if first.size < last.size && first.ns_per_op > 0.0 {
                println!(
                    "  -> {}: {}-addr txs cost {:.2}x per op vs {}-addr txs",
                    kind.label(),
                    last.size,
                    last.ns_per_op / first.ns_per_op,
                    first.size,
                );
            }
        }
    }

    let report = Value::obj(vec![
        ("experiment", Value::Str("set_scaling".to_string())),
        (
            "description",
            Value::Str(
                "per-op access-set cost vs transaction size (hash-indexed logs + pool)".to_string(),
            ),
        ),
        ("target_ops_per_cell", Value::Num(target_ops as f64)),
        ("smoke", Value::Bool(smoke)),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("runtime", Value::Str(c.runtime.label().to_string())),
                            ("size", Value::Num(c.size as f64)),
                            ("reps", Value::Num(c.reps as f64)),
                            ("ns_per_op", Value::Num(c.ns_per_op)),
                            ("read_set_max", Value::Num(c.read_set_max as f64)),
                            ("write_set_max", Value::Num(c.write_set_max as f64)),
                            ("log_pool_reuses", Value::Num(c.pool_reuses as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&json_path, report.pretty()).expect("write JSON report");
    println!("wrote {json_path}");
}
