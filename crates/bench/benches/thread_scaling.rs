//! `thread_scaling` — commit throughput and abort rate versus thread count,
//! across every runtime and both clock-plane modes.
//!
//! The decentralized clock plane promises that an *uncontended* commit never
//! writes shared state: under lazy GV5 a committing writer reuses `now()+1`
//! as its stamp (counted in `clock_reuse`) and the shared counter is only
//! CAS-advanced when validation actually observes a too-new version
//! (`clock_cas`), while quiescence scans the per-thread epoch table instead
//! of snapshotting a locked registry (`quiesce_scans`).  This bench drives
//! the claim with the worst case for a centralized clock: every thread
//! committing small writer transactions over *disjoint* data, so the GV1
//! counter line is the only thing they share.
//!
//! Each cell spawns `threads` workers; each worker increments its own
//! private block of transactional counters `iters` times.  The sweep runs
//! all four runtimes under both `ClockMode::Gv1` (centralized baseline) and
//! `ClockMode::LazyGv5` (decentralized default) and records throughput,
//! aborts, and the clock-plane counters.  On every lazy cell the bench
//! asserts the headline property: **shared-line CAS count strictly below the
//! commit count** (i.e. `clock_cas` per commit < 1 on the uncontended
//! sweep).
//!
//! Output: a plain-text table on stdout plus a JSON report (via
//! `tm_workloads::json`) written to `$TM_BENCH_JSON` (default
//! `BENCH_thread_scaling.json`), matching the `mode_ladder` / `wake_scaling`
//! conventions so CI can archive the trajectory.
//!
//! Environment:
//!
//! | variable            | meaning                                  | default |
//! |---------------------|------------------------------------------|---------|
//! | `TM_BENCH_SMOKE=1`  | tiny sweep + iteration counts for CI     | off     |
//! | `TM_BENCH_ITERS`    | transactions per worker per cell         | `20000` |
//! | `TM_BENCH_REPEATS`  | runs per cell (fastest kept)             | `3` (smoke `1`) |
//! | `TM_BENCH_JSON`     | JSON report path                         | `BENCH_thread_scaling.json` |

use std::sync::{Arc, Barrier};
use std::time::Instant;

use tm_core::{ClockMode, TmConfig, TmVar};
use tm_workloads::json::Value;
use tm_workloads::runtime::RuntimeKind;

/// Disjoint counters each worker increments per transaction: enough to make
/// the transaction non-trivial (a few reads + writes) without contention.
const VARS_PER_THREAD: usize = 4;

const MODES: [ClockMode; 2] = [ClockMode::Gv1, ClockMode::LazyGv5];

struct Cell {
    runtime: RuntimeKind,
    mode: ClockMode,
    threads: usize,
    seconds: f64,
    commits: u64,
    aborts: u64,
    clock_cas: u64,
    clock_reuse: u64,
    quiesce_scans: u64,
}

impl Cell {
    fn throughput(&self) -> f64 {
        self.commits as f64 / self.seconds
    }

    fn abort_rate(&self) -> f64 {
        let attempts = self.commits + self.aborts;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    fn cas_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.clock_cas as f64 / self.commits as f64
        }
    }
}

fn measure(kind: RuntimeKind, mode: ClockMode, threads: usize, iters: u64) -> Cell {
    let config = TmConfig::default()
        .with_heap_words(1 << 12)
        .with_clock(mode);
    let rt = kind.build(config);
    let system = Arc::clone(rt.system());
    // One private block of counters per worker: disjoint addresses, so the
    // only shared mutable state is the runtime's own metadata.
    let blocks: Vec<Vec<TmVar<u64>>> = (0..threads)
        .map(|_| {
            (0..VARS_PER_THREAD)
                .map(|_| TmVar::alloc(&system, 0))
                .collect()
        })
        .collect();
    let barrier = Barrier::new(threads + 1);
    let mut start = None;
    std::thread::scope(|s| {
        for block in &blocks {
            let rt = rt.clone();
            let system = Arc::clone(&system);
            let barrier = &barrier;
            s.spawn(move || {
                let th = system.register_thread();
                barrier.wait();
                for _ in 0..iters {
                    rt.atomically(&th, |tx| {
                        for v in block {
                            let x = v.get(tx)?;
                            v.set(tx, x + 1)?;
                        }
                        Ok(())
                    });
                }
            });
        }
        // Start the stopwatch *before* releasing the barrier: on a loaded
        // (or single-core) host the workers can otherwise run to completion
        // before this thread is rescheduled to read the clock.  Scope exit
        // joins every worker; the elapsed time is read after it.
        start = Some(Instant::now());
        barrier.wait();
    });
    let seconds = start.expect("barrier passed").elapsed().as_secs_f64();
    for block in &blocks {
        for v in block {
            assert_eq!(
                v.load_direct(&system),
                iters,
                "{kind} {mode:?} lost updates"
            );
        }
    }
    let stats = system.stats();
    Cell {
        runtime: kind,
        mode,
        threads,
        seconds,
        commits: stats.hw_commits + stats.sw_commits + stats.serial_commits,
        aborts: stats.total_aborts(),
        clock_cas: stats.clock_cas,
        clock_reuse: stats.clock_reuse,
        quiesce_scans: stats.quiesce_scans,
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn main() {
    let smoke = env_flag("TM_BENCH_SMOKE");
    let iters: u64 = std::env::var("TM_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1000 } else { 20000 });
    let repeats: usize = std::env::var("TM_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 1 } else { 3 })
        .max(1);
    let json_path =
        std::env::var("TM_BENCH_JSON").unwrap_or_else(|_| "BENCH_thread_scaling.json".to_string());
    let sweep: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut cells = Vec::new();
    println!(
        "{:<10} {:<9} {:>7} {:>9} {:>11} {:>9} {:>10} {:>11} {:>12} {:>8}",
        "runtime",
        "clock",
        "threads",
        "seconds",
        "commits/s",
        "aborts",
        "clock_cas",
        "clock_reuse",
        "quiesce_scan",
        "cas/cmt"
    );
    for kind in RuntimeKind::ALL {
        for mode in MODES {
            for &threads in sweep {
                // Best-of-N: each repeat runs on a fresh system; keep the
                // fastest to damp scheduler noise on loaded hosts.
                let cell = (0..repeats)
                    .map(|_| measure(kind, mode, threads, iters))
                    .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
                    .expect("at least one repeat");
                println!(
                    "{:<10} {:<9} {:>7} {:>9.4} {:>11.0} {:>9} {:>10} {:>11} {:>12} {:>8.4}",
                    cell.runtime.label(),
                    cell.mode.label(),
                    cell.threads,
                    cell.seconds,
                    cell.throughput(),
                    cell.aborts,
                    cell.clock_cas,
                    cell.clock_reuse,
                    cell.quiesce_scans,
                    cell.cas_per_commit(),
                );
                cells.push(cell);
            }
        }
    }

    // Headline claims, checked on every run (smoke included): on the
    // uncontended sweep the lazy clock (a) stamps commits by reuse, and
    // (b) writes the shared counter line strictly less than once per commit.
    for cell in cells.iter().filter(|c| c.mode == ClockMode::LazyGv5) {
        // Pure HTM commits through the simulated cache protocol and never
        // touches the clock plane at all; every other runtime must have
        // stamped its commits by reuse.
        if cell.runtime != RuntimeKind::Htm {
            assert!(
                cell.clock_reuse > 0,
                "{}/{}t: lazy mode produced no reuse stamps",
                cell.runtime.label(),
                cell.threads
            );
        }
        assert!(
            cell.clock_cas < cell.commits,
            "{}/{}t: clock_cas {} >= commits {} — shared-line writes did not drop",
            cell.runtime.label(),
            cell.threads,
            cell.clock_cas,
            cell.commits
        );
    }
    for (kind, threads) in [
        (RuntimeKind::EagerStm, sweep[sweep.len() - 1]),
        (RuntimeKind::LazyStm, sweep[sweep.len() - 1]),
    ] {
        let gv1 = cells
            .iter()
            .find(|c| c.runtime == kind && c.mode == ClockMode::Gv1 && c.threads == threads)
            .expect("gv1 cell");
        let lazy = cells
            .iter()
            .find(|c| c.runtime == kind && c.mode == ClockMode::LazyGv5 && c.threads == threads)
            .expect("lazy cell");
        println!(
            "  -> {} @ {}t: lazy {:.0} commits/s vs gv1 {:.0} ({:+.1}%), lazy cas/commit {:.4}",
            kind.label(),
            threads,
            lazy.throughput(),
            gv1.throughput(),
            (lazy.throughput() / gv1.throughput() - 1.0) * 100.0,
            lazy.cas_per_commit(),
        );
    }

    let report = Value::obj(vec![
        ("experiment", Value::Str("thread_scaling".to_string())),
        (
            "description",
            Value::Str(
                "commit throughput and abort rate vs thread count, gv1 vs lazy-gv5 clock plane"
                    .to_string(),
            ),
        ),
        ("iters_per_thread", Value::Num(iters as f64)),
        ("vars_per_thread", Value::Num(VARS_PER_THREAD as f64)),
        ("smoke", Value::Bool(smoke)),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("runtime", Value::Str(c.runtime.label().to_string())),
                            ("clock", Value::Str(c.mode.label().to_string())),
                            ("threads", Value::Num(c.threads as f64)),
                            ("seconds", Value::Num(c.seconds)),
                            ("commits", Value::Num(c.commits as f64)),
                            ("throughput", Value::Num(c.throughput())),
                            ("aborts", Value::Num(c.aborts as f64)),
                            ("abort_rate", Value::Num(c.abort_rate())),
                            ("clock_cas", Value::Num(c.clock_cas as f64)),
                            ("clock_reuse", Value::Num(c.clock_reuse as f64)),
                            ("quiesce_scans", Value::Num(c.quiesce_scans as f64)),
                            ("cas_per_commit", Value::Num(c.cas_per_commit())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&json_path, report.pretty()).expect("write JSON report");
    println!("wrote {json_path}");
}
