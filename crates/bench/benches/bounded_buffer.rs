//! Criterion micro-benchmarks behind Figures 2.3–2.5: the cost of one
//! produce/consume round-trip on the bounded buffer, per mechanism and per
//! runtime.
//!
//! The figure binaries measure end-to-end trial times with real concurrency;
//! these benches isolate the single-threaded per-operation overhead each
//! mechanism adds (instrumentation, wake-up checks), which is the component
//! the paper attributes the p1c1/p2c2/p4c4 differences to.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tm_workloads::runtime::RuntimeKind;
use tm_workloads::{AnyRuntime, PcParams};

use condsync::Mechanism;
use tm_core::TmConfig;
use tm_sync::TmBoundedBuffer;

fn roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_roundtrip");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));

    for kind in RuntimeKind::ALL {
        for mechanism in [
            Mechanism::TmCondVar,
            Mechanism::WaitPred,
            Mechanism::Await,
            Mechanism::Retry,
            Mechanism::Restart,
        ] {
            let rt: AnyRuntime = kind.build(TmConfig::default().with_heap_words(1 << 12));
            let system = Arc::clone(rt.system());
            let buffer = TmBoundedBuffer::new(&system, 16);
            buffer.prefill(&system, 8);
            let th = system.register_thread();
            group.bench_with_input(
                BenchmarkId::new(kind.label(), mechanism.label()),
                &mechanism,
                |b, &mechanism| {
                    b.iter(|| {
                        rt.atomically(&th, |tx| buffer.produce(mechanism, tx, 7));
                        rt.atomically(&th, |tx| buffer.consume(mechanism, tx))
                    })
                },
            );
        }
    }
    group.finish();
}

fn pthread_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_roundtrip_pthreads");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    let buffer = tm_sync::PthreadBuffer::new(16);
    buffer.prefill(8);
    group.bench_function("pthreads", |b| {
        b.iter(|| {
            buffer.produce(7);
            buffer.consume()
        })
    });
    group.finish();
}

fn small_trial(c: &mut Criterion) {
    // A whole (tiny) trial per iteration: 1 producer, 1 consumer, 512 items.
    // This is the shape of one Figure 2.3 data point, scaled down ~2000×.
    let mut group = c.benchmark_group("buffer_trial_p1c1");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    for mechanism in [Mechanism::Pthreads, Mechanism::Retry, Mechanism::Restart] {
        group.bench_function(mechanism.label(), |b| {
            b.iter(|| {
                let params = PcParams::new(1, 1, 16, 512, mechanism);
                tm_workloads::run_pc(RuntimeKind::EagerStm, &params)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, roundtrip, pthread_baseline, small_trial);
criterion_main!(benches);
