//! `wake_scaling` — writer-commit cost as a function of how many sleepers
//! are registered, and *where*.
//!
//! The sharded waiter registry promises that a committing writer's wake work
//! scales with the sleepers its write set can actually affect, not with
//! every sleeper in the system.  This bench demonstrates it by sweeping
//! sleeper count × placement on every runtime:
//!
//! * `disjoint` — sleepers wait on addresses whose registry shards are
//!   disjoint from the writer's write set.  A targeted scan skips them all,
//!   so per-commit cost should stay within a small factor of the
//!   zero-sleeper baseline (the pre-shard linear scan grew linearly here).
//! * `overlap` — sleepers wait on the written address itself (with silent
//!   stores so they are scanned but never signalled).  This is the
//!   unavoidable cost: the writer must evaluate every sleeper that could be
//!   affected.
//!
//! Output: a plain-text table on stdout, plus a JSON report (via
//! `tm_workloads::json`) written to `$TM_BENCH_JSON` (default
//! `BENCH_wake_scaling.json`) so CI can archive the perf trajectory.
//!
//! Environment:
//!
//! | variable            | meaning                                 | default |
//! |---------------------|-----------------------------------------|---------|
//! | `TM_BENCH_SMOKE=1`  | tiny iteration counts for CI smoke runs | off     |
//! | `TM_BENCH_SLEEPERS` | comma list of sleeper counts            | `0,16,64,256` |
//! | `TM_BENCH_COMMITS`  | writer commits measured per cell        | `3000`  |
//! | `TM_BENCH_JSON`     | JSON report path                        | `BENCH_wake_scaling.json` |

use std::sync::Arc;
use std::time::Instant;

use tm_core::{Addr, Semaphore, TmConfig, TmSystem, WaitCondition, Waiter};
use tm_workloads::json::Value;
use tm_workloads::runtime::RuntimeKind;

#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Placement {
    Disjoint,
    Overlap,
}

impl Placement {
    fn label(self) -> &'static str {
        match self {
            Placement::Disjoint => "disjoint",
            Placement::Overlap => "overlap",
        }
    }
}

struct Cell {
    runtime: RuntimeKind,
    placement: Placement,
    sleepers: usize,
    commits: u64,
    ns_per_commit: f64,
    wake_checks: u64,
    shard_scans: u64,
    shard_skips: u64,
    targeted: u64,
}

/// The registry shards a write to `addr` can touch on any runtime (hardware
/// commits report the whole cache line's stripe cover, derived from the
/// same `OrecTable::line_indices`).
fn writer_shards(system: &TmSystem, addr: Addr) -> Vec<usize> {
    system
        .orecs
        .line_indices(addr.line())
        .map(|stripe| system.waiters.shard_of(stripe))
        .collect()
}

/// Registers `n` parked waiter records whose conditions never fire.
///
/// `Disjoint` placement picks addresses whose shards avoid the writer's;
/// `Overlap` parks everyone on the written address itself (recorded value ==
/// memory, so silent stores scan but never signal).
fn park_sleepers(
    system: &Arc<TmSystem>,
    n: usize,
    placement: Placement,
    writer_addr: Addr,
) -> Vec<(Arc<Waiter>, Vec<usize>)> {
    let forbidden = writer_shards(system, writer_addr);
    let mut parked = Vec::with_capacity(n);
    let mut candidate = 64usize;
    for i in 0..n {
        let addr = match placement {
            Placement::Overlap => writer_addr,
            Placement::Disjoint => loop {
                let a = Addr(candidate);
                candidate += 1;
                assert!(candidate < system.heap.len(), "heap exhausted");
                let shard = system.waiters.shard_of(system.orecs.index_for(a));
                if !forbidden.contains(&shard) {
                    break a;
                }
            },
        };
        let recorded = system.heap.load(addr);
        let w = Waiter::new(
            1000 + i,
            WaitCondition::ValuesChanged(vec![(addr, recorded)]),
            Arc::new(Semaphore::new()),
        );
        let stripes = w.condition.stripes(&system.orecs);
        system.waiters.register(Arc::clone(&w), &stripes);
        parked.push((w, stripes));
    }
    parked
}

fn measure(kind: RuntimeKind, placement: Placement, sleepers: usize, commits: u64) -> Cell {
    let rt = kind.build(TmConfig::small());
    let system = Arc::clone(rt.system());
    let writer_addr = Addr(2048);
    // Pre-establish the value the writer will keep storing, so overlap
    // sleepers see silent stores (scanned, never woken).
    system.heap.store(writer_addr, 42);
    let parked = park_sleepers(&system, sleepers, placement, writer_addr);
    let th = system.register_thread();

    // Warm up the commit path once before timing.
    rt.atomically(&th, |tx| tx.write(writer_addr, 42));
    let before = th.stats.snapshot();
    let start = Instant::now();
    for _ in 0..commits {
        rt.atomically(&th, |tx| tx.write(writer_addr, 42));
    }
    let elapsed = start.elapsed();
    let after = th.stats.snapshot();

    for (w, stripes) in &parked {
        assert!(w.is_asleep(), "bench sleepers must never be signalled");
        system.waiters.deregister(w, stripes);
    }

    Cell {
        runtime: kind,
        placement,
        sleepers,
        commits,
        ns_per_commit: elapsed.as_nanos() as f64 / commits as f64,
        wake_checks: after.wake_checks - before.wake_checks,
        shard_scans: after.wake_shard_scans - before.wake_shard_scans,
        shard_skips: after.wake_shard_skips - before.wake_shard_skips,
        targeted: after.wake_targeted - before.wake_targeted,
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name).map(|v| v == "1").unwrap_or(false)
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    match std::env::var(name) {
        Ok(v) => v.split(',').filter_map(|s| s.trim().parse().ok()).collect(),
        Err(_) => default.to_vec(),
    }
}

fn main() {
    let smoke = env_flag("TM_BENCH_SMOKE");
    let sleepers = env_list(
        "TM_BENCH_SLEEPERS",
        if smoke { &[0, 8] } else { &[0, 16, 64, 256] },
    );
    let commits: u64 = std::env::var("TM_BENCH_COMMITS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 50 } else { 3000 });
    let json_path =
        std::env::var("TM_BENCH_JSON").unwrap_or_else(|_| "BENCH_wake_scaling.json".to_string());

    let mut cells = Vec::new();
    println!(
        "{:<10} {:<9} {:>8} {:>12} {:>12} {:>11} {:>11} {:>9}",
        "runtime",
        "placement",
        "sleepers",
        "ns/commit",
        "wake_checks",
        "shard_scans",
        "shard_skips",
        "targeted"
    );
    for kind in RuntimeKind::ALL {
        for placement in [Placement::Disjoint, Placement::Overlap] {
            for &n in &sleepers {
                let cell = measure(kind, placement, n, commits);
                println!(
                    "{:<10} {:<9} {:>8} {:>12.1} {:>12} {:>11} {:>11} {:>9}",
                    cell.runtime.label(),
                    cell.placement.label(),
                    cell.sleepers,
                    cell.ns_per_commit,
                    cell.wake_checks,
                    cell.shard_scans,
                    cell.shard_skips,
                    cell.targeted,
                );
                cells.push(cell);
            }
        }
        // The headline claim: commit cost with N disjoint sleepers stays
        // close to the zero-sleeper baseline.
        let base = cells
            .iter()
            .find(|c| c.runtime == kind && c.placement == Placement::Disjoint && c.sleepers == 0);
        let worst = cells
            .iter()
            .filter(|c| c.runtime == kind && c.placement == Placement::Disjoint)
            .max_by_key(|c| c.sleepers);
        if let (Some(base), Some(worst)) = (base, worst) {
            if worst.sleepers > 0 && base.ns_per_commit > 0.0 {
                println!(
                    "  -> {}: {} disjoint sleepers cost {:.2}x the zero-sleeper baseline",
                    kind.label(),
                    worst.sleepers,
                    worst.ns_per_commit / base.ns_per_commit
                );
            }
        }
    }

    let report = Value::obj(vec![
        ("experiment", Value::Str("wake_scaling".to_string())),
        (
            "description",
            Value::Str(
                "writer-commit cost vs sleeper count and placement (sharded waiter registry)"
                    .to_string(),
            ),
        ),
        ("commits_per_cell", Value::Num(commits as f64)),
        ("smoke", Value::Bool(smoke)),
        (
            "cells",
            Value::Arr(
                cells
                    .iter()
                    .map(|c| {
                        Value::obj(vec![
                            ("runtime", Value::Str(c.runtime.label().to_string())),
                            ("placement", Value::Str(c.placement.label().to_string())),
                            ("sleepers", Value::Num(c.sleepers as f64)),
                            ("commits", Value::Num(c.commits as f64)),
                            ("ns_per_commit", Value::Num(c.ns_per_commit)),
                            ("wake_checks", Value::Num(c.wake_checks as f64)),
                            ("wake_shard_scans", Value::Num(c.shard_scans as f64)),
                            ("wake_shard_skips", Value::Num(c.shard_skips as f64)),
                            ("wake_targeted", Value::Num(c.targeted as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    std::fs::write(&json_path, report.pretty()).expect("write JSON report");
    println!("wrote {json_path}");
}
