//! Regenerates Figure 2.6: PARSEC-like kernel runtime versus thread count on
//! the **eager STM** runtime.
//!
//! ```text
//! cargo run --release -p tm-bench --bin fig2_6
//! TM_EXP_SCALE=small cargo run --release -p tm-bench --bin fig2_6
//! ```

use tm_bench::{emit, parsec_figure, FigureOptions};
use tm_workloads::runtime::RuntimeKind;

fn main() {
    let opts = FigureOptions::from_env();
    let report = parsec_figure(RuntimeKind::EagerStm, &opts);
    emit(&report);
}
