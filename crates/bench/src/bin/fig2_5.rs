//! Regenerates Figure 2.5: bounded-buffer producer/consumer performance on
//! the **HTM** (simulated best-effort hardware TM) runtime.  `Retry-Orig` is
//! omitted, as in the paper, because it requires STM lock metadata.
//!
//! ```text
//! cargo run --release -p tm-bench --bin fig2_5
//! ```

use tm_bench::{bounded_buffer_figure, emit, FigureOptions};
use tm_workloads::runtime::RuntimeKind;

fn main() {
    let opts = FigureOptions::from_env();
    let report = bounded_buffer_figure(RuntimeKind::Htm, &opts);
    emit(&report);
}
