//! Runs the complete evaluation: Figures 2.3–2.8 and Table 2.1, writing each
//! report to `target/experiments/` and printing a cross-figure summary of who
//! wins where (the qualitative shape EXPERIMENTS.md records).
//!
//! ```text
//! cargo run --release -p tm-bench --bin all_experiments
//! TM_EXP_FULL=1 cargo run --release -p tm-bench --bin all_experiments
//! ```

use tm_bench::{bounded_buffer_figure, emit, parsec_figure, table_2_1, FigureOptions};
use tm_workloads::report::Report;
use tm_workloads::runtime::RuntimeKind;

fn summarize(report: &Report) {
    println!(
        "== {} [{}] — winners per panel ==",
        report.experiment, report.runtime
    );
    for panel in &report.panels {
        let xs = panel.xs();
        let winners: Vec<String> = xs
            .iter()
            .filter_map(|&x| panel.winner_at(x).map(|m| format!("{x}: {m}")))
            .collect();
        println!("  {:<16} {}", panel.label, winners.join(", "));
    }
    println!();
}

fn main() {
    let opts = FigureOptions::from_env();

    println!("=== Producer/consumer micro-benchmark (Figures 2.3–2.5) ===\n");
    let mut reports = Vec::new();
    for kind in RuntimeKind::ALL {
        let report = bounded_buffer_figure(kind, &opts);
        emit(&report);
        reports.push(report);
    }

    println!("=== PARSEC-like kernels (Figures 2.6–2.8) ===\n");
    for kind in RuntimeKind::ALL {
        let report = parsec_figure(kind, &opts);
        emit(&report);
        reports.push(report);
    }

    println!("=== Table 2.1 ===\n");
    print!("{}", table_2_1());
    println!();

    println!("=== Summary ===\n");
    for report in &reports {
        summarize(report);
    }
}
