//! Regenerates Table 2.1: lines of code added and removed per PARSEC
//! benchmark for each condition-synchronization mechanism.
//!
//! Prints the paper's reported numbers followed by this reproduction's
//! measured adapter-line counts for the synthetic kernels.
//!
//! ```text
//! cargo run --release -p tm-bench --bin table2_1
//! ```

fn main() {
    print!("{}", tm_bench::table_2_1());
}
