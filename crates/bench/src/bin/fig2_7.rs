//! Regenerates Figure 2.7: PARSEC-like kernel runtime versus thread count on
//! the **lazy STM** runtime.
//!
//! ```text
//! cargo run --release -p tm-bench --bin fig2_7
//! ```

use tm_bench::{emit, parsec_figure, FigureOptions};
use tm_workloads::runtime::RuntimeKind;

fn main() {
    let opts = FigureOptions::from_env();
    let report = parsec_figure(RuntimeKind::LazyStm, &opts);
    emit(&report);
}
