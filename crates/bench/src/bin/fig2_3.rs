//! Regenerates Figure 2.3: bounded-buffer producer/consumer performance on
//! the **eager STM** (undo-log) runtime.
//!
//! ```text
//! cargo run --release -p tm-bench --bin fig2_3
//! TM_EXP_FULL=1 cargo run --release -p tm-bench --bin fig2_3   # paper scale
//! ```

use tm_bench::{bounded_buffer_figure, emit, FigureOptions};
use tm_workloads::runtime::RuntimeKind;

fn main() {
    let opts = FigureOptions::from_env();
    let report = bounded_buffer_figure(RuntimeKind::EagerStm, &opts);
    emit(&report);
}
