//! Regenerates Figure 2.8: PARSEC-like kernel runtime versus thread count on
//! the **HTM** (simulated) runtime.  `Retry-Orig` is omitted, as in the paper.
//!
//! ```text
//! cargo run --release -p tm-bench --bin fig2_8
//! ```

use tm_bench::{emit, parsec_figure, FigureOptions};
use tm_workloads::runtime::RuntimeKind;

fn main() {
    let opts = FigureOptions::from_env();
    let report = parsec_figure(RuntimeKind::Htm, &opts);
    emit(&report);
}
