//! Regenerates Figure 2.4: bounded-buffer producer/consumer performance on
//! the **lazy STM** (redo-log, TL2-style) runtime.
//!
//! ```text
//! cargo run --release -p tm-bench --bin fig2_4
//! ```

use tm_bench::{bounded_buffer_figure, emit, FigureOptions};
use tm_workloads::runtime::RuntimeKind;

fn main() {
    let opts = FigureOptions::from_env();
    let report = bounded_buffer_figure(RuntimeKind::LazyStm, &opts);
    emit(&report);
}
