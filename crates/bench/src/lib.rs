//! The experiment harness that regenerates every figure and table of the
//! paper's evaluation (§2.4).
//!
//! Each figure binary (`fig2_3` … `fig2_8`, `table2_1`) is a thin wrapper
//! around the sweep functions in this library:
//!
//! * [`bounded_buffer_figure`] — Figures 2.3 (eager STM), 2.4 (lazy STM) and
//!   2.5 (HTM): the producer/consumer micro-benchmark swept over
//!   producer/consumer counts and buffer sizes.
//! * [`parsec_figure`] — Figures 2.6–2.8: the eight PARSEC-like kernels swept
//!   over thread counts.
//! * [`table_2_1`] — Table 2.1: lines-of-code accounting, paper numbers and
//!   this reproduction's measured numbers side by side.
//!
//! The sweeps default to a scaled-down configuration so that a full figure
//! regenerates in minutes on a small machine (the reproduction's host has a
//! single core; the paper used 4 cores / 8 threads).  The `TM_EXP_*`
//! environment variables restore the paper's full parameters:
//!
//! | variable          | meaning                                     | default |
//! |-------------------|---------------------------------------------|---------|
//! | `TM_EXP_FULL=1`   | paper-scale items, panels, trials           | off     |
//! | `TM_EXP_ITEMS`    | items produced+consumed per micro trial     | 16384   |
//! | `TM_EXP_TRIALS`   | trials averaged per point                   | 2       |
//! | `TM_EXP_PC`       | comma list of `p.c` panels (e.g. `1.1,2.4`) | `1.1,1.2,2.1,2.2,4.4` |
//! | `TM_EXP_BUFFERS`  | comma list of buffer sizes                  | `4,16,128` |
//! | `TM_EXP_THREADS`  | comma list of thread counts (PARSEC)        | `1,2,4,8` |
//! | `TM_EXP_SCALE`    | PARSEC kernel scale: `test`, `small`, `full`| `test`  |
//!
//! The bounded-buffer sweep additionally honors the `TM_FAULT_*` knobs
//! (see [`tm_core::FaultConfig::from_env`]): setting any of them layers the
//! deterministic fault-injection plane under the HTM runtimes for every
//! trial, and the report gains a `fault_injection` note recording the
//! configuration.  The memory-plane knobs `TM_OREC_SHARDS` and
//! `TM_HEAP_ARENAS` (see [`tm_core::TmConfig::with_mem_plane_env`]) are
//! honored the same way, and the report header always records the values
//! in effect.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io;
use std::path::{Path, PathBuf};

use condsync::Mechanism;
use tm_core::{FaultConfig, TmConfig};
use tm_workloads::loc;
use tm_workloads::parsec::{KernelParams, ParsecApp, Scale};
use tm_workloads::pc::{run_pc_configured, PcParams};
use tm_workloads::report::{DataPoint, Report};
use tm_workloads::runtime::RuntimeKind;

/// Sweep configuration shared by the figure binaries.
#[derive(Debug, Clone)]
pub struct FigureOptions {
    /// Items produced (and consumed) per micro-benchmark trial.
    pub items: u64,
    /// Trials averaged per data point (the paper averages 5).
    pub trials: u32,
    /// Producer/consumer panel pairs for Figures 2.3–2.5.
    pub pc_panels: Vec<(usize, usize)>,
    /// Buffer sizes (the micro-benchmark x-axis).
    pub buffer_sizes: Vec<usize>,
    /// Thread counts for Figures 2.6–2.8.
    pub thread_counts: Vec<usize>,
    /// PARSEC kernel scale.
    pub scale: Scale,
    /// Mechanisms to measure (Retry-Orig is dropped automatically on HTM).
    pub mechanisms: Vec<Mechanism>,
}

impl FigureOptions {
    /// The scaled-down default: every mechanism, a representative subset of
    /// panels, small item counts.  Suitable for a single-core host.
    pub fn quick() -> Self {
        FigureOptions {
            items: 1 << 14,
            trials: 2,
            pc_panels: vec![(1, 1), (1, 2), (2, 1), (2, 2), (4, 4)],
            buffer_sizes: vec![4, 16, 128],
            thread_counts: vec![1, 2, 4, 8],
            scale: Scale::Test,
            mechanisms: Mechanism::ALL.to_vec(),
        }
    }

    /// The paper's full sweep: 2^20 items, all 16 `pi-cj` panels, 5 trials,
    /// full kernel scale.  Takes hours on a small machine.
    pub fn full_paper() -> Self {
        FigureOptions {
            items: PcParams::PAPER_ITEMS,
            trials: 5,
            pc_panels: vec![
                (1, 1),
                (1, 2),
                (1, 4),
                (1, 8),
                (2, 1),
                (2, 2),
                (2, 4),
                (2, 8),
                (4, 1),
                (4, 2),
                (4, 4),
                (4, 8),
                (8, 1),
                (8, 2),
                (8, 4),
                (8, 8),
            ],
            buffer_sizes: vec![4, 16, 128],
            thread_counts: vec![1, 2, 3, 4, 5, 6, 7, 8],
            scale: Scale::Full,
            mechanisms: Mechanism::ALL.to_vec(),
        }
    }

    /// Builds options from the `TM_EXP_*` environment variables (falling back
    /// to [`FigureOptions::quick`], or [`FigureOptions::full_paper`] when
    /// `TM_EXP_FULL=1`).
    pub fn from_env() -> Self {
        let mut opts = if env_flag("TM_EXP_FULL") {
            Self::full_paper()
        } else {
            Self::quick()
        };
        if let Some(items) = env_parse::<u64>("TM_EXP_ITEMS") {
            opts.items = items.max(1);
        }
        if let Some(trials) = env_parse::<u32>("TM_EXP_TRIALS") {
            opts.trials = trials.max(1);
        }
        if let Some(panels) = env_list("TM_EXP_PC") {
            let parsed: Vec<(usize, usize)> = panels
                .iter()
                .filter_map(|s| {
                    let (p, c) = s.split_once('.')?;
                    Some((p.parse().ok()?, c.parse().ok()?))
                })
                .collect();
            if !parsed.is_empty() {
                opts.pc_panels = parsed;
            }
        }
        if let Some(sizes) = env_list("TM_EXP_BUFFERS") {
            let parsed: Vec<usize> = sizes.iter().filter_map(|s| s.parse().ok()).collect();
            if !parsed.is_empty() {
                opts.buffer_sizes = parsed;
            }
        }
        if let Some(threads) = env_list("TM_EXP_THREADS") {
            let parsed: Vec<usize> = threads.iter().filter_map(|s| s.parse().ok()).collect();
            if !parsed.is_empty() {
                opts.thread_counts = parsed;
            }
        }
        if let Ok(scale) = std::env::var("TM_EXP_SCALE") {
            opts.scale = match scale.to_ascii_lowercase().as_str() {
                "full" => Scale::Full,
                "small" => Scale::Small,
                _ => Scale::Test,
            };
        }
        opts
    }

    /// The mechanisms applicable to `kind` (drops Retry-Orig on HTM).
    pub fn mechanisms_for(&self, kind: RuntimeKind) -> Vec<Mechanism> {
        self.mechanisms
            .iter()
            .copied()
            .filter(|m| kind.supports_retry_orig() || m.supports_htm())
            .collect()
    }
}

fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok()?.parse().ok()
}

fn env_list(name: &str) -> Option<Vec<String>> {
    let raw = std::env::var(name).ok()?;
    Some(raw.split(',').map(|s| s.trim().to_string()).collect())
}

/// Runs the producer/consumer sweep for one runtime configuration,
/// producing the report behind Figure 2.3, 2.4 or 2.5.
pub fn bounded_buffer_figure(kind: RuntimeKind, opts: &FigureOptions) -> Report {
    let experiment = match kind {
        RuntimeKind::EagerStm => "fig2.3",
        RuntimeKind::LazyStm => "fig2.4",
        RuntimeKind::Htm => "fig2.5",
        // Beyond the paper: the hybrid configuration gets its own report.
        RuntimeKind::Hybrid => "fig2.5-hybrid",
    };
    let mut report = Report::new(
        experiment,
        "Bounded buffer producer/consumer micro-benchmark",
        kind.label(),
    );
    report.note("items", opts.items.to_string());
    report.note("trials", opts.trials.to_string());
    report.note("host_cores", num_cpus_estimate().to_string());
    let fault = FaultConfig::from_env();
    if fault.enabled() {
        report.note("fault_injection", format!("{fault:?}"));
    }
    // Memory-plane knobs: applied to every trial's system and always
    // recorded, so a report is reproducible without knowing the launch env.
    let mem_plane = TmConfig::default().with_mem_plane_env();
    report.note("orec_shards", mem_plane.orec_shards.to_string());
    report.note("heap_arenas", mem_plane.heap_arenas.to_string());

    for &(p, c) in &opts.pc_panels {
        for mechanism in opts.mechanisms_for(kind) {
            for &size in &opts.buffer_sizes {
                let params = PcParams::new(p, c, size, opts.items, mechanism);
                let config = TmConfig {
                    heap_words: params.heap_words(),
                    ..mem_plane
                }
                .with_fault(fault);
                let results: Vec<_> = (0..opts.trials.max(1))
                    .map(|_| run_pc_configured(kind, &params, config))
                    .collect();
                assert!(
                    results.iter().all(|r| r.checksum_ok),
                    "conservation check failed for {mechanism} p{p}c{c} size {size}"
                );
                let durations: Vec<_> = results.iter().map(|r| r.elapsed).collect();
                let stats = results.last().expect("at least one trial").stats;
                let point = DataPoint::from_trials(size as u64, &durations, stats);
                report
                    .panel_mut(&params.panel_label(), "buffer size")
                    .series_mut(mechanism)
                    .push(point);
            }
        }
    }
    report
}

/// Runs the PARSEC kernel sweep for one runtime configuration, producing the
/// report behind Figure 2.6, 2.7 or 2.8.
pub fn parsec_figure(kind: RuntimeKind, opts: &FigureOptions) -> Report {
    let experiment = match kind {
        RuntimeKind::EagerStm => "fig2.6",
        RuntimeKind::LazyStm => "fig2.7",
        RuntimeKind::Htm => "fig2.8",
        // Beyond the paper: the hybrid configuration gets its own report.
        RuntimeKind::Hybrid => "fig2.8-hybrid",
    };
    let mut report = Report::new(experiment, "PARSEC-like kernels", kind.label());
    report.note("scale", format!("{:?}", opts.scale));
    report.note("trials", opts.trials.to_string());
    // The kernels honor the same memory-plane env overrides as the bounded
    // buffer figure; record them so reports are reproducible from the header.
    let mem_plane = TmConfig::default().with_mem_plane_env();
    report.note("orec_shards", mem_plane.orec_shards.to_string());
    report.note("heap_arenas", mem_plane.heap_arenas.to_string());

    for app in ParsecApp::ALL {
        for mechanism in opts.mechanisms_for(kind) {
            for &threads in &opts.thread_counts {
                if !app.supported_threads().contains(&threads) {
                    continue;
                }
                let params = KernelParams::new(threads, mechanism, kind, opts.scale);
                let mut durations = Vec::with_capacity(opts.trials as usize);
                let mut stats = Default::default();
                for _ in 0..opts.trials.max(1) {
                    let result = app.run(&params);
                    durations.push(result.elapsed);
                    stats = result.stats;
                }
                let point = DataPoint::from_trials(threads as u64, &durations, stats);
                report
                    .panel_mut(app.label(), "# of threads")
                    .series_mut(mechanism)
                    .push(point);
            }
        }
    }
    report
}

/// Renders Table 2.1: the paper's numbers followed by this reproduction's
/// measured adapter-line counts.
pub fn table_2_1() -> String {
    let mut out = String::new();
    out.push_str(&loc::render_table(
        "Table 2.1 — paper (lines added/removed per PARSEC benchmark)",
        &loc::paper_table(),
    ));
    out.push('\n');
    out.push_str(&loc::render_table(
        "Table 2.1 — this reproduction (synchronization adapter lines in the synthetic kernels)",
        &loc::measured_table(),
    ));
    out
}

/// Directory into which figure binaries write their JSON reports.
pub fn default_output_dir() -> PathBuf {
    PathBuf::from("target").join("experiments")
}

/// Writes a report's JSON alongside its rendered text and returns the JSON
/// path.
pub fn write_report(report: &Report, dir: &Path) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let base = report.experiment.replace('.', "_");
    let json_path = dir.join(format!("{base}.json"));
    std::fs::write(&json_path, report.to_json())?;
    std::fs::write(dir.join(format!("{base}.txt")), report.render())?;
    Ok(json_path)
}

/// Prints a report and persists it to [`default_output_dir`], reporting any
/// write error on stderr without failing the run.
pub fn emit(report: &Report) {
    println!("{}", report.render());
    match write_report(report, &default_output_dir()) {
        Ok(path) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("could not persist report: {e}"),
    }
}

fn num_cpus_estimate() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> FigureOptions {
        FigureOptions {
            items: 256,
            trials: 1,
            pc_panels: vec![(1, 1), (2, 2)],
            buffer_sizes: vec![4, 16],
            thread_counts: vec![1, 2],
            scale: Scale::Test,
            mechanisms: vec![Mechanism::Pthreads, Mechanism::Retry, Mechanism::RetryOrig],
        }
    }

    #[test]
    fn quick_options_cover_all_mechanisms_and_paper_buffer_sizes() {
        let q = FigureOptions::quick();
        assert_eq!(q.mechanisms.len(), 7);
        assert_eq!(q.buffer_sizes, vec![4, 16, 128]);
        assert!(q.items >= 1 << 10);
        let f = FigureOptions::full_paper();
        assert_eq!(f.items, 1 << 20);
        assert_eq!(f.pc_panels.len(), 16);
        assert_eq!(f.trials, 5);
    }

    #[test]
    fn mechanisms_for_htm_excludes_retry_orig() {
        let opts = tiny_options();
        assert!(opts
            .mechanisms_for(RuntimeKind::EagerStm)
            .contains(&Mechanism::RetryOrig));
        assert!(!opts
            .mechanisms_for(RuntimeKind::Htm)
            .contains(&Mechanism::RetryOrig));
    }

    #[test]
    fn bounded_buffer_figure_produces_every_panel_and_series() {
        let opts = tiny_options();
        let report = bounded_buffer_figure(RuntimeKind::EagerStm, &opts);
        assert_eq!(report.experiment, "fig2.3");
        assert_eq!(report.panels.len(), 2);
        for panel in &report.panels {
            assert_eq!(panel.series.len(), 3);
            assert_eq!(panel.xs(), vec![4, 16]);
        }
    }

    #[test]
    fn parsec_figure_covers_all_apps() {
        let mut opts = tiny_options();
        opts.mechanisms = vec![Mechanism::Retry];
        opts.thread_counts = vec![1];
        let report = parsec_figure(RuntimeKind::EagerStm, &opts);
        assert_eq!(report.experiment, "fig2.6");
        assert_eq!(report.panels.len(), ParsecApp::ALL.len());
    }

    #[test]
    fn table_2_1_mentions_both_views() {
        let text = table_2_1();
        assert!(text.contains("paper"));
        assert!(text.contains("reproduction"));
        assert!(text.contains("fluidanimate"));
    }

    #[test]
    fn write_report_round_trips_to_disk() {
        let opts = FigureOptions {
            mechanisms: vec![Mechanism::Restart],
            pc_panels: vec![(1, 1)],
            buffer_sizes: vec![4],
            items: 64,
            trials: 1,
            ..tiny_options()
        };
        let report = bounded_buffer_figure(RuntimeKind::EagerStm, &opts);
        let dir = std::env::temp_dir().join("tm-bench-test-reports");
        let path = write_report(&report, &dir).expect("write report");
        let loaded = Report::from_json(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(loaded.experiment, report.experiment);
    }
}
