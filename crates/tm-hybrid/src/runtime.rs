//! The hybrid engine: dispatches each attempt to the hardware or software
//! path and wires the two couplings described in the crate docs.

use std::sync::Arc;

use condsync::OrigRegistry;
use htm_sim::{HtmSim, HtmTx};
use stm_lazy::{CommitInterlock, LazyTx};
use tm_core::driver::{self, CommitOutcome, TxEngine};
use tm_core::{
    Addr, ThreadCtx, ThreadId, TmRt, TmRuntime, TmSystem, Tx, TxCommon, TxCtl, TxKind, TxMode,
    TxResult, WaitCondition, WaitSpec, WakeSet,
};

/// The software-commit interlock this runtime installs into its lazy path:
/// write-backs take the simulator's commit barrier and claim/doom the
/// written lines first, so software and hardware commits serialise and no
/// speculative reader survives a software write-back it overlapped.
#[derive(Debug)]
struct HwInterlock {
    htm: Arc<HtmSim>,
    /// Scratch slot list reused across commits (only ever touched while the
    /// commit barrier is held, so the lock is uncontended; it exists purely
    /// to keep the software commit path allocation-free).
    slots: tm_core::lock::Mutex<Vec<usize>>,
}

impl CommitInterlock for HwInterlock {
    fn commit_section(
        &self,
        writer: ThreadId,
        write_entries: &[tm_core::access::WriteEntry],
        validate: &mut dyn FnMut() -> bool,
        writeback: &mut dyn FnMut(),
    ) -> bool {
        // Mutual exclusion with every hardware commit's doom-check +
        // write-back (and with serial-gate acquisition's drain).
        let _barrier = self.htm.commit_barrier();
        // Validate first: it only reads orecs, and the barrier already
        // excludes hardware commits, so a failed validation aborts this
        // commit without dooming a single speculative transaction.
        if !validate() {
            return false;
        }
        let plane = self.htm.plane();
        let mut slots = self.slots.lock();
        slots.clear();
        slots.extend(write_entries.iter().map(|e| plane.slot_for(e.addr.line())));
        slots.sort_unstable();
        slots.dedup();
        // Claim the written lines: the backend dooms every speculative
        // occupant, and any speculative access arriving during the
        // write-back observes a foreign writer and aborts.  This must
        // precede the write-back so no hardware transaction can read a torn
        // mix of old and new words (a reader registering between the claim
        // sweep and its line's store is still caught: it observes the
        // foreign writer and aborts).
        for &slot in slots.iter() {
            plane.claim_for_writeback(slot, writer);
        }
        writeback();
        for &slot in slots.iter() {
            plane.release_writeback(slot, writer);
        }
        true
    }
}

/// The hybrid HTM+STM runtime.
///
/// Attempts begin as (simulated) hardware transactions on an orec-coupled
/// [`HtmSim`]; software attempts are lazy-STM transactions
/// ([`stm_lazy::LazyTx`]) with the write-back interlock installed; serial
/// attempts go through the simulator's serial flavour (which drains the
/// commit barrier on top of the system gate).  All three share one
/// [`TmSystem`].
pub struct HybridTm {
    system: Arc<TmSystem>,
    htm: Arc<HtmSim>,
    interlock: Arc<HwInterlock>,
    /// Waiting list for the `Retry-Orig` baseline — supported here, unlike
    /// on the pure HTM configuration, because the software path has real
    /// lock metadata (every `Retry-Orig` sleep runs on the lazy path).
    orig: OrigRegistry,
}

impl std::fmt::Debug for HybridTm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HybridTm")
            .field("serial_held", &self.system.serial.held())
            .finish_non_exhaustive()
    }
}

impl HybridTm {
    /// Creates a hybrid runtime over `system`.
    pub fn new(system: Arc<TmSystem>) -> Arc<Self> {
        let htm = HtmSim::new_coupled(Arc::clone(&system));
        let interlock = Arc::new(HwInterlock {
            htm: Arc::clone(&htm),
            slots: tm_core::lock::Mutex::new(Vec::new()),
        });
        Arc::new(HybridTm {
            system,
            htm,
            interlock,
            orig: OrigRegistry::new(),
        })
    }

    /// The shared system.
    pub fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    /// The hardware fast path's simulator (exposed for tests).
    pub fn htm(&self) -> &Arc<HtmSim> {
        &self.htm
    }

    /// The `Retry-Orig` waiting list (exposed for tests).
    pub fn orig_registry(&self) -> &OrigRegistry {
        &self.orig
    }
}

/// One in-flight hybrid attempt: either a speculative/serial attempt on the
/// simulator or an instrumented lazy-STM attempt.
//
// The variants differ in size, but the attempt lives on the driver loop's
// stack and is rebuilt on every re-execution — boxing the software variant
// would put a heap allocation on exactly the path the per-thread `LogPool`
// keeps allocation-free.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum HybridTx<'rt> {
    /// Hardware (speculative) or serial attempt.
    Hw(HtmTx<'rt>),
    /// Instrumented software attempt (plain or value-logging).
    Sw(LazyTx),
}

macro_rules! delegate {
    ($self:ident, $tx:ident => $body:expr) => {
        match $self {
            HybridTx::Hw($tx) => $body,
            HybridTx::Sw($tx) => $body,
        }
    };
}

impl Tx for HybridTx<'_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        delegate!(self, tx => tx.read(addr))
    }

    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
        delegate!(self, tx => tx.write(addr, val))
    }

    fn read_for_write(&mut self, addr: Addr) -> TxResult<u64> {
        delegate!(self, tx => tx.read_for_write(addr))
    }

    fn alloc(&mut self, words: usize) -> TxResult<Addr> {
        delegate!(self, tx => tx.alloc(words))
    }

    fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
        delegate!(self, tx => tx.free(addr, words))
    }

    fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
        delegate!(self, tx => tx.commit_and_reopen(block))
    }

    fn explicit_abort(&mut self, code: u8) -> TxCtl {
        delegate!(self, tx => tx.explicit_abort(code))
    }

    fn common(&self) -> &TxCommon {
        delegate!(self, tx => tx.common())
    }

    fn common_mut(&mut self) -> &mut TxCommon {
        delegate!(self, tx => tx.common_mut())
    }

    fn system(&self) -> &Arc<TmSystem> {
        delegate!(self, tx => tx.system())
    }
}

impl TxEngine for HybridTm {
    type Tx<'eng> = HybridTx<'eng>;

    fn begin(&self, common: TxCommon) -> HybridTx<'_> {
        match common.mode {
            // Hardware runs speculatively; Serial runs the simulator's
            // serial flavour (system gate + commit-barrier drain).
            TxMode::Hardware | TxMode::Serial => HybridTx::Hw(HtmTx::begin(&self.htm, common)),
            // The software rungs are real STM attempts with the write-back
            // interlock installed.
            TxMode::Software | TxMode::SoftwareRetry => HybridTx::Sw(LazyTx::begin_with(
                &self.system,
                common,
                Some(Arc::clone(&self.interlock) as Arc<dyn CommitInterlock>),
            )),
        }
    }

    fn try_commit(&self, tx: &mut HybridTx<'_>) -> Result<CommitOutcome, TxCtl> {
        delegate!(tx, tx => tx.try_commit())
    }

    fn rollback(&self, tx: &mut HybridTx<'_>) {
        delegate!(tx, tx => tx.rollback());
    }

    fn materialise_wait(
        &self,
        tx: &mut HybridTx<'_>,
        spec: WaitSpec,
    ) -> Result<WaitCondition, TxCtl> {
        delegate!(tx, tx => tx.rollback_for_deschedule(spec))
    }

    fn initial_mode(&self) -> TxMode {
        TxMode::Hardware
    }

    fn attempt_is_hardware(&self, tx: &HybridTx<'_>) -> bool {
        match tx {
            HybridTx::Hw(tx) => tx.is_hardware(),
            HybridTx::Sw(_) => false,
        }
    }

    fn supports_orig_retry(&self) -> bool {
        // The software path has lock metadata; the driver routes every
        // Retry-Orig sleep through it (hardware attempts relog in software
        // first, exactly like value-based Retry).
        true
    }

    fn deschedule_orig(&self, thread: &Arc<ThreadCtx>, tx: &mut HybridTx<'_>) {
        let HybridTx::Sw(lazy) = tx else {
            unreachable!("Retry-Orig deschedules only run on the software path");
        };
        let read_orecs = lazy.read_orec_indices();
        let start = lazy.start();
        lazy.rollback();
        condsync::sleep_until_intersection(&self.orig, thread, read_orecs.clone(), || {
            tm_core::access::cover_valid_at(&self.system.orecs, &read_orecs, start)
        });
    }

    fn mode_after_wake(&self) -> TxMode {
        // A transaction that descheduled has already fallen off the hardware
        // path (its value log was built by a software attempt), and the
        // wake-up means it is racing the very writers that put it to sleep:
        // finish it on the instrumented software path rather than feed it
        // back into speculation mid-contention.  The *next* transaction
        // starts in hardware again ([`TxEngine::initial_mode`]).
        TxMode::Software
    }

    fn mode_for_software_switch(&self, current: TxMode) -> TxMode {
        // The whole point of the hybrid: hardware attempts that need
        // software facilities drop to the instrumented STM path, not to the
        // global serial lock.
        match current {
            TxMode::Hardware => TxMode::Software,
            other => other,
        }
    }

    fn escalated_mode(&self, current: TxMode) -> TxMode {
        // The mode ladder: Hw → Sw → Serial.
        match current {
            TxMode::Hardware => TxMode::Software,
            _ => TxMode::Serial,
        }
    }

    fn committed_stripes(&self, outcome: &CommitOutcome) -> WakeSet {
        if outcome.serial {
            // Serial commits carry no metadata; scan every shard.
            WakeSet::All
        } else {
            // Software commits report their lock set; hardware commits the
            // stripe cover of their written lines (a superset).  Both are
            // complete covers, so targeting cannot lose a wakeup.
            WakeSet::Stripes(outcome.written_orecs.clone())
        }
    }

    fn after_writer_commit(&self, thread: &Arc<ThreadCtx>, outcome: &CommitOutcome) {
        if !self.orig.is_empty() {
            if outcome.serial {
                self.orig.wake_all(thread);
            } else {
                // Software commits intersect with their lock set; hardware
                // commits with their written-line stripe cover, a superset
                // of the written words' stripes — conservative, never lossy.
                self.orig.wake_matching(thread, &outcome.written_orecs);
            }
        }
    }
}

impl TmRuntime for HybridTm {
    fn system(&self) -> &Arc<TmSystem> {
        &self.system
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn exec_u64(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
    ) -> u64 {
        driver::run(self, thread, body)
    }

    fn exec_bool(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<bool>,
    ) -> bool {
        driver::run(self, thread, body)
    }
}

impl TmRt for HybridTm {
    fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        driver::run(self, thread, body)
    }

    fn atomically_read<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        // The hardware fast path is attempted first, as always; if the
        // attempt falls off speculation, the software rung is a lazy-STM
        // snapshot attempt (no read set, free commit) instead of a full
        // instrumented transaction.
        driver::run_kind(self, thread, TxKind::ReadOnly, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tm_core::{Addr, HtmConfig, TmConfig, TmVar};

    fn runtime() -> (Arc<TmSystem>, Arc<HybridTm>) {
        let system = TmSystem::new(TmConfig::small());
        let rt = HybridTm::new(Arc::clone(&system));
        (system, rt)
    }

    #[test]
    fn simple_transaction_commits_in_hardware() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 5);
        let out = rt.atomically(&th, |tx| {
            let x = v.get(tx)?;
            v.set(tx, x + 1)?;
            Ok(x + 1)
        });
        assert_eq!(out, 6);
        assert_eq!(v.load_direct(&system), 6);
        let stats = th.stats.snapshot();
        assert_eq!(stats.hw_commits, 1);
        assert_eq!(stats.sw_commits, 0);
    }

    #[test]
    fn capacity_overflow_degrades_to_software_not_serial() {
        let system = TmSystem::new(TmConfig::small().with_htm(HtmConfig {
            max_read_lines: 4,
            max_write_lines: 2,
            max_attempts: 2,
        }));
        let rt = HybridTm::new(Arc::clone(&system));
        let th = system.register_thread();
        let arr = tm_core::TmArray::<u64>::alloc(&system, 256, 0);
        rt.atomically(&th, |tx| {
            for i in 0..64 {
                arr.set(tx, i, i as u64)?;
            }
            Ok(())
        });
        for i in 0..64 {
            assert_eq!(arr.load_direct(&system, i), i as u64);
        }
        let stats = th.stats.snapshot();
        assert!(stats.hw_aborts >= 2, "speculation must fail first");
        assert_eq!(stats.sw_commits, 1, "must finish on the software path");
        assert_eq!(stats.serial_commits, 0, "the serial rung was not needed");
        assert_eq!(stats.serial_acquires, 0);
        assert!(stats.cm_escalations >= 1);
        assert!(!system.serial.held());
    }

    #[test]
    fn hardware_commit_publishes_to_the_orecs() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 0);
        let before = system.orecs.load_for(v.addr()).version();
        rt.atomically(&th, |tx| v.set(tx, 1));
        assert_eq!(th.stats.snapshot().hw_commits, 1);
        let after = system.orecs.load_for(v.addr()).version();
        assert!(
            after > before,
            "a coupled hardware commit must bump the written stripes \
             ({before} -> {after}) so software validation can see it"
        );
    }

    #[test]
    fn retry_deschedules_via_the_software_path_and_wakes() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry(tx);
                }
                Ok(v)
            })
        });
        while system.waiters.is_empty() {
            std::thread::yield_now();
        }
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 3));
        assert_eq!(waiter.join().unwrap(), 3);
        assert!(
            !system.serial.held(),
            "descheduling must not fall back to the serial gate"
        );
        assert_eq!(
            system.stats().serial_acquires,
            0,
            "the whole retry round-trip stays off the serial rung"
        );
    }

    #[test]
    fn retry_orig_is_supported_on_the_hybrid() {
        let (system, rt) = runtime();
        let flag = TmVar::<u64>::alloc(&system, 0);
        let flag2 = flag.clone();
        let rt2 = Arc::clone(&rt);
        let system2 = Arc::clone(&system);
        let waiter = std::thread::spawn(move || {
            let th = system2.register_thread();
            rt2.atomically(&th, |tx| {
                let v = flag2.get(tx)?;
                if v == 0 {
                    return condsync::retry_orig(tx);
                }
                Ok(v)
            })
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        let th = system.register_thread();
        rt.atomically(&th, |tx| flag.set(tx, 9));
        assert_eq!(waiter.join().unwrap(), 9);
        assert_eq!(rt.orig_registry().len(), 0);
    }

    #[test]
    fn concurrent_mixed_increments_are_not_lost() {
        let (system, rt) = runtime();
        let counter = TmVar::<u64>::alloc(&system, 0);
        let threads = 4;
        let per_thread = 300;
        let mut handles = Vec::new();
        for tid in 0..threads {
            let rt = Arc::clone(&rt);
            let system = Arc::clone(&system);
            let counter = counter.clone();
            handles.push(std::thread::spawn(move || {
                let th = system.register_thread();
                for i in 0..per_thread {
                    // Half of the transactions are forced onto the software
                    // path, so hardware and software commits genuinely
                    // interleave on the same location.
                    let force_sw = (tid + i) % 2 == 0;
                    rt.atomically(&th, |tx| {
                        if force_sw && tx.mode() == TxMode::Hardware {
                            return Err(TxCtl::SwitchToSoftware);
                        }
                        let x = counter.get(tx)?;
                        counter.set(tx, x + 1)
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load_direct(&system), threads * per_thread);
        let stats = system.stats();
        assert!(stats.hw_commits > 0, "the fast path must be used");
        assert!(stats.sw_commits > 0, "the software path must be used");
        assert!(!system.serial.held());
    }

    #[test]
    fn become_serial_runs_on_the_last_rung() {
        let (system, rt) = runtime();
        let th = system.register_thread();
        let v = TmVar::<u64>::alloc(&system, 1);
        let got = rt.atomically(&th, |tx| {
            if tx.mode() != TxMode::Serial {
                return Err(TxCtl::BecomeSerial);
            }
            let x = v.get(tx)?;
            v.set(tx, x * 10)?;
            Ok(x * 10)
        });
        assert_eq!(got, 10);
        let stats = th.stats.snapshot();
        assert_eq!(stats.serial_commits, 1);
        assert!(stats.serial_acquires >= 1);
        assert!(stats.mode_switches >= 1);
        assert!(!system.serial.held());
    }

    #[test]
    fn software_commit_dooms_overlapping_hardware_readers() {
        // Deterministic check of the interlock at the directory level: a
        // software commit's write-back claims the written line and dooms
        // registered speculative readers.
        let (system, rt) = runtime();
        let th = system.register_thread();
        let victim = system.register_thread();
        let addr = Addr(64);
        let slot = rt.htm().lines().slot_for(addr.line());
        assert_eq!(rt.htm().lines().register_reader(slot, victim.id), None);

        let v = TmVar::<u64>::from_addr(addr);
        rt.atomically(&th, |tx| {
            if tx.mode() == TxMode::Hardware {
                return Err(TxCtl::SwitchToSoftware);
            }
            v.set(tx, 7)
        });
        assert!(
            victim.is_doomed(),
            "the software write-back must doom the speculative reader"
        );
        rt.htm().lines().clear_reader(slot, victim.id);
    }
}
