//! A hybrid HTM+STM runtime: best-effort (simulated) hardware transactions
//! as the fast path, the lazy software STM as the fallback, one shared
//! [`tm_core::TmSystem`].
//!
//! The paper evaluates three *fixed* configurations; this crate adds the
//! production-shaped fourth: transactions start in hardware and — when
//! speculation fails, or when they need software facilities like value
//! logging and descheduling — degrade to an instrumented lazy-STM attempt
//! instead of collapsing onto the global serial lock, which is all a pure
//! best-effort HTM can offer.  The serial gate remains the last rung of the
//! ladder (irrevocability, starvation escalation):
//!
//! ```text
//!        Hw ──(conflict/capacity budget, escape action)──▶ Sw ──(policy)──▶ Serial
//!        ▲                                                 ▲
//!        └───────────── fresh transaction ─────────────────┘
//! ```
//!
//! The two paths stay mutually consistent through two couplings:
//!
//! * **software → hardware**: a software commit's write-back runs inside the
//!   simulator's commit barrier and claims/dooms the written cache lines in
//!   the coherence directory first (the [`stm_lazy::CommitInterlock`]
//!   installed by this crate), so no speculative transaction can observe a
//!   partial write-back or survive having read overwritten lines;
//! * **hardware → software**: hardware commits run orec-*coupled*
//!   ([`htm_sim::HtmSim::new_coupled`]): before writing back they abort on —
//!   and never stomp — locked ownership records covering their written
//!   lines, and they publish a fresh global-clock version to those records,
//!   so software read validation observes hardware writes.  Software
//!   commits in turn always validate their read set (inside the barrier)
//!   rather than trusting the nothing-committed clock fast path.
//!
//! Condition synchronization comes for free: the engine plugs into the one
//! driver loop in `tm_core::driver`, the software path supplies value
//! logging and wait-condition materialisation, and — because the software
//! path has real lock metadata — the hybrid even supports the `Retry-Orig`
//! baseline the pure HTM configuration must exclude.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod runtime;

pub use runtime::{HybridTm, HybridTx};
