//! Randomized exponential backoff between aborted transaction attempts.

use crate::config::BackoffConfig;

/// Per-transaction backoff state.
///
/// Spins (with `spin_loop` hints) for a randomized, exponentially growing
/// number of iterations after each abort, and starts yielding the CPU once
/// the abort count passes `yield_after` — which matters in the paper's
/// oversubscribed configurations where threads outnumber cores.
#[derive(Debug)]
pub struct Backoff {
    config: BackoffConfig,
    attempts: u32,
    rng: XorShift64,
}

impl Backoff {
    /// Creates backoff state; `seed` only needs to differ across threads.
    pub fn new(config: BackoffConfig, seed: u64) -> Self {
        Backoff {
            config,
            attempts: 0,
            rng: XorShift64::new(seed),
        }
    }

    /// Number of aborts observed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Resets the state after a successful commit.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }

    /// Records an abort and waits an appropriate amount of time.
    pub fn abort_and_wait(&mut self) {
        self.attempts += 1;
        if self.attempts >= self.config.yield_after {
            std::thread::yield_now();
            return;
        }
        let exp = self.attempts.min(16);
        let ceiling = (self.config.min_spins.saturating_mul(1 << exp)).min(self.config.max_spins);
        let spins = if ceiling <= 1 {
            1
        } else {
            (self.rng.next() % ceiling as u64) as u32 + 1
        };
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }
}

/// A tiny xorshift PRNG so `tm-core` does not need the `rand` crate on the
/// transaction hot path.
#[derive(Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next pseudo-random value.
    ///
    /// Not an [`Iterator`]: the stream is infinite and `None` never occurs.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert_ne!(x, 0);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut g = XorShift64::new(0);
        assert_ne!(g.next(), 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..32).filter(|_| a.next() == b.next()).count();
        assert!(same < 4);
    }

    #[test]
    fn backoff_counts_attempts_and_resets() {
        let mut b = Backoff::new(BackoffConfig::default(), 3);
        assert_eq!(b.attempts(), 0);
        b.abort_and_wait();
        b.abort_and_wait();
        assert_eq!(b.attempts(), 2);
        b.reset();
        assert_eq!(b.attempts(), 0);
    }

    #[test]
    fn backoff_survives_many_aborts() {
        let mut b = Backoff::new(
            BackoffConfig {
                min_spins: 1,
                max_spins: 8,
                yield_after: 3,
            },
            99,
        );
        for _ in 0..50 {
            b.abort_and_wait();
        }
        assert_eq!(b.attempts(), 50);
    }
}
