//! Randomized exponential backoff between aborted transaction attempts.

use crate::config::BackoffConfig;

/// Per-transaction backoff state.
///
/// Spins (with `spin_loop` hints) for a randomized, exponentially growing
/// number of iterations after each abort, and starts yielding the CPU once
/// the abort count passes `yield_after` — which matters in the paper's
/// oversubscribed configurations where threads outnumber cores.
#[derive(Debug)]
pub struct Backoff {
    config: BackoffConfig,
    attempts: u32,
    rng: XorShift64,
}

impl Backoff {
    /// Creates backoff state; `seed` only needs to differ across threads.
    pub fn new(config: BackoffConfig, seed: u64) -> Self {
        Backoff {
            config,
            attempts: 0,
            rng: XorShift64::new(seed),
        }
    }

    /// Number of aborts observed so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Resets the state after a successful commit.
    pub fn reset(&mut self) {
        self.attempts = 0;
    }

    /// Records an abort and waits an appropriate amount of time: a jittered
    /// exponentially growing spin whose growth stops at the configured cap
    /// (`max_exp` doublings, ceiling `max_spins`), switching to yielding the
    /// CPU after `yield_after` consecutive aborts.
    pub fn abort_and_wait(&mut self) {
        self.attempts += 1;
        if self.attempts >= self.config.yield_after {
            std::thread::yield_now();
            return;
        }
        let exp = self.attempts.min(self.config.max_exp).min(31);
        let ceiling = (self.config.min_spins.saturating_mul(1 << exp)).min(self.config.max_spins);
        let spins = if ceiling <= 1 {
            1
        } else {
            (self.rng.next() % ceiling as u64) as u32 + 1
        };
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }
}

/// A cheap spin-then-yield waiter for short waits on a condition another
/// thread is about to establish (lock hand-offs, quiescence, the HTM
/// fallback subscription).
///
/// Unlike [`Backoff`] this has no randomness and no exponential growth — it
/// spins with `spin_loop` hints for a bounded number of iterations, then
/// yields the CPU on every further pause so oversubscribed configurations
/// make progress.  It exists so the runtimes share one policy instead of
/// hand-rolling `spins > 64` loops.
#[derive(Debug)]
pub struct SpinWait {
    spins: u32,
    threshold: u32,
}

impl SpinWait {
    /// Default number of busy spins before yielding.
    pub const DEFAULT_SPINS: u32 = 64;

    /// Creates a waiter with the default spin threshold.
    pub fn new() -> Self {
        SpinWait {
            spins: 0,
            threshold: Self::DEFAULT_SPINS,
        }
    }

    /// Creates a waiter that busy-spins `threshold` times before yielding.
    pub fn with_threshold(threshold: u32) -> Self {
        SpinWait {
            spins: 0,
            threshold,
        }
    }

    /// Number of pauses taken so far.
    pub fn pauses(&self) -> u32 {
        self.spins
    }

    /// Waits once: a `spin_loop` hint while under the threshold, a CPU yield
    /// beyond it.
    #[inline]
    pub fn pause(&mut self) {
        self.spins += 1;
        if self.spins > self.threshold {
            std::thread::yield_now();
        } else {
            std::hint::spin_loop();
        }
    }

    /// Resets the waiter for a fresh wait.
    pub fn reset(&mut self) {
        self.spins = 0;
    }
}

impl Default for SpinWait {
    fn default() -> Self {
        SpinWait::new()
    }
}

/// A tiny xorshift PRNG so `tm-core` does not need the `rand` crate on the
/// transaction hot path.
#[derive(Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Returns the next pseudo-random value.
    ///
    /// Not an [`Iterator`]: the stream is infinite and `None` never occurs.
    #[inline]
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nonzero() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            let x = a.next();
            assert_eq!(x, b.next());
            assert_ne!(x, 0);
        }
    }

    #[test]
    fn zero_seed_is_remapped() {
        let mut g = XorShift64::new(0);
        assert_ne!(g.next(), 0);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        let same = (0..32).filter(|_| a.next() == b.next()).count();
        assert!(same < 4);
    }

    #[test]
    fn backoff_counts_attempts_and_resets() {
        let mut b = Backoff::new(BackoffConfig::default(), 3);
        assert_eq!(b.attempts(), 0);
        b.abort_and_wait();
        b.abort_and_wait();
        assert_eq!(b.attempts(), 2);
        b.reset();
        assert_eq!(b.attempts(), 0);
    }

    #[test]
    fn backoff_survives_many_aborts() {
        let mut b = Backoff::new(
            BackoffConfig {
                min_spins: 1,
                max_spins: 8,
                max_exp: 4,
                yield_after: 3,
            },
            99,
        );
        for _ in 0..50 {
            b.abort_and_wait();
        }
        assert_eq!(b.attempts(), 50);
    }

    #[test]
    fn exponent_cap_bounds_growth_without_overflow() {
        // max_exp far above 31 must not overflow the 1 << exp shift, and a
        // huge abort count must stay bounded by max_spins.
        let mut b = Backoff::new(
            BackoffConfig {
                min_spins: 2,
                max_spins: 64,
                max_exp: 1000,
                yield_after: u32::MAX,
            },
            7,
        );
        for _ in 0..100 {
            b.abort_and_wait();
        }
        assert_eq!(b.attempts(), 100);
    }

    #[test]
    fn spin_wait_counts_and_resets() {
        let mut s = SpinWait::with_threshold(3);
        for _ in 0..10 {
            s.pause();
        }
        assert_eq!(s.pauses(), 10);
        s.reset();
        assert_eq!(s.pauses(), 0);
        let mut d = SpinWait::new();
        d.pause();
        assert_eq!(d.pauses(), 1);
    }
}
