//! The sharded, address-indexed registry of descheduled (sleeping)
//! transactions.
//!
//! This is the `waiting` list of Algorithms 1 and 4, scaled for heavy
//! traffic.  A thread that deschedules publishes a [`Waiter`] record carrying
//! its wake-up condition and an `asleep` flag; committing writers evaluate
//! each *relevant* waiter's condition in a read-only transaction and signal
//! the waiter's semaphore if the condition holds.
//!
//! The original reproduction kept one global `Mutex<Vec<Arc<Waiter>>>`, so
//! every writer commit scanned *every* sleeper — O(all sleepers) per commit
//! under a single lock.  Since `Retry`/`Await` conditions are address sets
//! and every address already hashes to an ownership-record stripe
//! ([`crate::orec::OrecTable::index_for`]), the registry is now **sharded by
//! stripe**: a waiter is registered under every shard covering a stripe of
//! its wait condition, and a committing writer scans only the shards covering
//! the stripes it actually wrote (plus the *unindexed* shard, which holds
//! predicate conditions that name no addresses).  Writers whose write sets
//! are invisible (the HTM serial fallback) pass [`WakeSet::All`] and scan
//! every shard, which is exactly the old behaviour.
//!
//! Two invariants carry over from the paper and must be preserved by every
//! caller:
//!
//! * **No lost wakeups** — a waiter is registered under every shard whose
//!   stripes cover an address whose change could establish its condition, and
//!   writers report (a superset of) the stripes they wrote.  Registration
//!   before the double-check in `deschedule` closes the publish/commit race
//!   exactly as Algorithm 4 requires; sharding does not widen the window
//!   because each shard's mutex orders registration against the scan.
//! * **Free fast path** — the common no-waiter case costs committing writers
//!   a single atomic load of the global count, so in-flight (hardware)
//!   transactions pay nothing for the mechanism.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::lock::Mutex;
use crate::pad::CachePadded;

use crate::ctl::WaitCondition;
use crate::sem::Semaphore;
use crate::thread::ThreadId;

/// Why a descheduled (sleeping) transaction was re-scheduled.
///
/// Exactly one reason is recorded per sleep: the first caller of
/// [`Waiter::claim`] wins, every later claim fails, and the sleeper reads the
/// recorded reason after its semaphore wait returns.  The reason is then
/// handed to the re-executed transaction through
/// [`crate::tx::TxCommon::wake_reason`], so a timed wait can distinguish
/// "my condition was established" from "my deadline passed" from "someone
/// cancelled me".
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
#[repr(u8)]
pub enum WakeReason {
    /// A committing writer (or the deschedule double-check) found the wait
    /// condition established.
    Woken = 1,
    /// The waiter's deadline passed before the condition was established
    /// (delivered by the timer wheel, a committing writer's lazy poll, or
    /// the sleeper's own semaphore timeout).
    Timeout = 2,
    /// Another thread cancelled the wait (`condsync::cancel`).
    Cancelled = 3,
}

impl WakeReason {
    /// A short human-readable label for statistics and tracing.
    pub fn label(self) -> &'static str {
        match self {
            WakeReason::Woken => "woken",
            WakeReason::Timeout => "timeout",
            WakeReason::Cancelled => "cancelled",
        }
    }
}

/// `Waiter::state` value while the waiter still needs to be woken; any other
/// value is the `WakeReason` discriminant that claimed it.
const ASLEEP: u8 = 0;

/// A published record of a sleeping (descheduled) transaction.
#[derive(Debug)]
pub struct Waiter {
    /// The descheduled thread.
    pub thread: ThreadId,
    /// [`ASLEEP`] while the thread still needs to be woken, otherwise the
    /// discriminant of the [`WakeReason`] that claimed it.  Transitions away
    /// from [`ASLEEP`] exactly once (compare-and-swap in [`Waiter::claim`]),
    /// so a waiter is signalled at most once per sleep and the recorded
    /// reason never changes afterwards.
    state: AtomicU8,
    /// The condition under which the thread should be re-scheduled.
    pub condition: WaitCondition,
    /// Semaphore the thread blocks on.
    pub sem: Arc<Semaphore>,
    /// The instant after which the wait should resolve as
    /// [`WakeReason::Timeout`]; `None` for unbounded waits.
    pub deadline: Option<Instant>,
}

impl Waiter {
    /// Creates a new unbounded waiter record (initially marked asleep).
    pub fn new(thread: ThreadId, condition: WaitCondition, sem: Arc<Semaphore>) -> Arc<Self> {
        Waiter::with_deadline(thread, condition, sem, None)
    }

    /// Creates a waiter record carrying an optional expiry deadline.
    pub fn with_deadline(
        thread: ThreadId,
        condition: WaitCondition,
        sem: Arc<Semaphore>,
        deadline: Option<Instant>,
    ) -> Arc<Self> {
        Arc::new(Waiter {
            thread,
            state: AtomicU8::new(ASLEEP),
            condition,
            sem,
            deadline,
        })
    }

    /// Attempts to claim the right to wake this waiter with the given
    /// reason; returns true for exactly one caller across all reasons.
    pub fn claim(&self, reason: WakeReason) -> bool {
        self.state
            .compare_exchange(ASLEEP, reason as u8, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Attempts to claim the right to wake this waiter as
    /// [`WakeReason::Woken`]; returns true for exactly one caller.
    pub fn claim_wake(&self) -> bool {
        self.claim(WakeReason::Woken)
    }

    /// True if the waiter has not yet been claimed for wake-up.
    pub fn is_asleep(&self) -> bool {
        self.state.load(Ordering::Acquire) == ASLEEP
    }

    /// The reason this waiter was claimed, or `None` while still asleep.
    pub fn wake_reason(&self) -> Option<WakeReason> {
        match self.state.load(Ordering::Acquire) {
            ASLEEP => None,
            x if x == WakeReason::Timeout as u8 => Some(WakeReason::Timeout),
            x if x == WakeReason::Cancelled as u8 => Some(WakeReason::Cancelled),
            _ => Some(WakeReason::Woken),
        }
    }
}

/// Which shards a committing writer must scan.
///
/// Engines whose commit path knows the ownership-record stripes it wrote
/// (the software STMs, and hardware commits via their written cache lines)
/// produce [`WakeSet::Stripes`]; commits with invisible write sets (the HTM
/// serial fallback) conservatively produce [`WakeSet::All`].
#[derive(Clone, Debug)]
pub enum WakeSet {
    /// Scan every shard (conservative; always correct).
    All,
    /// Scan only the shards covering these ownership-record stripes, plus
    /// the unindexed shard.
    Stripes(Vec<usize>),
}

/// What a targeted scan gathered: the waiters to evaluate plus shard-level
/// accounting for the effectiveness counters in [`crate::stats::TxStats`].
#[derive(Debug, Default)]
pub struct ScanPlan {
    /// Distinct waiters registered under the scanned shards.
    pub waiters: Vec<Arc<Waiter>>,
    /// Shards whose lists were visited.
    pub shards_scanned: usize,
    /// Shards the wake set allowed the writer to skip entirely.
    pub shards_skipped: usize,
}

/// One shard: a mutex-protected list plus a count that lets scans skip empty
/// shards without taking the lock.
///
/// Shards sit in an array indexed by stripe hash, so neighbours belong to
/// unrelated stripes; the count word is written on every register/deregister
/// and polled by every committing writer's scan, which without padding would
/// false-share across up to eight shards per cache line.
#[derive(Debug, Default)]
struct Shard {
    list: Mutex<Vec<Arc<Waiter>>>,
    count: AtomicUsize,
}

impl Shard {
    fn push(&self, w: Arc<Waiter>) {
        let mut list = self.list.lock();
        list.push(w);
        self.count.store(list.len(), Ordering::Release);
    }

    /// Removes `w` if present; returns true when something was removed.
    fn remove(&self, w: &Arc<Waiter>) -> bool {
        let mut list = self.list.lock();
        let before = list.len();
        list.retain(|x| !Arc::ptr_eq(x, w));
        self.count.store(list.len(), Ordering::Release);
        list.len() != before
    }

    fn is_empty(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }

    fn collect_into(&self, out: &mut Vec<Arc<Waiter>>) {
        out.extend(self.list.lock().iter().cloned());
    }
}

/// The sharded registry of sleeping transactions.
///
/// Stripe indices (from [`crate::orec::OrecTable::index_for`]) map onto a
/// power-of-two number of shards by masking, so registration and scans agree
/// on the mapping no matter how many stripes the orec table has.
#[derive(Debug)]
pub struct WaitList {
    shards: Box<[CachePadded<Shard>]>,
    /// Predicate conditions name no addresses; they live here and are scanned
    /// by every writer.
    unindexed: CachePadded<Shard>,
    mask: usize,
    /// Total registered waiters; the committing writer's fast path is one
    /// atomic load of this count.
    count: AtomicUsize,
    /// Monotone counter of registrations, handy for tests and tracing.
    registrations: AtomicU64,
}

impl Default for WaitList {
    fn default() -> Self {
        WaitList::new(64)
    }
}

impl WaitList {
    /// Creates an empty registry with `shards` shards (rounded up to a power
    /// of two).
    pub fn new(shards: usize) -> Self {
        let shards = shards.next_power_of_two().max(2);
        let vec = (0..shards)
            .map(|_| CachePadded::new(Shard::default()))
            .collect::<Vec<_>>();
        WaitList {
            shards: vec.into_boxed_slice(),
            unindexed: CachePadded::new(Shard::default()),
            mask: shards - 1,
            count: AtomicUsize::new(0),
            registrations: AtomicU64::new(0),
        }
    }

    /// Number of indexed shards (excluding the unindexed shard).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard an ownership-record stripe maps to.
    #[inline]
    pub fn shard_of(&self, stripe: usize) -> usize {
        stripe & self.mask
    }

    /// Fast check used by committing writers: is anyone possibly waiting?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }

    /// Number of currently registered waiters.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Total number of registrations ever performed.
    pub fn registrations(&self) -> u64 {
        self.registrations.load(Ordering::Relaxed)
    }

    /// Adds a waiter under every shard covering `stripes`; an empty stripe
    /// list means the condition names no addresses (a predicate) and the
    /// waiter goes to the unindexed shard, scanned by every writer.
    ///
    /// The caller must double-check its wait condition *after* this returns
    /// (Algorithm 4 lines 6–13): any writer that commits after this point
    /// will observe the waiter in its `wakeWaiters` scan, and any writer that
    /// committed before it is covered by the double-check.  `deregister` must
    /// later be called with the same stripe list.
    pub fn register(&self, w: Arc<Waiter>, stripes: &[usize]) {
        for shard in self.shard_indices(stripes) {
            match shard {
                Some(i) => self.shards[i].push(Arc::clone(&w)),
                None => self.unindexed.push(Arc::clone(&w)),
            }
        }
        self.count.fetch_add(1, Ordering::Release);
        self.registrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes a waiter registered under `stripes` (Algorithm 4 line 16,
    /// after wake-up).  Must mirror the `register` call.
    pub fn deregister(&self, w: &Arc<Waiter>, stripes: &[usize]) {
        let mut removed = false;
        for shard in self.shard_indices(stripes) {
            removed |= match shard {
                Some(i) => self.shards[i].remove(w),
                None => self.unindexed.remove(w),
            };
        }
        // Only decrement for waiters that were actually registered, so a
        // deregister of an unknown waiter stays harmless.
        if removed {
            let _ = self
                .count
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                    Some(c.saturating_sub(1))
                });
        }
    }

    /// The distinct shard slots covering `stripes` (`None` = unindexed).
    fn shard_indices(&self, stripes: &[usize]) -> Vec<Option<usize>> {
        if stripes.is_empty() {
            return vec![None];
        }
        let mut idx: Vec<Option<usize>> = stripes.iter().map(|&s| Some(self.shard_of(s))).collect();
        idx.sort_unstable();
        idx.dedup();
        idx
    }

    /// Gathers the waiters a commit touching `wake` must evaluate: the union
    /// of the shards covering the written stripes, plus the unindexed shard.
    /// Shards the wake set does not touch (and touched-but-empty shards) are
    /// skipped without taking their locks.
    pub fn scan(&self, wake: &WakeSet) -> ScanPlan {
        let mut plan = ScanPlan::default();
        match wake {
            WakeSet::All => {
                for shard in self.shards.iter().chain(std::iter::once(&self.unindexed)) {
                    if shard.is_empty() {
                        plan.shards_skipped += 1;
                    } else {
                        plan.shards_scanned += 1;
                        shard.collect_into(&mut plan.waiters);
                    }
                }
            }
            WakeSet::Stripes(stripes) => {
                let mut targeted = 0usize;
                for shard_idx in self.shard_indices(stripes) {
                    let shard = match shard_idx {
                        Some(i) => &self.shards[i],
                        None => continue, // unindexed handled below
                    };
                    targeted += 1;
                    if shard.is_empty() {
                        plan.shards_skipped += 1;
                    } else {
                        plan.shards_scanned += 1;
                        shard.collect_into(&mut plan.waiters);
                    }
                }
                // Shards outside the write set's stripe cover are skipped
                // without even a count load — the whole point of targeting.
                plan.shards_skipped += self.shards.len() - targeted;
                // Every writer scans the unindexed (predicate) shard.
                if self.unindexed.is_empty() {
                    plan.shards_skipped += 1;
                } else {
                    plan.shards_scanned += 1;
                    self.unindexed.collect_into(&mut plan.waiters);
                }
            }
        }
        // A waiter spanning several scanned shards appears once per shard;
        // evaluate it once.
        plan.waiters.sort_by_key(|w| Arc::as_ptr(w) as usize);
        plan.waiters.dedup_by(|a, b| Arc::ptr_eq(a, b));
        plan
    }

    /// A shallow copy of every registered waiter (`waiting.copy()` in the
    /// paper's `wakeWaiters`); the conservative scan-all path and tests.
    pub fn snapshot(&self) -> Vec<Arc<Waiter>> {
        self.scan(&WakeSet::All).waiters
    }

    /// The still-asleep waiter published by `thread`, if any.
    ///
    /// This is the discovery side of the cancellation API
    /// (`condsync::cancel_thread`): a thread blocked in a deschedule can be
    /// looked up by its id and claimed with [`WakeReason::Cancelled`].  It
    /// walks every shard, so it belongs on control paths, not hot paths.
    pub fn find_by_thread(&self, thread: ThreadId) -> Option<Arc<Waiter>> {
        if self.is_empty() {
            return None;
        }
        self.snapshot()
            .into_iter()
            .find(|w| w.thread == thread && w.is_asleep())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn dummy_waiter(tid: ThreadId) -> Arc<Waiter> {
        Waiter::new(
            tid,
            WaitCondition::ValuesChanged(vec![(Addr(1), 0)]),
            Arc::new(Semaphore::new()),
        )
    }

    fn pred_waiter(tid: ThreadId) -> Arc<Waiter> {
        fn always(_: &mut dyn crate::tx::Tx, _: &[u64]) -> crate::ctl::TxResult<bool> {
            Ok(true)
        }
        Waiter::new(
            tid,
            WaitCondition::Pred {
                f: always,
                args: vec![],
            },
            Arc::new(Semaphore::new()),
        )
    }

    #[test]
    fn empty_registry_reports_empty() {
        let r = WaitList::new(8);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(WaitList::new(5).shard_count(), 8);
        assert_eq!(WaitList::new(64).shard_count(), 64);
        assert_eq!(WaitList::new(0).shard_count(), 2);
    }

    #[test]
    fn register_and_deregister_round_trip() {
        let r = WaitList::new(8);
        let w1 = dummy_waiter(0);
        let w2 = dummy_waiter(1);
        r.register(Arc::clone(&w1), &[3]);
        r.register(Arc::clone(&w2), &[4]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.registrations(), 2);
        r.deregister(&w1, &[3]);
        assert_eq!(r.len(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(Arc::ptr_eq(&snap[0], &w2));
    }

    #[test]
    fn deregister_unknown_waiter_is_harmless() {
        let r = WaitList::new(8);
        let w1 = dummy_waiter(0);
        r.register(Arc::clone(&w1), &[1]);
        let unknown = dummy_waiter(9);
        r.deregister(&unknown, &[1]);
        assert_eq!(r.len(), 1);
        // Even with the count decremented spuriously it must not underflow.
        r.deregister(&unknown, &[2]);
        r.deregister(&w1, &[1]);
        r.deregister(&w1, &[1]);
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn targeted_scan_hits_matching_stripes_only() {
        let r = WaitList::new(8);
        let a = dummy_waiter(0);
        let b = dummy_waiter(1);
        r.register(Arc::clone(&a), &[0]); // shard 0
        r.register(Arc::clone(&b), &[1]); // shard 1
        let hit = r.scan(&WakeSet::Stripes(vec![0]));
        assert_eq!(hit.waiters.len(), 1);
        assert!(Arc::ptr_eq(&hit.waiters[0], &a));
        assert!(hit.shards_scanned >= 1);
        let miss = r.scan(&WakeSet::Stripes(vec![2]));
        assert!(miss.waiters.is_empty());
        assert!(miss.shards_skipped >= 1);
    }

    #[test]
    fn stripes_aliasing_one_shard_scan_once() {
        let r = WaitList::new(4);
        let w = dummy_waiter(0);
        // Stripes 1 and 5 both map to shard 1 with 4 shards.
        r.register(Arc::clone(&w), &[1, 5]);
        assert_eq!(r.shard_of(1), r.shard_of(5));
        let plan = r.scan(&WakeSet::Stripes(vec![1, 5]));
        assert_eq!(plan.waiters.len(), 1, "waiter must be deduplicated");
        r.deregister(&w, &[1, 5]);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn multi_stripe_waiter_found_from_any_stripe() {
        let r = WaitList::new(8);
        let w = dummy_waiter(0);
        r.register(Arc::clone(&w), &[2, 6]);
        assert_eq!(r.len(), 1, "one waiter regardless of stripe fan-out");
        for stripe in [2usize, 6] {
            let plan = r.scan(&WakeSet::Stripes(vec![stripe]));
            assert_eq!(plan.waiters.len(), 1);
        }
        let plan = r.scan(&WakeSet::Stripes(vec![2, 6]));
        assert_eq!(plan.waiters.len(), 1, "scan across both shards dedups");
        r.deregister(&w, &[2, 6]);
        assert!(r.is_empty());
        assert!(r.scan(&WakeSet::Stripes(vec![2])).waiters.is_empty());
    }

    #[test]
    fn predicate_waiters_are_seen_by_every_wake_set() {
        let r = WaitList::new(8);
        let w = pred_waiter(0);
        r.register(Arc::clone(&w), &[]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.scan(&WakeSet::All).waiters.len(), 1);
        assert_eq!(r.scan(&WakeSet::Stripes(vec![7])).waiters.len(), 1);
        assert_eq!(r.scan(&WakeSet::Stripes(vec![])).waiters.len(), 1);
        r.deregister(&w, &[]);
        assert!(r.is_empty());
    }

    #[test]
    fn claim_wake_succeeds_exactly_once() {
        let w = dummy_waiter(0);
        assert!(w.is_asleep());
        assert!(w.wake_reason().is_none());
        assert!(w.claim_wake());
        assert!(!w.claim_wake());
        assert!(!w.is_asleep());
        assert_eq!(w.wake_reason(), Some(WakeReason::Woken));
    }

    #[test]
    fn first_claim_fixes_the_wake_reason() {
        for reason in [
            WakeReason::Woken,
            WakeReason::Timeout,
            WakeReason::Cancelled,
        ] {
            let w = dummy_waiter(0);
            assert!(w.claim(reason));
            // Later claims with any reason fail and do not overwrite.
            assert!(!w.claim(WakeReason::Woken));
            assert!(!w.claim(WakeReason::Timeout));
            assert!(!w.claim(WakeReason::Cancelled));
            assert_eq!(w.wake_reason(), Some(reason));
        }
    }

    #[test]
    fn find_by_thread_returns_only_sleeping_waiters() {
        let r = WaitList::new(8);
        assert!(r.find_by_thread(0).is_none());
        let w = dummy_waiter(7);
        r.register(Arc::clone(&w), &[3]);
        assert!(r.find_by_thread(9).is_none());
        let found = r.find_by_thread(7).expect("registered waiter");
        assert!(Arc::ptr_eq(&found, &w));
        // Once claimed, the waiter no longer counts as cancellable.
        assert!(w.claim(WakeReason::Cancelled));
        assert!(r.find_by_thread(7).is_none());
        r.deregister(&w, &[3]);
    }

    #[test]
    fn deadline_carrying_waiters_expose_their_deadline() {
        let soon = Instant::now() + std::time::Duration::from_millis(5);
        let w = Waiter::with_deadline(
            0,
            WaitCondition::ValuesChanged(vec![(Addr(1), 0)]),
            Arc::new(Semaphore::new()),
            Some(soon),
        );
        assert_eq!(w.deadline, Some(soon));
        assert!(dummy_waiter(0).deadline.is_none());
    }

    #[test]
    fn concurrent_claims_have_single_winner() {
        let w = dummy_waiter(0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || w.claim_wake()));
        }
        let winners = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&x| x)
            .count();
        assert_eq!(winners, 1);
    }

    #[test]
    fn snapshot_is_shallow_copy() {
        let r = WaitList::new(8);
        let w = dummy_waiter(0);
        r.register(Arc::clone(&w), &[1]);
        let snap = r.snapshot();
        // Claiming through the snapshot is visible through the registry copy.
        assert!(snap[0].claim_wake());
        assert!(!r.snapshot()[0].is_asleep());
    }
}
