//! Per-thread execution statistics.
//!
//! Every interesting event in the runtimes and the condition-synchronization
//! layer bumps a counter here.  The workload harness aggregates snapshots
//! across threads so the benchmark output can report abort rates, wake-up
//! counts and fallback frequencies alongside raw execution time (useful when
//! explaining *why* a mechanism wins, as §2.4.1 does).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pad::CachePadded;

macro_rules! stats_fields {
    (
        counters { $($(#[$cdoc:meta])* $cname:ident),+ $(,)? }
        maxima { $($(#[$mdoc:meta])* $mname:ident),+ $(,)? }
    ) => {
        /// Live (atomic) per-thread counters, plus high-water marks.
        ///
        /// Counters sit on commit/abort hot paths, so each one is padded to
        /// its own cache line: a thread banging on `sw_commits` must never
        /// invalidate the line a harness thread is reading `sleeps` from,
        /// and — because the padding also aligns the whole struct — two
        /// threads' contexts can't end up sharing a line through allocator
        /// adjacency.  `CachePadded` derefs to the inner atomic, so call
        /// sites are unchanged.
        #[derive(Debug, Default)]
        pub struct TxStats {
            $($(#[$cdoc])* pub $cname: CachePadded<AtomicU64>,)+
            $($(#[$mdoc])* pub $mname: CachePadded<AtomicU64>,)+
        }

        /// A point-in-time copy of [`TxStats`], suitable for aggregation and
        /// serialization.
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$cdoc])* pub $cname: u64,)+
            $($(#[$mdoc])* pub $mname: u64,)+
        }

        impl TxStats {
            /// Takes a consistent-enough snapshot of all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($cname: self.$cname.load(Ordering::Relaxed),)+
                    $($mname: self.$mname.load(Ordering::Relaxed),)+
                }
            }

            /// Resets all counters to zero.
            pub fn reset(&self) {
                $(self.$cname.store(0, Ordering::Relaxed);)+
                $(self.$mname.store(0, Ordering::Relaxed);)+
            }
        }

        impl StatsSnapshot {
            /// Combines two snapshots: event counters add, high-water marks
            /// take the larger value (a maximum across threads summed would
            /// overstate every per-transaction peak).
            pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($cname: self.$cname + other.$cname,)+
                    $($mname: self.$mname.max(other.$mname),)+
                }
            }

            /// Field names and values in declaration order, for serialization
            /// without a reflection framework.
            pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
                vec![
                    $((stringify!($cname), self.$cname),)+
                    $((stringify!($mname), self.$mname),)+
                ]
            }

            /// Sets a counter by field name; returns `false` for unknown
            /// names (forward compatibility when reading old reports).
            pub fn set_by_name(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $(stringify!($cname) => {
                        self.$cname = value;
                        true
                    })+
                    $(stringify!($mname) => {
                        self.$mname = value;
                        true
                    })+
                    _ => false,
                }
            }
        }
    };
}

stats_fields! {
    counters {
    /// Software-mode transactions committed.
    sw_commits,
    /// Software-mode transaction attempts aborted.
    sw_aborts,
    /// Hardware-mode transactions committed.
    hw_commits,
    /// Hardware-mode transaction attempts aborted.
    hw_aborts,
    /// Times the serial fallback / irrevocable lock was acquired.
    serial_acquires,
    /// Transactions that committed while holding the serial gate (counted in
    /// addition to `sw_commits`, which serial commits also increment).
    serial_commits,
    /// Attempts re-executed in a different mode than the previous attempt
    /// (hardware → software, software → serial, relogs, post-wake resets).
    mode_switches,
    /// Escalations requested by the contention-management policy
    /// (see `tm_core::policy`).
    cm_escalations,
    /// Times a transaction descheduled itself (Retry/Await/WaitPred slept).
    descheds,
    /// Times the Deschedule double-check found the condition already
    /// established, avoiding a sleep.
    desched_skips,
    /// Times a thread actually blocked on its semaphore.
    sleeps,
    /// Times a committed writer woke a sleeping thread.
    wakeups,
    /// Wait conditions evaluated by committing writers (`wakeWaiters` work).
    wake_checks,
    /// Waiter-registry shards a committing writer actually visited.
    wake_shard_scans,
    /// Waiter-registry shards a committing writer skipped (either outside
    /// its write set's stripes, or empty at scan time).
    wake_shard_skips,
    /// Writer commits that used a targeted (stripe-filtered) wake scan
    /// instead of the conservative scan-everything path.
    wake_targeted,
    /// Timed waits that ended because their deadline passed
    /// (`WakeReason::Timeout`), counted by the sleeper.
    wake_timeouts,
    /// Waits ended by an explicit `condsync::cancel`
    /// (`WakeReason::Cancelled`), counted by the sleeper.
    wake_cancels,
    /// Timer-wheel ticks advanced by this thread's lazy polls.
    timer_ticks,
    /// Times a `Retry` transaction restarted to populate its value log.
    retry_relogs,
    /// Explicit aborts requested by the program (Restart baseline, xabort).
    explicit_aborts,
    /// Condition-variable waits (TMCondVar and Pthreads baselines).
    condvar_waits,
    /// Condition-variable signals/broadcasts issued.
    condvar_signals,
    /// Commit-time quiescence rounds executed for privatization safety.
    quiesce_rounds,
    /// Epoch-table slots examined by quiescence scans (commit-time
    /// privatization waits); pairs with `quiesce_rounds` to show how much
    /// commit-path polling the decentralized table absorbs.
    quiesce_scans,
    /// Shared clock-line read-modify-writes: every GV1 commit tick, plus
    /// the lazy plane's conflict-path CAS-advances (`note_stale`) and
    /// eager-rollback bumps.  The number the decentralized clock drives
    /// toward zero.
    clock_cas,
    /// Writer commits that reused `now() + 1` as their timestamp without
    /// writing the shared clock line (lazy plane only).
    clock_reuse,
    /// Access-set containers (read sets, write logs, index sets) handed out
    /// from the per-thread [`crate::access::LogPool`] with their capacity
    /// already grown by an earlier attempt, instead of being allocated.
    log_pool_reuses,
    }
    maxima {
    /// Largest read set any single attempt built: distinct addresses on the
    /// software STMs, distinct speculative read *lines* on HTM hardware
    /// attempts (the simulator tracks reads at line granularity, so the HTM
    /// value is not comparable 1:1 with the STM rows).
    read_set_max,
    /// Largest write log (distinct addresses) any single attempt built.
    write_set_max,
    }
}

impl TxStats {
    /// Increments a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-water mark to `value` if it is larger.
    #[inline]
    pub fn record_max(mark: &AtomicU64, value: u64) {
        mark.fetch_max(value, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total committed transactions (software + hardware).
    pub fn total_commits(&self) -> u64 {
        self.sw_commits + self.hw_commits
    }

    /// Total aborted attempts (software + hardware).
    pub fn total_aborts(&self) -> u64 {
        self.sw_aborts + self.hw_aborts
    }

    /// Aborts per commit; 0 when nothing committed.
    pub fn abort_ratio(&self) -> f64 {
        if self.total_commits() == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.total_commits() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = TxStats::default();
        TxStats::bump(&s.sw_commits);
        TxStats::bump(&s.sw_commits);
        TxStats::add(&s.sleeps, 5);
        let snap = s.snapshot();
        assert_eq!(snap.sw_commits, 2);
        assert_eq!(snap.sleeps, 5);
        assert_eq!(snap.hw_commits, 0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = StatsSnapshot {
            sw_commits: 3,
            wakeups: 1,
            ..Default::default()
        };
        let b = StatsSnapshot {
            sw_commits: 4,
            sleeps: 2,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.sw_commits, 7);
        assert_eq!(m.wakeups, 1);
        assert_eq!(m.sleeps, 2);
    }

    #[test]
    fn ratios() {
        let s = StatsSnapshot {
            sw_commits: 10,
            sw_aborts: 5,
            hw_commits: 10,
            hw_aborts: 5,
            ..Default::default()
        };
        assert_eq!(s.total_commits(), 20);
        assert_eq!(s.total_aborts(), 10);
        assert!((s.abort_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = TxStats::default();
        TxStats::bump(&s.descheds);
        TxStats::record_max(&s.read_set_max, 99);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn record_max_keeps_the_high_water_mark() {
        let s = TxStats::default();
        TxStats::record_max(&s.read_set_max, 10);
        TxStats::record_max(&s.read_set_max, 4);
        TxStats::record_max(&s.write_set_max, 7);
        let snap = s.snapshot();
        assert_eq!(snap.read_set_max, 10);
        assert_eq!(snap.write_set_max, 7);
    }

    #[test]
    fn merge_takes_max_for_high_water_marks() {
        let a = StatsSnapshot {
            sw_commits: 1,
            read_set_max: 100,
            write_set_max: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            sw_commits: 2,
            read_set_max: 50,
            write_set_max: 9,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.sw_commits, 3, "event counters still add");
        assert_eq!(m.read_set_max, 100);
        assert_eq!(m.write_set_max, 9);
    }

    #[test]
    fn as_pairs_and_set_by_name_cover_high_water_marks() {
        let mut s = StatsSnapshot::default();
        assert!(s.set_by_name("read_set_max", 5));
        assert!(s.set_by_name("log_pool_reuses", 3));
        assert!(!s.set_by_name("no_such_stat", 1));
        let pairs = s.as_pairs();
        assert!(pairs.contains(&("read_set_max", 5)));
        assert!(pairs.contains(&("log_pool_reuses", 3)));
    }

    #[test]
    fn clock_counters_round_trip() {
        let s = TxStats::default();
        TxStats::bump(&s.clock_cas);
        TxStats::bump(&s.clock_reuse);
        TxStats::add(&s.quiesce_scans, 3);
        let snap = s.snapshot();
        assert_eq!(
            (snap.clock_cas, snap.clock_reuse, snap.quiesce_scans),
            (1, 1, 3)
        );
        let pairs = snap.as_pairs();
        assert!(pairs.contains(&("clock_cas", 1)));
        assert!(pairs.contains(&("clock_reuse", 1)));
        assert!(pairs.contains(&("quiesce_scans", 3)));
    }

    #[test]
    fn hot_counters_live_on_distinct_cache_lines() {
        use crate::pad::CACHE_LINE_BYTES;
        let s = TxStats::default();
        let commits = &*s.sw_commits as *const AtomicU64 as usize;
        let aborts = &*s.sw_aborts as *const AtomicU64 as usize;
        assert!(commits.abs_diff(aborts) >= CACHE_LINE_BYTES);
        assert_eq!(commits % CACHE_LINE_BYTES, 0);
    }
}
