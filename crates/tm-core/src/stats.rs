//! Per-thread execution statistics.
//!
//! Every interesting event in the runtimes and the condition-synchronization
//! layer bumps a counter here.  The workload harness aggregates snapshots
//! across threads so the benchmark output can report abort rates, wake-up
//! counts and fallback frequencies alongside raw execution time (useful when
//! explaining *why* a mechanism wins, as §2.4.1 does).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pad::CachePadded;

/// Workload-level operation classes for per-operation latency routing.
///
/// A workload (e.g. the KV/session-store scenario) tags the current thread
/// with the class of the operation it is about to run
/// ([`crate::thread::ThreadCtx::set_op_class`]); the driver then records the
/// whole transaction's wall-clock latency — retries, backoff and upgrades
/// included — into the matching histogram at commit, alongside the
/// update/read-only commit-class histograms.  Reports can therefore show
/// p50/p99/p999 *per operation*, not just per commit class.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum OpClass {
    /// Point lookup (typically a declared read-only transaction).
    Get,
    /// Insert or update.
    Put,
    /// Removal.
    Delete,
    /// Range scan over an ordered index.
    Scan,
}

impl OpClass {
    /// All operation classes, in rendering order.
    pub const ALL: [OpClass; 4] = [OpClass::Get, OpClass::Put, OpClass::Delete, OpClass::Scan];

    /// The label used in report `# latency` lines.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Put => "put",
            OpClass::Delete => "del",
            OpClass::Scan => "scan",
        }
    }

    /// Non-zero wire tag for the thread-context slot (0 means "no class").
    pub(crate) fn tag(self) -> u8 {
        match self {
            OpClass::Get => 1,
            OpClass::Put => 2,
            OpClass::Delete => 3,
            OpClass::Scan => 4,
        }
    }

    /// Inverse of [`OpClass::tag`]; `None` for 0 (no class set).
    pub(crate) fn from_tag(tag: u8) -> Option<OpClass> {
        match tag {
            1 => Some(OpClass::Get),
            2 => Some(OpClass::Put),
            3 => Some(OpClass::Delete),
            4 => Some(OpClass::Scan),
            _ => None,
        }
    }
}

/// Number of log2 buckets in a [`LatencyHistogram`]: bucket `i` holds
/// samples whose nanosecond value has bit length `i`, so the covered range
/// tops out around 2 seconds before the last bucket absorbs the overflow.
pub const LATENCY_BUCKETS: usize = 32;

/// A cheap fixed-bucket latency histogram: 32 log2 buckets of plain
/// relaxed counters.
///
/// Recording is one `leading_zeros` plus one relaxed `fetch_add` — cheap
/// enough for the driver's per-transaction hot path.  The whole histogram is
/// wrapped in [`CachePadded`] inside [`TxStats`], so one thread's recording
/// never invalidates another thread's counter lines; buckets *within* a
/// thread's histogram deliberately share lines (only the owner writes them).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The log2 bucket index for a sample of `nanos` nanoseconds.
#[inline]
fn bucket_for(nanos: u64) -> usize {
    let bits = (u64::BITS - nanos.leading_zeros()) as usize;
    bits.min(LATENCY_BUCKETS - 1)
}

impl LatencyHistogram {
    /// Records one sample of `nanos` nanoseconds.
    #[inline]
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_for(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }

    /// Zeroes every bucket.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], mergeable across threads.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LatencySnapshot {
    buckets: [u64; LATENCY_BUCKETS],
}

impl LatencySnapshot {
    /// Bucket-wise sum of two snapshots.
    pub fn merge(&self, other: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i] + other.buckets[i]),
        }
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// An upper bound (in nanoseconds) on the `q`-quantile sample,
    /// `0.0 < q <= 1.0`: the inclusive upper edge of the log2 bucket the
    /// quantile falls in.  Returns 0 when the histogram is empty.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                // Bucket 0 holds only zero; the last bucket absorbs every
                // overflowing sample, so its upper edge is unbounded.
                return match i {
                    0 => 0,
                    i if i == LATENCY_BUCKETS - 1 => u64::MAX,
                    i => (1u64 << i) - 1,
                };
            }
        }
        u64::MAX
    }
}

macro_rules! stats_fields {
    (
        counters { $($(#[$cdoc:meta])* $cname:ident),+ $(,)? }
        maxima { $($(#[$mdoc:meta])* $mname:ident),+ $(,)? }
        histograms { $($(#[$hdoc:meta])* $hname:ident),+ $(,)? }
    ) => {
        /// Live (atomic) per-thread counters, plus high-water marks.
        ///
        /// Counters sit on commit/abort hot paths, so each one is padded to
        /// its own cache line: a thread banging on `sw_commits` must never
        /// invalidate the line a harness thread is reading `sleeps` from,
        /// and — because the padding also aligns the whole struct — two
        /// threads' contexts can't end up sharing a line through allocator
        /// adjacency.  `CachePadded` derefs to the inner atomic, so call
        /// sites are unchanged.
        #[derive(Debug, Default)]
        pub struct TxStats {
            $($(#[$cdoc])* pub $cname: CachePadded<AtomicU64>,)+
            $($(#[$mdoc])* pub $mname: CachePadded<AtomicU64>,)+
            $($(#[$hdoc])* pub $hname: CachePadded<LatencyHistogram>,)+
        }

        /// A point-in-time copy of [`TxStats`], suitable for aggregation and
        /// serialization.
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$cdoc])* pub $cname: u64,)+
            $($(#[$mdoc])* pub $mname: u64,)+
            $($(#[$hdoc])* pub $hname: LatencySnapshot,)+
        }

        impl TxStats {
            /// Takes a consistent-enough snapshot of all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($cname: self.$cname.load(Ordering::Relaxed),)+
                    $($mname: self.$mname.load(Ordering::Relaxed),)+
                    $($hname: self.$hname.snapshot(),)+
                }
            }

            /// Resets all counters to zero.
            pub fn reset(&self) {
                $(self.$cname.store(0, Ordering::Relaxed);)+
                $(self.$mname.store(0, Ordering::Relaxed);)+
                $(self.$hname.reset();)+
            }
        }

        impl StatsSnapshot {
            /// Combines two snapshots: event counters add, high-water marks
            /// take the larger value (a maximum across threads summed would
            /// overstate every per-transaction peak), histogram buckets add.
            pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($cname: self.$cname + other.$cname,)+
                    $($mname: self.$mname.max(other.$mname),)+
                    $($hname: self.$hname.merge(&other.$hname),)+
                }
            }

            /// Field names and values in declaration order, for serialization
            /// without a reflection framework.  Histograms are not included
            /// (readers of old reports simply never see them, and
            /// [`StatsSnapshot::set_by_name`] already ignores unknown names).
            pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
                vec![
                    $((stringify!($cname), self.$cname),)+
                    $((stringify!($mname), self.$mname),)+
                ]
            }

            /// Sets a counter by field name; returns `false` for unknown
            /// names (forward compatibility when reading old reports).
            pub fn set_by_name(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $(stringify!($cname) => {
                        self.$cname = value;
                        true
                    })+
                    $(stringify!($mname) => {
                        self.$mname = value;
                        true
                    })+
                    _ => false,
                }
            }
        }
    };
}

stats_fields! {
    counters {
    /// Software-mode transactions committed.
    sw_commits,
    /// Software-mode transaction attempts aborted.
    sw_aborts,
    /// Hardware-mode transactions committed.
    hw_commits,
    /// Hardware-mode transaction attempts aborted.
    hw_aborts,
    /// Times the serial fallback / irrevocable lock was acquired.
    serial_acquires,
    /// Transactions that committed while holding the serial gate (counted in
    /// addition to `sw_commits`, which serial commits also increment).
    serial_commits,
    /// Attempts re-executed in a different mode than the previous attempt
    /// (hardware → software, software → serial, relogs, post-wake resets).
    mode_switches,
    /// Escalations requested by the contention-management policy
    /// (see `tm_core::policy`).
    cm_escalations,
    /// Times a transaction descheduled itself (Retry/Await/WaitPred slept).
    descheds,
    /// Times the Deschedule double-check found the condition already
    /// established, avoiding a sleep.
    desched_skips,
    /// Times a thread actually blocked on its semaphore.
    sleeps,
    /// Times a committed writer woke a sleeping thread.
    wakeups,
    /// Wait conditions evaluated by committing writers (`wakeWaiters` work).
    wake_checks,
    /// Waiter-registry shards a committing writer actually visited.
    wake_shard_scans,
    /// Waiter-registry shards a committing writer skipped (either outside
    /// its write set's stripes, or empty at scan time).
    wake_shard_skips,
    /// Writer commits that used a targeted (stripe-filtered) wake scan
    /// instead of the conservative scan-everything path.
    wake_targeted,
    /// Timed waits that ended because their deadline passed
    /// (`WakeReason::Timeout`), counted by the sleeper.
    wake_timeouts,
    /// Waits ended by an explicit `condsync::cancel`
    /// (`WakeReason::Cancelled`), counted by the sleeper.
    wake_cancels,
    /// Timer-wheel ticks advanced by this thread's lazy polls.
    timer_ticks,
    /// Times a `Retry` transaction restarted to populate its value log.
    retry_relogs,
    /// Explicit aborts requested by the program (Restart baseline, xabort).
    explicit_aborts,
    /// Condition-variable waits (TMCondVar and Pthreads baselines).
    condvar_waits,
    /// Condition-variable signals/broadcasts issued.
    condvar_signals,
    /// Hardware aborts manufactured by the fault-injection plane
    /// (`FaultPlane`); zero whenever injection is disabled.
    hw_faults_injected,
    /// TMCondVar watchdog timeouts delivered as spurious wake-ups: the
    /// bounded re-delivery that closes the signal-before-commit window.
    watchdog_redeliveries,
    /// Commit-time quiescence rounds executed for privatization safety.
    quiesce_rounds,
    /// Epoch-table slots examined by quiescence scans (commit-time
    /// privatization waits); pairs with `quiesce_rounds` to show how much
    /// commit-path polling the decentralized table absorbs.
    quiesce_scans,
    /// Shared clock-line read-modify-writes: every GV1 commit tick, plus
    /// the lazy plane's conflict-path CAS-advances (`note_stale`) and
    /// eager-rollback bumps.  The number the decentralized clock drives
    /// toward zero.
    clock_cas,
    /// Writer commits that reused `now() + 1` as their timestamp without
    /// writing the shared clock line (lazy plane only).
    clock_reuse,
    /// Access-set containers (read sets, write logs, index sets) handed out
    /// from the per-thread [`crate::access::LogPool`] with their capacity
    /// already grown by an earlier attempt, instead of being allocated.
    log_pool_reuses,
    /// Read-only transactions that committed on the snapshot fast path
    /// (no read set, no commit-time validation, no clock traffic) — software
    /// snapshot commits plus hardware commits of declared-read-only
    /// transactions that wrote nothing.
    ro_fast_commits,
    /// Declared read-only transactions upgraded to full update transactions
    /// (the body wrote, allocated, or descheduled).
    ro_upgrades,
    /// Snapshot reads that survived a too-new version by re-sampling the
    /// begin snapshot (at the first read, or after an `Extend`-mode cover
    /// re-check) instead of aborting.
    snapshot_refreshes,
    /// Transactional allocations served mutex-free from the thread's own
    /// arena bins (no global allocator lock taken).
    heap_arena_allocs,
    /// Arena refills that took the global allocator lock to carve a batch of
    /// blocks.  Steady-state churn should keep `heap_global_refills /
    /// heap_arena_allocs` tiny — that ratio is the arena plane's whole
    /// point, and the `memory_plane` bench asserts it.
    heap_global_refills,
    /// Frees of a block owned by *another* thread's arena, pushed onto the
    /// owner's lock-free remote-free stack instead of the global allocator.
    heap_remote_frees,
    /// Failed compare-and-swaps on ownership-record stripes, summed over the
    /// shards of the orec plane.  Per-thread copies stay zero; the system
    /// overlays the shard counters when aggregating (see
    /// `TmSystem::stats`).
    orec_cas_failures,
    }
    maxima {
    /// Largest read set any single attempt built: distinct addresses on the
    /// software STMs, distinct speculative read *lines* on HTM hardware
    /// attempts (the simulator tracks reads at line granularity, so the HTM
    /// value is not comparable 1:1 with the STM rows).
    read_set_max,
    /// Largest write log (distinct addresses) any single attempt built.
    write_set_max,
    }
    histograms {
    /// Wall-clock latency of committed update transactions (begin of the
    /// first attempt to commit, including aborted attempts and backoff).
    update_tx_latency,
    /// Wall-clock latency of committed declared-read-only transactions
    /// (including any upgrade and re-execution as an update transaction).
    ro_tx_latency,
    /// Wall-clock latency of transactions tagged [`OpClass::Get`] by the
    /// workload (point lookups), retries and backoff included.
    op_get_latency,
    /// Wall-clock latency of transactions tagged [`OpClass::Put`].
    op_put_latency,
    /// Wall-clock latency of transactions tagged [`OpClass::Delete`].
    op_del_latency,
    /// Wall-clock latency of transactions tagged [`OpClass::Scan`] (range
    /// scans over the ordered index).
    op_scan_latency,
    }
}

impl TxStats {
    /// Increments a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a high-water mark to `value` if it is larger.
    #[inline]
    pub fn record_max(mark: &AtomicU64, value: u64) {
        mark.fetch_max(value, Ordering::Relaxed);
    }

    /// The latency histogram that records transactions of the given
    /// workload-declared operation class.
    pub fn op_histogram(&self, class: OpClass) -> &LatencyHistogram {
        match class {
            OpClass::Get => &self.op_get_latency,
            OpClass::Put => &self.op_put_latency,
            OpClass::Delete => &self.op_del_latency,
            OpClass::Scan => &self.op_scan_latency,
        }
    }
}

impl StatsSnapshot {
    /// The latency snapshot for the given workload-declared operation class.
    pub fn op_latency(&self, class: OpClass) -> &LatencySnapshot {
        match class {
            OpClass::Get => &self.op_get_latency,
            OpClass::Put => &self.op_put_latency,
            OpClass::Delete => &self.op_del_latency,
            OpClass::Scan => &self.op_scan_latency,
        }
    }
}

impl StatsSnapshot {
    /// Total committed transactions (software + hardware).
    pub fn total_commits(&self) -> u64 {
        self.sw_commits + self.hw_commits
    }

    /// Total aborted attempts (software + hardware).
    pub fn total_aborts(&self) -> u64 {
        self.sw_aborts + self.hw_aborts
    }

    /// Aborts per commit; 0 when nothing committed.
    pub fn abort_ratio(&self) -> f64 {
        if self.total_commits() == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.total_commits() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = TxStats::default();
        TxStats::bump(&s.sw_commits);
        TxStats::bump(&s.sw_commits);
        TxStats::add(&s.sleeps, 5);
        let snap = s.snapshot();
        assert_eq!(snap.sw_commits, 2);
        assert_eq!(snap.sleeps, 5);
        assert_eq!(snap.hw_commits, 0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = StatsSnapshot {
            sw_commits: 3,
            wakeups: 1,
            ..Default::default()
        };
        let b = StatsSnapshot {
            sw_commits: 4,
            sleeps: 2,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.sw_commits, 7);
        assert_eq!(m.wakeups, 1);
        assert_eq!(m.sleeps, 2);
    }

    #[test]
    fn ratios() {
        let s = StatsSnapshot {
            sw_commits: 10,
            sw_aborts: 5,
            hw_commits: 10,
            hw_aborts: 5,
            ..Default::default()
        };
        assert_eq!(s.total_commits(), 20);
        assert_eq!(s.total_aborts(), 10);
        assert!((s.abort_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = TxStats::default();
        TxStats::bump(&s.descheds);
        TxStats::record_max(&s.read_set_max, 99);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn record_max_keeps_the_high_water_mark() {
        let s = TxStats::default();
        TxStats::record_max(&s.read_set_max, 10);
        TxStats::record_max(&s.read_set_max, 4);
        TxStats::record_max(&s.write_set_max, 7);
        let snap = s.snapshot();
        assert_eq!(snap.read_set_max, 10);
        assert_eq!(snap.write_set_max, 7);
    }

    #[test]
    fn merge_takes_max_for_high_water_marks() {
        let a = StatsSnapshot {
            sw_commits: 1,
            read_set_max: 100,
            write_set_max: 2,
            ..Default::default()
        };
        let b = StatsSnapshot {
            sw_commits: 2,
            read_set_max: 50,
            write_set_max: 9,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.sw_commits, 3, "event counters still add");
        assert_eq!(m.read_set_max, 100);
        assert_eq!(m.write_set_max, 9);
    }

    #[test]
    fn as_pairs_and_set_by_name_cover_high_water_marks() {
        let mut s = StatsSnapshot::default();
        assert!(s.set_by_name("read_set_max", 5));
        assert!(s.set_by_name("log_pool_reuses", 3));
        assert!(!s.set_by_name("no_such_stat", 1));
        let pairs = s.as_pairs();
        assert!(pairs.contains(&("read_set_max", 5)));
        assert!(pairs.contains(&("log_pool_reuses", 3)));
    }

    #[test]
    fn clock_counters_round_trip() {
        let s = TxStats::default();
        TxStats::bump(&s.clock_cas);
        TxStats::bump(&s.clock_reuse);
        TxStats::add(&s.quiesce_scans, 3);
        let snap = s.snapshot();
        assert_eq!(
            (snap.clock_cas, snap.clock_reuse, snap.quiesce_scans),
            (1, 1, 3)
        );
        let pairs = snap.as_pairs();
        assert!(pairs.contains(&("clock_cas", 1)));
        assert!(pairs.contains(&("clock_reuse", 1)));
        assert!(pairs.contains(&("quiesce_scans", 3)));
    }

    #[test]
    fn snapshot_counters_round_trip() {
        let s = TxStats::default();
        TxStats::bump(&s.ro_fast_commits);
        TxStats::bump(&s.ro_upgrades);
        TxStats::add(&s.snapshot_refreshes, 2);
        let snap = s.snapshot();
        assert_eq!(
            (
                snap.ro_fast_commits,
                snap.ro_upgrades,
                snap.snapshot_refreshes
            ),
            (1, 1, 2)
        );
        let pairs = snap.as_pairs();
        assert!(pairs.contains(&("ro_fast_commits", 1)));
        assert!(pairs.contains(&("ro_upgrades", 1)));
        assert!(pairs.contains(&("snapshot_refreshes", 2)));
    }

    #[test]
    fn memory_plane_counters_round_trip() {
        let s = TxStats::default();
        TxStats::bump(&s.heap_arena_allocs);
        TxStats::bump(&s.heap_global_refills);
        TxStats::add(&s.heap_remote_frees, 2);
        let snap = s.snapshot();
        assert_eq!(
            (
                snap.heap_arena_allocs,
                snap.heap_global_refills,
                snap.heap_remote_frees,
                snap.orec_cas_failures,
            ),
            (1, 1, 2, 0)
        );
        let pairs = snap.as_pairs();
        assert!(pairs.contains(&("heap_arena_allocs", 1)));
        assert!(pairs.contains(&("heap_global_refills", 1)));
        assert!(pairs.contains(&("heap_remote_frees", 2)));
        assert!(pairs.contains(&("orec_cas_failures", 0)));
    }

    #[test]
    fn histogram_buckets_by_log2_and_quantiles_bound_samples() {
        let h = LatencyHistogram::default();
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(h.snapshot().quantile_upper_bound(0.5), 0);
        // 90 samples at ~100ns, 9 at ~10µs, 1 at ~1ms.
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..9 {
            h.record(10_000);
        }
        h.record(1_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        let p50 = snap.quantile_upper_bound(0.50);
        let p99 = snap.quantile_upper_bound(0.99);
        let p999 = snap.quantile_upper_bound(0.999);
        assert!((100..1000).contains(&p50), "p50 bound {p50}");
        assert!((10_000..100_000).contains(&p99), "p99 bound {p99}");
        assert!(p999 >= 1_000_000, "p999 bound {p999}");
        assert!(p50 <= p99 && p99 <= p999);
        h.reset();
        assert_eq!(h.snapshot().count(), 0);
    }

    #[test]
    fn histogram_extremes_stay_in_range() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.quantile_upper_bound(0.25), 0, "zero lands in bucket 0");
        assert_eq!(snap.quantile_upper_bound(1.0), u64::MAX);
    }

    #[test]
    fn histograms_merge_bucket_wise_through_snapshots() {
        let a = TxStats::default();
        let b = TxStats::default();
        a.update_tx_latency.record(100);
        b.update_tx_latency.record(100);
        b.ro_tx_latency.record(50);
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.update_tx_latency.count(), 2);
        assert_eq!(m.ro_tx_latency.count(), 1);
        // Reset clears histograms too.
        a.update_tx_latency.record(1);
        a.reset();
        assert_eq!(a.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn hot_counters_live_on_distinct_cache_lines() {
        use crate::pad::CACHE_LINE_BYTES;
        let s = TxStats::default();
        let commits = &*s.sw_commits as *const AtomicU64 as usize;
        let aborts = &*s.sw_aborts as *const AtomicU64 as usize;
        assert!(commits.abs_diff(aborts) >= CACHE_LINE_BYTES);
        assert_eq!(commits % CACHE_LINE_BYTES, 0);
    }
}
