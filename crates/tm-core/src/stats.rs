//! Per-thread execution statistics.
//!
//! Every interesting event in the runtimes and the condition-synchronization
//! layer bumps a counter here.  The workload harness aggregates snapshots
//! across threads so the benchmark output can report abort rates, wake-up
//! counts and fallback frequencies alongside raw execution time (useful when
//! explaining *why* a mechanism wins, as §2.4.1 does).

use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! stats_fields {
    ($($(#[$doc:meta])* $name:ident),+ $(,)?) => {
        /// Live (atomic) per-thread counters.
        #[derive(Debug, Default)]
        pub struct TxStats {
            $($(#[$doc])* pub $name: AtomicU64,)+
        }

        /// A point-in-time copy of [`TxStats`], suitable for aggregation and
        /// serialization.
        #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
        pub struct StatsSnapshot {
            $($(#[$doc])* pub $name: u64,)+
        }

        impl TxStats {
            /// Takes a consistent-enough snapshot of all counters.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name.load(Ordering::Relaxed),)+
                }
            }

            /// Resets all counters to zero.
            pub fn reset(&self) {
                $(self.$name.store(0, Ordering::Relaxed);)+
            }
        }

        impl StatsSnapshot {
            /// Element-wise sum of two snapshots.
            pub fn merge(&self, other: &StatsSnapshot) -> StatsSnapshot {
                StatsSnapshot {
                    $($name: self.$name + other.$name,)+
                }
            }

            /// Field names and values in declaration order, for serialization
            /// without a reflection framework.
            pub fn as_pairs(&self) -> Vec<(&'static str, u64)> {
                vec![$((stringify!($name), self.$name)),+]
            }

            /// Sets a counter by field name; returns `false` for unknown
            /// names (forward compatibility when reading old reports).
            pub fn set_by_name(&mut self, name: &str, value: u64) -> bool {
                match name {
                    $(stringify!($name) => {
                        self.$name = value;
                        true
                    })+
                    _ => false,
                }
            }
        }
    };
}

stats_fields! {
    /// Software-mode transactions committed.
    sw_commits,
    /// Software-mode transaction attempts aborted.
    sw_aborts,
    /// Hardware-mode transactions committed.
    hw_commits,
    /// Hardware-mode transaction attempts aborted.
    hw_aborts,
    /// Times the serial fallback / irrevocable lock was acquired.
    serial_acquires,
    /// Times a transaction descheduled itself (Retry/Await/WaitPred slept).
    descheds,
    /// Times the Deschedule double-check found the condition already
    /// established, avoiding a sleep.
    desched_skips,
    /// Times a thread actually blocked on its semaphore.
    sleeps,
    /// Times a committed writer woke a sleeping thread.
    wakeups,
    /// Wait conditions evaluated by committing writers (`wakeWaiters` work).
    wake_checks,
    /// Waiter-registry shards a committing writer actually visited.
    wake_shard_scans,
    /// Waiter-registry shards a committing writer skipped (either outside
    /// its write set's stripes, or empty at scan time).
    wake_shard_skips,
    /// Writer commits that used a targeted (stripe-filtered) wake scan
    /// instead of the conservative scan-everything path.
    wake_targeted,
    /// Timed waits that ended because their deadline passed
    /// (`WakeReason::Timeout`), counted by the sleeper.
    wake_timeouts,
    /// Waits ended by an explicit `condsync::cancel`
    /// (`WakeReason::Cancelled`), counted by the sleeper.
    wake_cancels,
    /// Timer-wheel ticks advanced by this thread's lazy polls.
    timer_ticks,
    /// Times a `Retry` transaction restarted to populate its value log.
    retry_relogs,
    /// Explicit aborts requested by the program (Restart baseline, xabort).
    explicit_aborts,
    /// Condition-variable waits (TMCondVar and Pthreads baselines).
    condvar_waits,
    /// Condition-variable signals/broadcasts issued.
    condvar_signals,
    /// Commit-time quiescence rounds executed for privatization safety.
    quiesce_rounds,
}

impl TxStats {
    /// Increments a counter by one.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Total committed transactions (software + hardware).
    pub fn total_commits(&self) -> u64 {
        self.sw_commits + self.hw_commits
    }

    /// Total aborted attempts (software + hardware).
    pub fn total_aborts(&self) -> u64 {
        self.sw_aborts + self.hw_aborts
    }

    /// Aborts per commit; 0 when nothing committed.
    pub fn abort_ratio(&self) -> f64 {
        if self.total_commits() == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / self.total_commits() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = TxStats::default();
        TxStats::bump(&s.sw_commits);
        TxStats::bump(&s.sw_commits);
        TxStats::add(&s.sleeps, 5);
        let snap = s.snapshot();
        assert_eq!(snap.sw_commits, 2);
        assert_eq!(snap.sleeps, 5);
        assert_eq!(snap.hw_commits, 0);
    }

    #[test]
    fn merge_adds_fields() {
        let a = StatsSnapshot {
            sw_commits: 3,
            wakeups: 1,
            ..Default::default()
        };
        let b = StatsSnapshot {
            sw_commits: 4,
            sleeps: 2,
            ..Default::default()
        };
        let m = a.merge(&b);
        assert_eq!(m.sw_commits, 7);
        assert_eq!(m.wakeups, 1);
        assert_eq!(m.sleeps, 2);
    }

    #[test]
    fn ratios() {
        let s = StatsSnapshot {
            sw_commits: 10,
            sw_aborts: 5,
            hw_commits: 10,
            hw_aborts: 5,
            ..Default::default()
        };
        assert_eq!(s.total_commits(), 20);
        assert_eq!(s.total_aborts(), 10);
        assert!((s.abort_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(StatsSnapshot::default().abort_ratio(), 0.0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = TxStats::default();
        TxStats::bump(&s.descheds);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
