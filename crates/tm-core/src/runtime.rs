//! Runtime traits: how workloads execute transactions.
//!
//! [`TmRuntime`] is object-safe and is what the condition-synchronization
//! layer uses (it must start read-only transactions for the `Deschedule`
//! double-check and for `wakeWaiters` without knowing which runtime it is
//! running on).  [`TmRt`] adds the ergonomic generic `atomically` entry
//! point used by data structures and workloads.

use std::sync::Arc;

use crate::ctl::TxResult;
use crate::system::TmSystem;
use crate::thread::ThreadCtx;
use crate::tx::Tx;

/// Object-safe view of a transaction runtime.
pub trait TmRuntime: Send + Sync {
    /// The system this runtime executes against.
    fn system(&self) -> &Arc<TmSystem>;

    /// Short name used in benchmark output (`"eager-stm"`, `"lazy-stm"`,
    /// `"htm"`).
    fn name(&self) -> &'static str;

    /// Runs a transaction body to completion, re-executing it as needed, and
    /// returns the body's value encoded as a `u64`.
    fn exec_u64(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
    ) -> u64;

    /// Runs a read-only transaction returning a boolean.
    ///
    /// Used by `Deschedule`'s post-rollback double-check and by
    /// `wakeWaiters`; on the HTM runtime this should be attempted in
    /// hardware, falling back as necessary.
    fn exec_bool(
        &self,
        thread: &Arc<ThreadCtx>,
        body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<bool>,
    ) -> bool {
        self.exec_u64(thread, &mut |tx| body(tx).map(u64::from)) != 0
    }
}

/// Ergonomic, generic transaction execution.
///
/// Not object-safe; workloads that need to be generic over the runtime take
/// `R: TmRt` as a type parameter, while the condition-synchronization layer
/// sticks to `&dyn TmRuntime`.
pub trait TmRt: TmRuntime {
    /// Runs `body` as a transaction, re-executing it until it commits, and
    /// returns its result.
    ///
    /// The body may be re-executed any number of times (conflict aborts,
    /// mode switches, wake-ups after a deschedule), so it must be free of
    /// non-transactional side effects.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use tm_core::{TmConfig, TmRt, TmSystem, TmVar};
    ///
    /// let system = TmSystem::new(TmConfig::small());
    /// let rt = stm_eager::EagerStm::new(Arc::clone(&system));
    /// let th = system.register_thread();
    /// let v = TmVar::<u64>::alloc(&system, 20);
    ///
    /// let doubled = rt.atomically(&th, |tx| {
    ///     let x = v.get(tx)?;
    ///     v.set(tx, x * 2)?;
    ///     Ok(x * 2)
    /// });
    /// assert_eq!(doubled, 40);
    /// assert_eq!(v.load_direct(&system), 40);
    /// ```
    fn atomically<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>;

    /// Runs `body` as a *declared read-only* transaction.
    ///
    /// Software attempts take the snapshot read path (see
    /// [`crate::config::SnapshotMode`]): every read validates against the
    /// begin snapshot, no read set is kept, and the commit is free — no
    /// validation, no clock traffic.  If the body writes or allocates after
    /// all, the driver upgrades the transaction to a full update transaction
    /// and re-executes it, so declaring read-only is always safe — merely
    /// fastest when true.
    ///
    /// The default implementation falls back to [`TmRt::atomically`];
    /// runtimes built on the unified driver override it to pass
    /// [`crate::tx::TxKind::ReadOnly`].
    ///
    /// # Examples
    ///
    /// ```
    /// use std::sync::Arc;
    /// use tm_core::{TmConfig, TmRt, TmSystem, TmVar};
    ///
    /// let system = TmSystem::new(TmConfig::small());
    /// let rt = stm_eager::EagerStm::new(Arc::clone(&system));
    /// let th = system.register_thread();
    /// let a = TmVar::<u64>::alloc(&system, 3);
    /// let b = TmVar::<u64>::alloc(&system, 4);
    ///
    /// // A consistent two-word scan with no read set and a free commit.
    /// let sum = rt.atomically_read(&th, |tx| Ok(a.get(tx)? + b.get(tx)?));
    /// assert_eq!(sum, 7);
    /// assert!(th.stats.snapshot().ro_fast_commits >= 1);
    /// ```
    fn atomically_read<T, F>(&self, thread: &Arc<ThreadCtx>, body: F) -> T
    where
        F: FnMut(&mut dyn Tx) -> TxResult<T>,
    {
        self.atomically(thread, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TmConfig;

    /// A trivially sequential runtime used to exercise the default method.
    struct DirectRuntime {
        system: Arc<TmSystem>,
    }

    struct DirectTx {
        common: crate::tx::TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for DirectTx {
        fn read(&mut self, addr: crate::addr::Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: crate::addr::Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<crate::addr::Addr> {
            self.system
                .heap
                .alloc(words)
                .ok_or(crate::ctl::TxCtl::Abort(
                    crate::ctl::AbortReason::OutOfMemory,
                ))
        }
        fn free(&mut self, addr: crate::addr::Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> crate::ctl::TxCtl {
            crate::ctl::TxCtl::Abort(crate::ctl::AbortReason::Explicit(code))
        }
        fn common(&self) -> &crate::tx::TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut crate::tx::TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    impl TmRuntime for DirectRuntime {
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
        fn name(&self) -> &'static str {
            "direct"
        }
        fn exec_u64(
            &self,
            thread: &Arc<ThreadCtx>,
            body: &mut dyn FnMut(&mut dyn Tx) -> TxResult<u64>,
        ) -> u64 {
            let mut tx = DirectTx {
                common: crate::tx::TxCommon::new(Arc::clone(thread), crate::tx::TxMode::Serial, 0),
                system: Arc::clone(&self.system),
            };
            body(&mut tx).expect("direct runtime cannot abort")
        }
    }

    #[test]
    fn exec_bool_default_goes_through_exec_u64() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let rt = DirectRuntime { system };
        assert!(rt.exec_bool(&th, &mut |_tx| Ok(true)));
        assert!(!rt.exec_bool(&th, &mut |_tx| Ok(false)));
    }

    #[test]
    fn direct_runtime_reads_and_writes_heap() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let rt = DirectRuntime {
            system: Arc::clone(&system),
        };
        let v = rt.exec_u64(&th, &mut |tx| {
            tx.write(crate::addr::Addr(7), 99)?;
            tx.read(crate::addr::Addr(7))
        });
        assert_eq!(v, 99);
        assert_eq!(system.heap.load(crate::addr::Addr(7)), 99);
    }
}
