//! Cache-line padding for contended per-core state.
//!
//! A single `AtomicU64` that two cores write concurrently costs a coherence
//! round-trip per write even when the *logical* data is disjoint, as long as
//! the two words share a cache line ("false sharing").  [`CachePadded`]
//! rounds a value's size and alignment up to one cache line so adjacent
//! array elements — orec stripes, waiter-registry shard heads, per-thread
//! epoch slots, statistics counters — can never share a line.
//!
//! The padding constant follows the hardware: 64 bytes on x86-64 and most
//! other targets, 128 bytes on aarch64 (Apple silicon and several ARM server
//! parts prefetch line *pairs*, so 128-byte spacing is what actually stops
//! the ping-pong there).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// The padding granularity in bytes on this target.
#[cfg(target_arch = "aarch64")]
pub const CACHE_LINE_BYTES: usize = 128;
/// The padding granularity in bytes on this target.
#[cfg(not(target_arch = "aarch64"))]
pub const CACHE_LINE_BYTES: usize = 64;

/// A `T` padded and aligned to a full cache line.
///
/// Dereferences to `T`, so wrapping an atomic in `CachePadded` changes the
/// memory layout and nothing else: `&padded.fetch_add(..)` and friends keep
/// working through auto-deref.
#[cfg_attr(target_arch = "aarch64", repr(align(128)))]
#[cfg_attr(not(target_arch = "aarch64"), repr(align(64)))]
#[derive(Default)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a line-sized, line-aligned cell.
    #[inline]
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    #[inline]
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as the inner value: the padding is a layout detail and only
        // adds noise to `TmSystem`/`TxStats` debug dumps.
        self.value.fmt(f)
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        CachePadded::new(self.value.clone())
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn alignment_and_size_are_a_full_line() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), CACHE_LINE_BYTES);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), CACHE_LINE_BYTES);
        assert_eq!(
            std::mem::align_of::<CachePadded<AtomicU64>>(),
            CACHE_LINE_BYTES
        );
        // A value larger than one line still rounds up to whole lines.
        assert_eq!(
            std::mem::size_of::<CachePadded<[u8; 100]>>() % CACHE_LINE_BYTES,
            0
        );
    }

    #[test]
    fn array_elements_never_share_a_line() {
        let arr: [CachePadded<AtomicU64>; 4] = Default::default();
        for pair in arr.windows(2) {
            let a = &*pair[0] as *const AtomicU64 as usize;
            let b = &*pair[1] as *const AtomicU64 as usize;
            assert!(b - a >= CACHE_LINE_BYTES);
            assert_eq!(a % CACHE_LINE_BYTES, 0, "each element is line-aligned");
        }
    }

    #[test]
    fn deref_passes_through() {
        let c = CachePadded::new(AtomicU64::new(7));
        c.fetch_add(1, Ordering::Relaxed);
        assert_eq!(c.load(Ordering::Relaxed), 8);
        assert_eq!(CachePadded::new(5u64).into_inner(), 5);
        let mut m = CachePadded::new(3u64);
        *m += 1;
        assert_eq!(*m, 4);
    }
}
