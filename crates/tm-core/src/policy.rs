//! Pluggable contention management: what the driver loop does *between*
//! attempts.
//!
//! The driver used to hard-wire one reaction to every abort — jittered
//! exponential backoff for contention-class aborts, plus the HTM simulator's
//! private "serial after N speculative failures" rule.  This module lifts
//! that decision behind the [`ContentionManager`] trait: the driver reports
//! each abort (with the per-transaction [`CmHistory`]) and the installed
//! policy answers with a [`CmAction`] — whether to back off before
//! re-executing, and whether to escalate the transaction one rung up the
//! engine's mode ladder (hardware → software → serial; see
//! [`crate::driver::TxEngine::escalated_mode`]).
//!
//! Three stock policies ship with the system, selected by
//! [`crate::config::TmConfig::policy`]:
//!
//! * [`PolicyKind::Fixed`] — the historical behavior, and the default:
//!   backoff on contention, escalate only when a *hardware* transaction
//!   exhausts its speculative budget (GCC libitm's rule).  Software
//!   transactions never escalate.
//! * [`PolicyKind::Adaptive`] — `Fixed` plus starvation escalation: after a
//!   configurable number of consecutive contention aborts on *any* engine
//!   (or repeated `OutOfMemory` aborts), the transaction takes the
//!   guaranteed-progress serial path instead of backing off again.
//! * [`PolicyKind::Stubborn`] — an HTM-style bounded-retry ladder: retry
//!   immediately for the first half of its patience (optimists win fast),
//!   back off for the second half, then escalate.
//!
//! Custom policies plug in through
//! [`crate::system::TmSystem::with_policy`]; the stats they drive
//! (`cm_escalations`, `mode_switches`, `serial_commits`) are rendered by the
//! workload reports.
//!
//! Explicit aborts (the `Restart` baseline, `xabort`) never reach the
//! policy: a program-requested restart is control flow, not contention, so
//! it re-executes immediately and feeds no history.

use std::fmt;

use crate::ctl::AbortReason;
use crate::tx::TxMode;

/// Per-transaction abort history, owned by the driver loop and reset when
/// the transaction commits, deschedules, or escalates.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CmHistory {
    /// Aborts observed by this transaction (explicit aborts excluded).
    pub aborts: u32,
    /// Consecutive contention-class aborts (reset by any non-contention
    /// abort).
    pub contention: u32,
    /// Non-explicit failures of *hardware* attempts (the speculative budget
    /// the `Fixed` policy spends).
    pub hw_failures: u32,
    /// `OutOfMemory` aborts observed.
    pub oom: u32,
}

impl CmHistory {
    /// Folds one abort into the history.  Called by the driver before the
    /// policy decides; explicit aborts are filtered out upstream.
    pub fn note(&mut self, event: &CmEvent) {
        self.aborts += 1;
        if event.reason.is_contention() {
            self.contention += 1;
        } else {
            self.contention = 0;
        }
        if event.hardware {
            self.hw_failures += 1;
        }
        if event.reason == AbortReason::OutOfMemory {
            self.oom += 1;
        }
    }

    /// Clears the history (after a deschedule ends the contention episode,
    /// or after an escalation changes the game).
    pub fn reset(&mut self) {
        *self = CmHistory::default();
    }
}

/// One abort, as reported to the policy.
#[derive(Debug, Clone, Copy)]
pub struct CmEvent {
    /// Why the attempt failed.
    pub reason: AbortReason,
    /// True if the failed attempt ran in (simulated) hardware.
    pub hardware: bool,
    /// The mode the failed attempt ran in.
    pub mode: TxMode,
    /// The engine's speculative-attempt budget
    /// ([`crate::config::HtmConfig::max_attempts`]).
    pub hw_budget: u32,
}

/// The policy's verdict: what to do before the next attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CmAction {
    /// Spin the jittered exponential backoff before re-executing.
    pub backoff: bool,
    /// Re-execute one rung up the engine's mode ladder
    /// ([`crate::driver::TxEngine::escalated_mode`]).
    pub escalate: bool,
}

impl CmAction {
    /// Re-execute immediately.
    pub const RERUN: CmAction = CmAction {
        backoff: false,
        escalate: false,
    };

    /// Back off, then re-execute in the same mode.
    pub const BACKOFF: CmAction = CmAction {
        backoff: true,
        escalate: false,
    };

    /// Escalate immediately (no backoff: the next rung does not contend).
    pub const ESCALATE: CmAction = CmAction {
        backoff: false,
        escalate: true,
    };
}

/// A contention-management policy: decides backoff versus escalation from a
/// transaction's abort history.
///
/// Implementations must be stateless across transactions — all mutable state
/// lives in the [`CmHistory`] the driver threads through — so one boxed
/// policy instance serves every thread of a [`crate::system::TmSystem`].
pub trait ContentionManager: Send + Sync + fmt::Debug {
    /// A short label for reports and benches.
    fn name(&self) -> &'static str;

    /// Decides what the driver does after an abort.  `history` has already
    /// absorbed `event` via [`CmHistory::note`]; a policy that escalates
    /// should reset the counters it spent so a later rung starts fresh.
    fn on_abort(&self, history: &mut CmHistory, event: &CmEvent) -> CmAction;
}

/// Which stock [`ContentionManager`] a system installs
/// (see [`crate::config::TmConfig::policy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// The historical hard-wired behavior (default): backoff on contention,
    /// hardware-only escalation after the speculative budget.
    #[default]
    Fixed,
    /// `Fixed` plus starvation escalation after `contention_threshold`
    /// consecutive contention aborts (or two `OutOfMemory` aborts) on any
    /// engine.
    Adaptive {
        /// Consecutive contention aborts before the transaction escalates.
        contention_threshold: u32,
    },
    /// Bounded-retry ladder: immediate retries, then backoff, then
    /// escalation once `patience` aborts have been spent.
    Stubborn {
        /// Total aborts tolerated before escalating; the first half retry
        /// without backoff.
        patience: u32,
    },
}

impl PolicyKind {
    /// A conservative adaptive default (escalate after 8 consecutive
    /// contention aborts).
    pub const ADAPTIVE_DEFAULT: PolicyKind = PolicyKind::Adaptive {
        contention_threshold: 8,
    };

    /// A stubborn default (8 aborts of patience, first 4 without backoff).
    pub const STUBBORN_DEFAULT: PolicyKind = PolicyKind::Stubborn { patience: 8 };

    /// The label used in benches and reports.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Fixed => "fixed",
            PolicyKind::Adaptive { .. } => "adaptive",
            PolicyKind::Stubborn { .. } => "stubborn",
        }
    }

    /// Builds the stock policy this kind names.
    pub fn build(self) -> Box<dyn ContentionManager> {
        match self {
            PolicyKind::Fixed => Box::new(Fixed),
            PolicyKind::Adaptive {
                contention_threshold,
            } => Box::new(Adaptive {
                contention_threshold: contention_threshold.max(1),
            }),
            PolicyKind::Stubborn { patience } => Box::new(Stubborn {
                patience: patience.max(2),
            }),
        }
    }
}

/// The historical behavior: backoff on contention-class aborts; escalate
/// only when a hardware transaction exhausts its speculative budget.
#[derive(Debug)]
pub struct Fixed;

impl ContentionManager for Fixed {
    fn name(&self) -> &'static str {
        "fixed"
    }

    fn on_abort(&self, history: &mut CmHistory, event: &CmEvent) -> CmAction {
        if event.hardware && history.hw_failures >= event.hw_budget {
            history.reset();
            return CmAction::ESCALATE;
        }
        if event.reason.is_contention() {
            CmAction::BACKOFF
        } else {
            CmAction::RERUN
        }
    }
}

/// [`Fixed`] plus starvation escalation: a transaction that keeps losing to
/// contention (on any engine) or keeps running out of memory takes the
/// guaranteed-progress rung instead of backing off forever.
#[derive(Debug)]
pub struct Adaptive {
    /// Consecutive contention aborts before escalating.
    pub contention_threshold: u32,
}

impl ContentionManager for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn on_abort(&self, history: &mut CmHistory, event: &CmEvent) -> CmAction {
        let starved = history.contention >= self.contention_threshold || history.oom >= 2;
        if starved || (event.hardware && history.hw_failures >= event.hw_budget) {
            history.reset();
            return CmAction::ESCALATE;
        }
        if event.reason.is_contention() {
            CmAction::BACKOFF
        } else {
            CmAction::RERUN
        }
    }
}

/// HTM-style bounded-retry ladder: optimistic immediate retries first, then
/// backoff, then escalation once the patience budget is spent.
#[derive(Debug)]
pub struct Stubborn {
    /// Total aborts tolerated before escalating.
    pub patience: u32,
}

impl ContentionManager for Stubborn {
    fn name(&self) -> &'static str {
        "stubborn"
    }

    fn on_abort(&self, history: &mut CmHistory, _event: &CmEvent) -> CmAction {
        if history.aborts > self.patience {
            history.reset();
            CmAction::ESCALATE
        } else if history.aborts > self.patience / 2 {
            CmAction::BACKOFF
        } else {
            CmAction::RERUN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(reason: AbortReason, hardware: bool) -> CmEvent {
        CmEvent {
            reason,
            hardware,
            mode: if hardware {
                TxMode::Hardware
            } else {
                TxMode::Software
            },
            hw_budget: 2,
        }
    }

    fn drive(policy: &dyn ContentionManager, events: &[CmEvent]) -> (CmHistory, Vec<CmAction>) {
        let mut history = CmHistory::default();
        let mut actions = Vec::new();
        for e in events {
            history.note(e);
            actions.push(policy.on_abort(&mut history, e));
        }
        (history, actions)
    }

    #[test]
    fn fixed_matches_the_historical_behavior() {
        let p = Fixed;
        // Software contention: backoff forever, never escalate.
        let sw = event(AbortReason::WriteConflict, false);
        let (_, actions) = drive(&p, &[sw; 20]);
        assert!(actions.iter().all(|a| *a == CmAction::BACKOFF));

        // Hardware: escalate once the budget (2) is spent.
        let hw = event(AbortReason::HwConflict, true);
        let (_, actions) = drive(&p, &[hw, hw, hw]);
        assert_eq!(actions[0], CmAction::BACKOFF);
        assert_eq!(actions[1], CmAction::ESCALATE);

        // Capacity aborts are not contention (no backoff) but spend budget.
        let cap = event(AbortReason::HwCapacity, true);
        let (_, actions) = drive(&p, &[cap, cap]);
        assert_eq!(actions[0], CmAction::RERUN);
        assert_eq!(actions[1], CmAction::ESCALATE);

        // OutOfMemory reruns immediately, forever (the historical rule).
        let oom = event(AbortReason::OutOfMemory, false);
        let (_, actions) = drive(&p, &[oom; 5]);
        assert!(actions.iter().all(|a| *a == CmAction::RERUN));
    }

    #[test]
    fn adaptive_escalates_on_starvation_and_oom() {
        let p = Adaptive {
            contention_threshold: 3,
        };
        let sw = event(AbortReason::ReadConflict, false);
        let (history, actions) = drive(&p, &[sw, sw, sw]);
        assert_eq!(actions[0], CmAction::BACKOFF);
        assert_eq!(actions[1], CmAction::BACKOFF);
        assert_eq!(actions[2], CmAction::ESCALATE);
        assert_eq!(history, CmHistory::default(), "escalation resets history");

        let oom = event(AbortReason::OutOfMemory, false);
        let (_, actions) = drive(&p, &[oom, oom]);
        assert_eq!(actions[1], CmAction::ESCALATE);
    }

    #[test]
    fn adaptive_contention_counter_resets_on_non_contention_abort() {
        let p = Adaptive {
            contention_threshold: 2,
        };
        let sw = event(AbortReason::WriteConflict, false);
        let cap = event(AbortReason::HwCapacity, false);
        let (_, actions) = drive(&p, &[sw, cap, sw]);
        assert_eq!(
            actions[2],
            CmAction::BACKOFF,
            "the capacity abort broke the consecutive-contention streak"
        );
    }

    #[test]
    fn stubborn_climbs_its_ladder() {
        let p = Stubborn { patience: 4 };
        let sw = event(AbortReason::WriteConflict, false);
        let (_, actions) = drive(&p, &[sw; 5]);
        assert_eq!(actions[0], CmAction::RERUN, "optimistic rung");
        assert_eq!(actions[1], CmAction::RERUN);
        assert_eq!(actions[2], CmAction::BACKOFF, "backoff rung");
        assert_eq!(actions[3], CmAction::BACKOFF);
        assert_eq!(actions[4], CmAction::ESCALATE, "patience spent");
    }

    #[test]
    fn kinds_build_their_namesakes() {
        assert_eq!(PolicyKind::Fixed.build().name(), "fixed");
        assert_eq!(PolicyKind::ADAPTIVE_DEFAULT.build().name(), "adaptive");
        assert_eq!(PolicyKind::STUBBORN_DEFAULT.build().name(), "stubborn");
        assert_eq!(PolicyKind::default(), PolicyKind::Fixed);
        assert_eq!(PolicyKind::ADAPTIVE_DEFAULT.label(), "adaptive");
    }

    #[test]
    fn history_bookkeeping() {
        let mut h = CmHistory::default();
        h.note(&event(AbortReason::WriteConflict, true));
        h.note(&event(AbortReason::OutOfMemory, false));
        assert_eq!(h.aborts, 2);
        assert_eq!(h.contention, 0, "OOM reset the streak");
        assert_eq!(h.hw_failures, 1);
        assert_eq!(h.oom, 1);
        h.reset();
        assert_eq!(h, CmHistory::default());
    }
}
