//! The per-thread epoch table: decentralized commit-time hot state.
//!
//! One line-padded [`EpochSlot`] per registered thread carries the two words
//! other threads poll at commit time:
//!
//! * the **published start time** of the thread's in-flight software
//!   transaction (or [`NOT_IN_TX`]) — what privatization quiescence
//!   ([`crate::system::TmSystem::quiesce`]) and the serial gate's Dekker
//!   handshake ([`crate::serial::SerialGate::acquire`]) wait on, and
//! * the **commit epoch**: the timestamp of the thread's last writer commit,
//!   published *after* the commit is fully visible (write-back done, locks
//!   released).  In the lazy clock mode ([`crate::clock::ClockMode::LazyGv5`])
//!   the maximum over these slots *is* the logical clock — committing
//!   writers stamp `max(counter, epochs) + 1` and write only their own slot,
//!   so the uncontended commit path never touches a shared cache line.
//!
//! Each slot is owner-written and remote-read.  Before this table existed,
//! quiescence took the thread registry's `RwLock`, cloned the `Vec` of
//! thread handles (one allocation per writer commit) and chased `Arc`s to a
//! `start_time` field that shared its cache line with the thread's
//! statistics; the table replaces all of that with a bounded, lock-free,
//! allocation-free scan over isolated lines.
//!
//! The table has a fixed capacity ([`crate::config::TmConfig::max_threads`])
//! so slots never move: a `&EpochSlot` stays valid for the lifetime of the
//! system, which is what lets readers scan without any lock.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::pad::CachePadded;
use crate::thread::NOT_IN_TX;

/// One thread's padded share of the epoch table.
///
/// Both words are written only by the owning thread and read by everyone
/// else; the padding guarantees two threads' slots never contend.
#[derive(Debug)]
pub struct EpochSlot {
    /// Published start time of the in-flight transaction, or [`NOT_IN_TX`].
    start: AtomicU64,
    /// Timestamp of the thread's last fully completed writer commit.
    epoch: AtomicU64,
}

impl EpochSlot {
    fn new() -> Self {
        EpochSlot {
            start: AtomicU64::new(NOT_IN_TX),
            epoch: AtomicU64::new(0),
        }
    }

    /// The published start time, or [`NOT_IN_TX`].
    #[inline]
    pub fn start(&self) -> u64 {
        self.start.load(Ordering::Acquire)
    }

    /// Publishes the start time of an in-flight transaction (owner only).
    #[inline]
    pub fn set_start(&self, start: u64) {
        self.start.store(start, Ordering::Release);
    }

    /// Publishes that the owner is no longer inside a transaction.
    #[inline]
    pub fn clear_start(&self) {
        self.start.store(NOT_IN_TX, Ordering::Release);
    }

    /// The owner's last published commit timestamp.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes a completed writer commit's timestamp (owner only, after
    /// the commit's effects are fully visible).  Epochs are monotonically
    /// increasing, which the lazy clock's soundness argument relies on.
    #[inline]
    pub fn set_epoch(&self, ts: u64) {
        debug_assert!(ts >= self.epoch.load(Ordering::Relaxed));
        self.epoch.store(ts, Ordering::Release);
    }
}

/// The fixed-capacity table of per-thread epoch slots.
#[derive(Debug)]
pub struct EpochTable {
    slots: Box<[CachePadded<EpochSlot>]>,
    /// Number of slots handed out; scans cover `0..len`, not the capacity.
    len: AtomicUsize,
}

impl EpochTable {
    /// Creates a table with room for `capacity` threads (at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        let slots = (0..capacity)
            .map(|_| CachePadded::new(EpochSlot::new()))
            .collect::<Vec<_>>();
        EpochTable {
            slots: slots.into_boxed_slice(),
            len: AtomicUsize::new(0),
        }
    }

    /// Maximum number of threads the table can serve.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of activated (registered) slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// True while no thread has registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Marks slots `0..=id` active so scans cover them.  Called by the
    /// thread registry under its registration lock; panics when `id` is
    /// beyond the fixed capacity (raise
    /// [`crate::config::TmConfig::max_threads`]).
    pub fn activate(&self, id: usize) {
        assert!(
            id < self.slots.len(),
            "epoch table full ({} slots): raise TmConfig::max_threads",
            self.slots.len()
        );
        self.len.fetch_max(id + 1, Ordering::AcqRel);
    }

    /// The slot owned by thread `id`.
    #[inline]
    pub fn slot(&self, id: usize) -> &EpochSlot {
        &self.slots[id]
    }

    /// The maximum published commit epoch across all registered threads.
    ///
    /// In the lazy clock mode this scan (combined with the shared counter's
    /// floor) is the logical "now": every fully completed writer commit is
    /// covered either by its owner's slot or, if the owner has not published
    /// yet, by the conflict path's counter advance.
    #[inline]
    pub fn max_epoch(&self) -> u64 {
        let n = self.len();
        let mut max = 0;
        for slot in &self.slots[..n] {
            max = max.max(slot.epoch());
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_start_idle_with_epoch_zero() {
        let t = EpochTable::new(4);
        assert_eq!(t.capacity(), 4);
        assert_eq!(t.len(), 0);
        t.activate(0);
        t.activate(1);
        assert_eq!(t.len(), 2);
        assert_eq!(t.slot(0).start(), NOT_IN_TX);
        assert_eq!(t.slot(0).epoch(), 0);
        assert_eq!(t.max_epoch(), 0);
    }

    #[test]
    fn start_round_trip() {
        let t = EpochTable::new(2);
        t.activate(0);
        t.slot(0).set_start(42);
        assert_eq!(t.slot(0).start(), 42);
        t.slot(0).clear_start();
        assert_eq!(t.slot(0).start(), NOT_IN_TX);
    }

    #[test]
    fn max_epoch_covers_only_registered_slots() {
        let t = EpochTable::new(8);
        t.activate(2);
        t.slot(0).set_epoch(3);
        t.slot(2).set_epoch(9);
        assert_eq!(t.max_epoch(), 9);
        t.slot(1).set_epoch(20);
        assert_eq!(t.max_epoch(), 20);
    }

    #[test]
    fn slots_are_line_isolated() {
        use crate::pad::CACHE_LINE_BYTES;
        let t = EpochTable::new(3);
        let a = t.slot(0) as *const EpochSlot as usize;
        let b = t.slot(1) as *const EpochSlot as usize;
        assert!(b - a >= CACHE_LINE_BYTES);
    }

    #[test]
    #[should_panic(expected = "epoch table full")]
    fn activation_beyond_capacity_panics() {
        let t = EpochTable::new(1);
        t.activate(1);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let t = EpochTable::new(0);
        assert_eq!(t.capacity(), 1);
    }
}
