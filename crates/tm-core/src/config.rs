//! Configuration for a transactional-memory system instance.

use crate::clock::ClockMode;
use crate::policy::PolicyKind;

/// How read-only transactions execute (see the snapshot read path in the
/// software engines).
///
/// A snapshot reader runs against its begin snapshot `rv`: every read checks
/// only that the covering ownership record is unlocked with
/// `version <= rv`, keeps **no read set**, and commits for free — no
/// commit-time validation and no clock traffic.  The modes differ in what
/// happens when a read observes a version *newer* than `rv`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SnapshotMode {
    /// No snapshot path: read-only transactions build a read set and
    /// validate at commit like any other software transaction (the
    /// pre-snapshot behavior, kept for parity testing and ablation).
    Off,
    /// Zero-footprint snapshots.  A too-new version can only be survived by
    /// re-sampling `rv` *before the first successful read* (nothing has been
    /// observed yet, so any snapshot is still admissible); afterwards the
    /// attempt aborts and retries with a fresh snapshot.
    On,
    /// Extendable snapshots.  The attempt additionally accumulates the
    /// distinct ownership-record stripes it has read (a pooled index set —
    /// still no values, no read set).  On a too-new version it re-samples
    /// `rv' = now()` and re-checks that every covered stripe is unlocked and
    /// no newer than the *old* `rv`; if so, every prior read is also valid
    /// at `rv'` and the snapshot advances in place.  This is the
    /// per-stripe-history option: the cover re-check proves exactly what a
    /// version history would (no covered stripe changed since `rv`).
    Extend,
}

impl SnapshotMode {
    /// A short label for reports and benchmark tables.
    pub fn label(self) -> &'static str {
        match self {
            SnapshotMode::Off => "snap-off",
            SnapshotMode::On => "snap-on",
            SnapshotMode::Extend => "snap-extend",
        }
    }

    /// True when the snapshot read path is enabled at all.
    pub fn is_enabled(self) -> bool {
        !matches!(self, SnapshotMode::Off)
    }
}

/// Configuration of the simulated best-effort HTM (see the `htm-sim` crate).
///
/// The defaults approximate Intel TSX on a Haswell-class part as used in the
/// paper's evaluation: L1-bounded write capacity, larger read capacity, and a
/// GCC-libitm-style policy of two speculative attempts before taking the
/// serial fallback lock.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HtmConfig {
    /// Maximum distinct cache lines a hardware transaction may read.
    pub max_read_lines: usize,
    /// Maximum distinct cache lines a hardware transaction may write.
    pub max_write_lines: usize,
    /// Speculative attempts before falling back to the serial lock
    /// (GCC suspends concurrency "after a transaction aborts twice").
    pub max_attempts: u32,
}

impl Default for HtmConfig {
    fn default() -> Self {
        HtmConfig {
            max_read_lines: 512,
            max_write_lines: 64,
            max_attempts: 2,
        }
    }
}

/// Configuration of the deterministic hardware fault-injection plane (see
/// [`crate::hwtm::FaultPlane`]).
///
/// The default is all-zero, which disables injection entirely: the HTM
/// runtimes install the plane only when [`FaultConfig::enabled`] is true, so
/// production paths pay nothing.  Rates are expressed per 65536 draws of a
/// seeded per-thread `xorshift64*` stream, so a run is exactly reproducible
/// from `(seed, thread id)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// Seed for the per-thread random streams.
    pub seed: u64,
    /// Conflict-abort probability per speculative access, in 65536ths.
    pub conflict_per_64k: u16,
    /// Force a conflict abort on every access to a cache line whose index is
    /// a multiple of this value (`0` disables; `1` dooms every line).
    pub conflict_line_mod: u64,
    /// Inject a capacity abort when a hardware transaction's *read* footprint
    /// exceeds this many distinct lines (`0` leaves the backend's own
    /// capacity in charge).
    pub capacity_read_lines: usize,
    /// Inject a capacity abort when the *write* footprint exceeds this many
    /// distinct lines (`0` disables).
    pub capacity_write_lines: usize,
    /// Spurious-abort probability per speculative access, in 65536ths.
    pub spurious_per_64k: u16,
    /// Conflict-abort probability *inside the commit window* (after the doom
    /// check, before write-back), in 65536ths per commit attempt.
    pub commit_window_per_64k: u16,
}

impl FaultConfig {
    /// True when any injection knob is set, i.e. the runtimes should wrap
    /// their hardware backend in a [`crate::hwtm::FaultPlane`].
    pub fn enabled(self) -> bool {
        self.conflict_per_64k != 0
            || self.conflict_line_mod != 0
            || self.capacity_read_lines != 0
            || self.capacity_write_lines != 0
            || self.spurious_per_64k != 0
            || self.commit_window_per_64k != 0
    }

    /// Builds a configuration from `TM_FAULT_*` environment variables
    /// (`TM_FAULT_SEED`, `TM_FAULT_CONFLICT`, `TM_FAULT_CONFLICT_LINE_MOD`,
    /// `TM_FAULT_CAP_READ`, `TM_FAULT_CAP_WRITE`, `TM_FAULT_SPURIOUS`,
    /// `TM_FAULT_COMMIT`); unset or unparsable variables keep their default
    /// of zero.  Lets soak jobs turn injection on without recompiling.
    pub fn from_env() -> Self {
        fn var<T: std::str::FromStr>(name: &str) -> Option<T> {
            std::env::var(name).ok()?.trim().parse().ok()
        }
        FaultConfig {
            seed: var("TM_FAULT_SEED").unwrap_or(0),
            conflict_per_64k: var("TM_FAULT_CONFLICT").unwrap_or(0),
            conflict_line_mod: var("TM_FAULT_CONFLICT_LINE_MOD").unwrap_or(0),
            capacity_read_lines: var("TM_FAULT_CAP_READ").unwrap_or(0),
            capacity_write_lines: var("TM_FAULT_CAP_WRITE").unwrap_or(0),
            spurious_per_64k: var("TM_FAULT_SPURIOUS").unwrap_or(0),
            commit_window_per_64k: var("TM_FAULT_COMMIT").unwrap_or(0),
        }
    }
}

/// Configuration of the randomized exponential backoff used between aborted
/// attempts.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BackoffConfig {
    /// Minimum spin iterations after the first abort.
    pub min_spins: u32,
    /// Cap on spin iterations.
    pub max_spins: u32,
    /// Cap on the exponential growth: the (jittered) spin ceiling stops
    /// doubling after this many consecutive aborts, bounding the worst-case
    /// wait even when `max_spins` is set very high.
    pub max_exp: u32,
    /// Number of consecutive aborts after which the thread yields the CPU
    /// instead of spinning (important when threads outnumber cores, as in
    /// the paper's oversubscribed configurations).
    pub yield_after: u32,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            min_spins: 16,
            max_spins: 4096,
            max_exp: 16,
            yield_after: 6,
        }
    }
}

/// Configuration of the lazily driven timer wheel that delivers deadlines
/// to timed waits (see [`crate::timer::TimerWheel`]).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TimerConfig {
    /// Number of wheel slots (rounded up to a power of two).  One lap covers
    /// `slots * tick_micros` microseconds; deadlines further out stay in
    /// their slot and are re-examined once per lap.
    pub slots: usize,
    /// Microseconds per wheel tick (clamped to at least 1).  Coarser ticks
    /// mean cheaper polls and coarser timeout delivery; the sleeper's own
    /// semaphore timeout bounds the delivered error regardless.
    pub tick_micros: u64,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            slots: 256,
            tick_micros: 1000,
        }
    }
}

/// Default shard count for the ownership-record plane: the machine's
/// available parallelism rounded up to a power of two, clamped to 64 so a
/// huge core count cannot dwarf a small table.
pub fn default_orec_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .next_power_of_two()
        .min(64)
}

/// Configuration for a [`crate::system::TmSystem`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TmConfig {
    /// Number of 64-bit words in the transactional heap.
    pub heap_words: usize,
    /// Number of ownership records (rounded up to a power of two by
    /// [`crate::orec::OrecTable::new`]).
    pub orec_count: usize,
    /// Number of shards the ownership-record table is split into (rounded up
    /// to a power of two and clamped to the table size).  Each shard is its
    /// own heap allocation, so on a NUMA machine first-touch places shards
    /// across nodes instead of landing the whole table on one.  Stripe
    /// indices remain stable global ids regardless of the shard count.
    pub orec_shards: usize,
    /// Whether threads get per-thread arena front-ends over the global heap
    /// allocator (see [`crate::heap::TmHeap`]).  On by default; arenas are a
    /// performance lever only — alloc/free semantics and exhaustion behavior
    /// are identical either way.
    pub heap_arenas: bool,
    /// Number of shards in the address-indexed waiter registry (rounded up
    /// to a power of two).  Ownership-record stripes map onto shards by
    /// masking; more shards mean finer wake targeting at the cost of more
    /// registration work per multi-address wait condition.
    pub wake_shards: usize,
    /// Whether committing writers quiesce to provide privatization safety
    /// (the paper's STMs are privatization-safe variants).
    pub quiescence: bool,
    /// Hardware-TM simulation parameters.
    pub htm: HtmConfig,
    /// Deterministic hardware fault injection (see [`FaultConfig`]); the
    /// all-zero default disables the plane entirely.
    pub fault: FaultConfig,
    /// Backoff parameters.
    pub backoff: BackoffConfig,
    /// Timer-wheel parameters for timed waits.
    pub timer: TimerConfig,
    /// Which stock contention-management policy the system installs (see
    /// [`crate::policy`]); decides backoff versus mode escalation after
    /// aborts.  Custom policies go through
    /// [`crate::system::TmSystem::with_policy`] instead.
    pub policy: PolicyKind,
    /// How the version clock advances (see [`crate::clock::ClockPlane`]).
    /// The decentralized lazy scheme is the production default;
    /// [`ClockMode::Gv1`] is the deterministic single-counter baseline that
    /// [`TmConfig::small`] selects for unit tests.
    pub clock: ClockMode,
    /// How read-only transactions execute (see [`SnapshotMode`]).  Enabled
    /// by default: declared or discovered read-only transactions run
    /// validation-free against their begin snapshot.
    pub snapshot: SnapshotMode,
    /// Capacity of the per-thread epoch table — the maximum number of
    /// threads that may register with the system.  Fixed at construction so
    /// epoch slots never move and scans stay lock-free.
    pub max_threads: usize,
}

impl Default for TmConfig {
    fn default() -> Self {
        TmConfig {
            heap_words: 1 << 20,
            orec_count: 1 << 16,
            orec_shards: default_orec_shards(),
            heap_arenas: true,
            wake_shards: 256,
            quiescence: true,
            htm: HtmConfig::default(),
            fault: FaultConfig::default(),
            backoff: BackoffConfig::default(),
            timer: TimerConfig::default(),
            policy: PolicyKind::Fixed,
            clock: ClockMode::LazyGv5,
            snapshot: SnapshotMode::On,
            max_threads: 1024,
        }
    }
}

impl TmConfig {
    /// A small configuration for unit tests (fast to allocate, and on the
    /// deterministic GV1 clock so commit timestamps are unique and exact).
    pub fn small() -> Self {
        TmConfig {
            heap_words: 1 << 12,
            orec_count: 1 << 8,
            // A fixed small shard count so unit tests do not depend on the
            // host's core count.
            orec_shards: 2,
            heap_arenas: true,
            wake_shards: 64,
            quiescence: true,
            htm: HtmConfig::default(),
            fault: FaultConfig::default(),
            backoff: BackoffConfig::default(),
            timer: TimerConfig {
                slots: 64,
                ..TimerConfig::default()
            },
            policy: PolicyKind::Fixed,
            clock: ClockMode::Gv1,
            snapshot: SnapshotMode::On,
            max_threads: 64,
        }
    }

    /// Disables privatization-safety quiescence (used by some benchmarks to
    /// isolate its cost).
    pub fn without_quiescence(mut self) -> Self {
        self.quiescence = false;
        self
    }

    /// Overrides the HTM parameters.
    pub fn with_htm(mut self, htm: HtmConfig) -> Self {
        self.htm = htm;
        self
    }

    /// Overrides the hardware fault-injection configuration.
    pub fn with_fault(mut self, fault: FaultConfig) -> Self {
        self.fault = fault;
        self
    }

    /// Overrides the heap size.
    pub fn with_heap_words(mut self, words: usize) -> Self {
        self.heap_words = words;
        self
    }

    /// Overrides the waiter-registry shard count.
    pub fn with_wake_shards(mut self, shards: usize) -> Self {
        self.wake_shards = shards;
        self
    }

    /// Overrides the backoff parameters.
    pub fn with_backoff(mut self, backoff: BackoffConfig) -> Self {
        self.backoff = backoff;
        self
    }

    /// Overrides the timer-wheel parameters.
    pub fn with_timer(mut self, timer: TimerConfig) -> Self {
        self.timer = timer;
        self
    }

    /// Overrides the contention-management policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Overrides the clock-advancement scheme.
    pub fn with_clock(mut self, clock: ClockMode) -> Self {
        self.clock = clock;
        self
    }

    /// Overrides the read-only snapshot mode.
    pub fn with_snapshot(mut self, snapshot: SnapshotMode) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// Overrides the epoch-table capacity (maximum registered threads).
    pub fn with_max_threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads;
        self
    }

    /// Overrides the ownership-record shard count.
    pub fn with_orec_shards(mut self, shards: usize) -> Self {
        self.orec_shards = shards;
        self
    }

    /// Enables or disables the per-thread heap arena front-ends.
    pub fn with_heap_arenas(mut self, arenas: bool) -> Self {
        self.heap_arenas = arenas;
        self
    }

    /// Applies the memory-plane environment overrides `TM_OREC_SHARDS` and
    /// `TM_HEAP_ARENAS` (unset or unparsable variables leave the
    /// configuration untouched), the same shape as [`FaultConfig::from_env`]:
    /// soak and figure jobs flip the knobs without recompiling.
    ///
    /// `TM_HEAP_ARENAS` accepts `1`/`true`/`on` and `0`/`false`/`off`.
    pub fn with_mem_plane_env(mut self) -> Self {
        if let Some(shards) = std::env::var("TM_OREC_SHARDS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            self.orec_shards = shards;
        }
        if let Some(arenas) = std::env::var("TM_HEAP_ARENAS").ok().and_then(|v| {
            match v.trim().to_ascii_lowercase().as_str() {
                "1" | "true" | "on" => Some(true),
                "0" | "false" | "off" => Some(false),
                _ => None,
            }
        }) {
            self.heap_arenas = arenas;
        }
        self
    }

    /// Builds the default configuration with every environment override
    /// applied: the memory-plane knobs plus [`FaultConfig::from_env`].
    pub fn from_env() -> Self {
        TmConfig::default()
            .with_mem_plane_env()
            .with_fault(FaultConfig::from_env())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_reasonable() {
        let c = TmConfig::default();
        assert!(c.heap_words >= 1 << 16);
        // The default must already be a power of two: `OrecTable::new`
        // rounds odd counts up, but the shipped default should not rely on
        // that (the old `|| c.orec_count > 0` disjunct made this vacuous).
        assert!(c.orec_count.is_power_of_two());
        assert!(c.orec_shards >= 1);
        assert!(c.orec_shards.is_power_of_two());
        assert!(c.heap_arenas, "arenas are the production default");
        assert_eq!(
            TmConfig::small().orec_shards,
            2,
            "tests get a fixed shard count, not the host's core count"
        );
        assert!(c.quiescence);
        assert_eq!(c.htm.max_attempts, 2);
        assert_eq!(c.clock, ClockMode::LazyGv5, "lazy clock is the default");
        assert_eq!(
            c.snapshot,
            SnapshotMode::On,
            "snapshot reads are on by default"
        );
        assert!(c.snapshot.is_enabled());
        assert!(c.max_threads >= 64);
        assert_eq!(
            TmConfig::small().clock,
            ClockMode::Gv1,
            "tests get the deterministic clock"
        );
    }

    #[test]
    fn builders_compose() {
        let c = TmConfig::small()
            .without_quiescence()
            .with_heap_words(100)
            .with_wake_shards(8)
            .with_backoff(BackoffConfig {
                min_spins: 1,
                max_spins: 2,
                max_exp: 1,
                yield_after: 1,
            })
            .with_htm(HtmConfig {
                max_read_lines: 8,
                max_write_lines: 4,
                max_attempts: 1,
            })
            .with_timer(TimerConfig {
                slots: 16,
                tick_micros: 250,
            })
            .with_policy(PolicyKind::ADAPTIVE_DEFAULT)
            .with_clock(ClockMode::LazyGv5)
            .with_snapshot(SnapshotMode::Extend)
            .with_fault(FaultConfig {
                seed: 7,
                spurious_per_64k: 100,
                ..FaultConfig::default()
            })
            .with_max_threads(8)
            .with_orec_shards(4)
            .with_heap_arenas(false);
        assert_eq!(c.orec_shards, 4);
        assert!(!c.heap_arenas);
        assert!(!c.quiescence);
        assert!(c.fault.enabled());
        assert_eq!(c.fault.seed, 7);
        assert_eq!(c.clock, ClockMode::LazyGv5);
        assert_eq!(c.snapshot, SnapshotMode::Extend);
        assert!(!SnapshotMode::Off.is_enabled());
        assert_eq!(SnapshotMode::Extend.label(), "snap-extend");
        assert_eq!(c.max_threads, 8);
        assert_eq!(c.policy, PolicyKind::ADAPTIVE_DEFAULT);
        assert_eq!(c.heap_words, 100);
        assert_eq!(c.wake_shards, 8);
        assert_eq!(c.backoff.max_exp, 1);
        assert_eq!(c.htm.max_write_lines, 4);
        assert_eq!(c.timer.slots, 16);
        assert_eq!(c.timer.tick_micros, 250);
    }

    #[test]
    fn fault_config_default_is_disabled() {
        let f = FaultConfig::default();
        assert!(!f.enabled());
        assert!(!TmConfig::default().fault.enabled());
        assert!(FaultConfig {
            conflict_line_mod: 2,
            ..FaultConfig::default()
        }
        .enabled());
        assert!(FaultConfig {
            commit_window_per_64k: 1,
            ..FaultConfig::default()
        }
        .enabled());
        assert!(FaultConfig {
            capacity_read_lines: 4,
            ..FaultConfig::default()
        }
        .enabled());
        // A bare seed does not enable injection: it only parameterizes the
        // streams the other knobs draw from.
        assert!(!FaultConfig {
            seed: 99,
            ..FaultConfig::default()
        }
        .enabled());
    }

    #[test]
    fn default_shard_count_is_a_clamped_power_of_two() {
        let s = default_orec_shards();
        assert!(s.is_power_of_two());
        assert!((1..=64).contains(&s));
    }

    #[test]
    fn config_debug_is_descriptive() {
        let c = TmConfig::small();
        let d = format!("{c:?}");
        assert!(d.contains("heap_words"));
        assert!(d.contains("max_attempts"));
    }
}
