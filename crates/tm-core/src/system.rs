//! The shared transactional-memory system instance.
//!
//! A [`TmSystem`] bundles everything the runtimes share: the heap, the
//! ownership-record table, the global clock, the thread registry, and the
//! waiter registry used by `Deschedule`.  All three runtimes (eager STM,
//! lazy STM, HTM simulator) can be layered over the *same* system instance,
//! which is how Hybrid-TM-style mixing would work; the evaluation uses one
//! runtime per experiment, as the paper does.

use std::sync::Arc;

use crate::backoff::SpinWait;
use crate::clock::GlobalClock;
use crate::config::TmConfig;
use crate::epoch::EpochTable;
use crate::heap::TmHeap;
use crate::orec::OrecTable;
use crate::policy::ContentionManager;
use crate::serial::SerialGate;
use crate::stats::TxStats;
use crate::thread::{ThreadCtx, ThreadRegistry, NOT_IN_TX};
use crate::timer::TimerWheel;
use crate::waitlist::WaitList;

/// A complete transactional-memory system: memory, metadata, threads and
/// waiters.
#[derive(Debug)]
pub struct TmSystem {
    /// Configuration the system was built with.
    pub config: TmConfig,
    /// The word-addressable transactional heap.
    pub heap: TmHeap,
    /// Per-thread epoch table: one padded slot per registered thread with
    /// the published start time (quiescence) and last commit epoch (lazy
    /// clock).  Shared by [`TmSystem::clock`] and [`TmSystem::threads`].
    pub epochs: Arc<EpochTable>,
    /// Ownership records (software runtimes only; hardware transactions do
    /// not touch them, which is the crux of the paper's compatibility
    /// argument).
    pub orecs: OrecTable,
    /// The version clock plane (shared counter + lazy epoch scan).
    pub clock: GlobalClock,
    /// Registry of worker threads.
    pub threads: ThreadRegistry,
    /// Sharded, address-indexed registry of descheduled (sleeping)
    /// transactions, keyed by ownership-record stripe.
    pub waiters: WaitList,
    /// Hashed timer wheel delivering deadlines to timed waits; driven lazily
    /// by committing and spinning threads (no background ticker).
    pub timers: TimerWheel,
    /// The system-wide serial/irrevocable gate every engine honors (the
    /// HTM fallback lock, lifted out of the simulator; see
    /// [`crate::serial`]).
    pub serial: SerialGate,
    /// The installed contention-management policy (see [`crate::policy`]).
    policy: Box<dyn ContentionManager>,
}

impl TmSystem {
    /// Builds a system from `config`, installing the stock contention
    /// manager named by [`TmConfig::policy`].
    pub fn new(config: TmConfig) -> Arc<Self> {
        let policy = config.policy.build();
        Self::with_policy(config, policy)
    }

    /// Builds a system with a caller-supplied (possibly custom) contention
    /// manager, overriding [`TmConfig::policy`].
    pub fn with_policy(config: TmConfig, policy: Box<dyn ContentionManager>) -> Arc<Self> {
        let epochs = Arc::new(EpochTable::new(config.max_threads));
        Arc::new(TmSystem {
            heap: if config.heap_arenas {
                TmHeap::with_arenas(config.heap_words, config.max_threads)
            } else {
                TmHeap::new(config.heap_words)
            },
            orecs: OrecTable::new_sharded(config.orec_count, config.orec_shards),
            clock: GlobalClock::for_system(config.clock, Arc::clone(&epochs)),
            threads: ThreadRegistry::with_epochs(Arc::clone(&epochs)),
            waiters: WaitList::new(config.wake_shards),
            timers: TimerWheel::new(config.timer),
            serial: SerialGate::new(),
            policy,
            epochs,
            config,
        })
    }

    /// The installed contention-management policy.
    #[inline]
    pub fn policy(&self) -> &dyn ContentionManager {
        self.policy.as_ref()
    }

    /// Convenience constructor with default configuration.
    pub fn new_default() -> Arc<Self> {
        Self::new(TmConfig::default())
    }

    /// Registers the calling thread and returns its context.
    pub fn register_thread(&self) -> Arc<ThreadCtx> {
        self.threads.register()
    }

    /// Privatization-safety quiescence (Appendix A, `quiesce()`):
    /// after committing at `commit_time`, wait until no other thread is still
    /// executing a transaction that started before that time.
    ///
    /// Runs as a lock-free scan over the padded epoch table — no registry
    /// lock, no snapshot allocation, one isolated cache line per thread
    /// polled.  Writers on the lazy clock must publish their commit epoch
    /// *before* calling this: that makes every later begin start at or
    /// above `commit_time`, which is what bounds the wait.
    ///
    /// No-op when disabled in the configuration.
    pub fn quiesce(&self, me: &ThreadCtx, commit_time: u64) {
        if !self.config.quiescence {
            return;
        }
        let epochs = self.threads.epochs();
        let n = epochs.len();
        let mut any = false;
        for id in 0..n {
            if id == me.id {
                continue;
            }
            let slot = epochs.slot(id);
            let mut spin = SpinWait::new();
            loop {
                let s = slot.start();
                if s == NOT_IN_TX || s >= commit_time {
                    break;
                }
                any = true;
                spin.pause();
            }
        }
        TxStats::add(&me.stats.quiesce_scans, n.saturating_sub(1) as u64);
        if any {
            TxStats::bump(&me.stats.quiesce_rounds);
        }
    }

    /// Aggregated statistics across all registered threads, overlaid with
    /// the system-owned memory-plane counters (orec CAS failures live on
    /// the shards, not in any thread's context).
    pub fn stats(&self) -> crate::stats::StatsSnapshot {
        let mut snap = self.threads.aggregate_stats();
        snap.orec_cas_failures = self.orecs.cas_failure_total();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::config::TmConfig;

    #[test]
    fn construction_wires_up_components() {
        let s = TmSystem::new(TmConfig::small());
        assert_eq!(s.heap.len(), TmConfig::small().heap_words);
        assert!(s.orecs.len() >= TmConfig::small().orec_count);
        assert_eq!(s.clock.now(), 0);
        assert!(s.waiters.is_empty());
        assert!(s.timers.idle());
        assert_eq!(s.timers.slot_count(), TmConfig::small().timer.slots);
        assert!(!s.serial.held());
        assert_eq!(s.policy().name(), "fixed");
        assert_eq!(s.orecs.shard_count(), TmConfig::small().orec_shards);
        assert!(s.heap.has_arenas());
        let bare = TmSystem::new(
            TmConfig::small()
                .with_heap_arenas(false)
                .with_orec_shards(8),
        );
        assert!(!bare.heap.has_arenas());
        assert_eq!(bare.orecs.shard_count(), 8);
    }

    #[test]
    fn stats_overlay_the_orec_contention_counters() {
        use crate::orec::OrecValue;
        let s = TmSystem::new(TmConfig::small());
        let _th = s.register_thread();
        let idx = s.orecs.index_for(Addr(7));
        let cur = s.orecs.load(idx);
        assert!(!s
            .orecs
            .cas(idx, OrecValue::unlocked(cur.version() + 9), cur));
        assert_eq!(s.stats().orec_cas_failures, 1);
    }

    #[test]
    fn custom_policy_overrides_the_config_kind() {
        use crate::policy::{CmAction, CmEvent, CmHistory, ContentionManager};
        #[derive(Debug)]
        struct AlwaysEscalate;
        impl ContentionManager for AlwaysEscalate {
            fn name(&self) -> &'static str {
                "always-escalate"
            }
            fn on_abort(&self, _h: &mut CmHistory, _e: &CmEvent) -> CmAction {
                CmAction::ESCALATE
            }
        }
        let s = TmSystem::with_policy(TmConfig::small(), Box::new(AlwaysEscalate));
        assert_eq!(s.policy().name(), "always-escalate");
    }

    #[test]
    fn register_thread_assigns_ids() {
        let s = TmSystem::new(TmConfig::small());
        let a = s.register_thread();
        let b = s.register_thread();
        assert_ne!(a.id, b.id);
        assert_eq!(s.threads.len(), 2);
    }

    #[test]
    fn quiesce_with_no_other_threads_returns_immediately() {
        let s = TmSystem::new(TmConfig::small());
        let me = s.register_thread();
        s.quiesce(&me, 100);
    }

    #[test]
    fn quiesce_waits_for_older_transactions() {
        let s = TmSystem::new(TmConfig::small());
        let me = s.register_thread();
        let other = s.register_thread();
        other.enter_tx(5);
        let s2 = Arc::clone(&s);
        let other2 = Arc::clone(&other);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            other2.exit_tx();
            s2.heap.store(Addr(1), 1);
        });
        // Commit time 10 > other's start 5, so quiesce must block until the
        // helper thread publishes its exit.
        s.quiesce(&me, 10);
        assert_eq!(
            s.heap.load(Addr(1)),
            1,
            "quiesce returned before the older tx finished"
        );
        h.join().unwrap();
    }

    #[test]
    fn quiesce_disabled_does_not_block() {
        let s = TmSystem::new(TmConfig::small().without_quiescence());
        let me = s.register_thread();
        let other = s.register_thread();
        other.enter_tx(1);
        // Would deadlock if quiescence were enabled, since nobody ever calls
        // exit_tx for `other`.
        s.quiesce(&me, 10);
    }

    #[test]
    fn system_shares_one_epoch_table_between_clock_and_registry() {
        use crate::clock::ClockMode;
        let s = TmSystem::new(TmConfig::small().with_clock(ClockMode::LazyGv5));
        assert_eq!(s.clock.mode(), ClockMode::LazyGv5);
        let t = s.register_thread();
        assert!(Arc::ptr_eq(t.epochs(), &s.epochs));
        t.publish_epoch(17);
        assert_eq!(s.clock.now(), 17, "clock scans the registry's table");
    }

    #[test]
    fn quiesce_counts_scans_over_other_threads() {
        let s = TmSystem::new(TmConfig::small());
        let me = s.register_thread();
        let _a = s.register_thread();
        let _b = s.register_thread();
        s.quiesce(&me, 1);
        assert_eq!(me.stats.snapshot().quiesce_scans, 2);
    }
}
