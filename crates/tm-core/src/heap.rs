//! The word-addressable transactional heap.
//!
//! The paper's mechanisms instrument loads and stores of ordinary C memory.
//! Our stand-in is a contiguous array of `AtomicU64` words: transactional
//! reads and writes go through the runtime instrumentation, while the atomics
//! keep the eager runtime's racy in-place updates well defined in Rust.
//!
//! The heap also provides a segregated free-list allocator so that
//! transactions can `malloc`/`free` words (Appendix A defers reclamation
//! until commit and undoes allocation on abort; the runtimes implement that
//! policy on top of these primitives).  Small allocations — the common case
//! for transactional nodes — are O(1) pushes/pops on exact-size bins;
//! address-ordered coalescing is preserved by lazily flushing the bins back
//! into the sorted region list whenever a carve fails.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::lock::Mutex;

use crate::addr::Addr;

/// A contiguous, word-addressable shared heap.
#[derive(Debug)]
pub struct TmHeap {
    words: Box<[AtomicU64]>,
    alloc: Mutex<Allocator>,
}

impl TmHeap {
    /// Creates a heap with `words` 64-bit words, all initialised to zero.
    ///
    /// Word 0 is reserved as the null address and never handed out.
    pub fn new(words: usize) -> Self {
        assert!(words >= 2, "heap must have at least two words");
        let cells = (0..words).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        TmHeap {
            words: cells.into_boxed_slice(),
            alloc: Mutex::new(Allocator::new(words)),
        }
    }

    /// Number of words in the heap.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the heap has no words (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the word at `addr` directly (no transactional instrumentation).
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        self.words[addr.0].load(Ordering::Acquire)
    }

    /// Writes the word at `addr` directly (no transactional instrumentation).
    #[inline]
    pub fn store(&self, addr: Addr, val: u64) {
        self.words[addr.0].store(val, Ordering::Release);
    }

    /// Atomically compare-and-swaps the word at `addr`.
    ///
    /// Used by non-transactional setup code and by the HTM simulator's
    /// commit path.
    #[inline]
    pub fn cas(&self, addr: Addr, old: u64, new: u64) -> bool {
        self.words[addr.0]
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Allocates `words` contiguous words, returning the base address, or
    /// `None` if the heap is exhausted.
    pub fn alloc(&self, words: usize) -> Option<Addr> {
        if words == 0 {
            return Some(Addr::NULL);
        }
        let addr = self.alloc.lock().alloc(words)?;
        // Freshly allocated memory is zeroed, mirroring calloc semantics and
        // preventing stale values from leaking between allocations.
        for i in 0..words {
            self.store(Addr(addr.0 + i), 0);
        }
        Some(addr)
    }

    /// Returns `words` words starting at `addr` to the allocator.
    pub fn dealloc(&self, addr: Addr, words: usize) {
        if words == 0 || addr.is_null() {
            return;
        }
        self.alloc.lock().dealloc(addr, words);
    }

    /// Number of words currently handed out by the allocator (for tests and
    /// leak detection).
    pub fn allocated_words(&self) -> usize {
        self.alloc.lock().allocated
    }
}

/// Largest allocation size (in words) served by an exact-size bin.
const BIN_SIZES: usize = 64;

/// A segregated free-list allocator over the heap's word space.
///
/// Two tiers:
///
/// * `bins[s-1]` holds blocks of exactly `s` words (`s <= BIN_SIZES`) as a
///   LIFO stack, so the common alloc/free cycle of small transactional nodes
///   is a push or pop — O(1) instead of the old first-fit scan over every
///   free region.
/// * `free` holds address-ordered coalesced regions: large blocks, the
///   untouched tail of the heap, and whatever the bins spill back.
///
/// Binned blocks are not coalesced eagerly (that is what makes the fast path
/// O(1)); instead, when carving from `free` fails, every binned block is
/// flushed back into `free` and coalesced, then the carve is retried.  An
/// allocation therefore fails only when the fully-coalesced heap genuinely
/// cannot satisfy it — the same answer the old first-fit allocator gave.
#[derive(Debug)]
struct Allocator {
    /// Free regions as (start, length), kept sorted by start address.
    free: Vec<(usize, usize)>,
    /// Exact-size free lists for 1..=BIN_SIZES words.
    bins: Vec<Vec<usize>>,
    allocated: usize,
}

impl Allocator {
    fn new(total_words: usize) -> Self {
        // Word 0 is reserved for the null address.
        Allocator {
            free: vec![(1, total_words - 1)],
            bins: (0..BIN_SIZES).map(|_| Vec::new()).collect(),
            allocated: 0,
        }
    }

    fn alloc(&mut self, words: usize) -> Option<Addr> {
        // Fast path: pop an exact-size block off the bin.
        if words <= BIN_SIZES {
            if let Some(start) = self.bins[words - 1].pop() {
                self.allocated += words;
                return Some(Addr(start));
            }
        }
        let start = self.carve(words).or_else(|| {
            // Spill the binned blocks back, coalesce, and retry before
            // declaring the heap exhausted.
            self.flush_bins();
            self.carve(words)
        })?;
        self.allocated += words;
        Some(Addr(start))
    }

    /// First-fit carve from the coalesced region list.
    fn carve(&mut self, words: usize) -> Option<usize> {
        for i in 0..self.free.len() {
            let (start, len) = self.free[i];
            if len >= words {
                if len == words {
                    self.free.remove(i);
                } else {
                    self.free[i] = (start + words, len - words);
                }
                return Some(start);
            }
        }
        None
    }

    fn dealloc(&mut self, addr: Addr, words: usize) {
        self.allocated = self.allocated.saturating_sub(words);
        // Fast path: cache small blocks at their exact size for reuse.
        if words <= BIN_SIZES {
            self.bins[words - 1].push(addr.0);
            return;
        }
        self.insert_region(addr.0, words);
        self.coalesce();
    }

    fn insert_region(&mut self, start: usize, words: usize) {
        let pos = self
            .free
            .binary_search_by_key(&start, |&(s, _)| s)
            .unwrap_or_else(|p| p);
        self.free.insert(pos, (start, words));
    }

    /// Returns every binned block to the region list and coalesces, so the
    /// next carve sees the fully merged free space.
    fn flush_bins(&mut self) {
        let mut spilled = false;
        for size in 1..=BIN_SIZES {
            let bin = &mut self.bins[size - 1];
            if bin.is_empty() {
                continue;
            }
            spilled = true;
            for start in std::mem::take(bin) {
                self.insert_region(start, size);
            }
        }
        if spilled {
            self.coalesce();
        }
    }

    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.free.len() {
            let (s0, l0) = self.free[i];
            let (s1, l1) = self.free[i + 1];
            if s0 + l0 >= s1 {
                let end = (s0 + l0).max(s1 + l1);
                self.free[i] = (s0, end - s0);
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let h = TmHeap::new(64);
        h.store(Addr(3), 0xdead_beef);
        assert_eq!(h.load(Addr(3)), 0xdead_beef);
        assert_eq!(h.load(Addr(4)), 0);
    }

    #[test]
    fn cas_succeeds_only_with_expected_value() {
        let h = TmHeap::new(16);
        h.store(Addr(1), 10);
        assert!(h.cas(Addr(1), 10, 20));
        assert!(!h.cas(Addr(1), 10, 30));
        assert_eq!(h.load(Addr(1)), 20);
    }

    #[test]
    fn alloc_never_returns_null_word() {
        let h = TmHeap::new(128);
        for _ in 0..10 {
            let a = h.alloc(4).unwrap();
            assert!(!a.is_null());
        }
    }

    #[test]
    fn alloc_zero_words_is_null() {
        let h = TmHeap::new(16);
        assert_eq!(h.alloc(0), Some(Addr::NULL));
    }

    #[test]
    fn alloc_returns_zeroed_memory() {
        let h = TmHeap::new(64);
        let a = h.alloc(8).unwrap();
        for i in 0..8 {
            h.store(a.offset(i), 7);
        }
        h.dealloc(a, 8);
        let b = h.alloc(8).unwrap();
        for i in 0..8 {
            assert_eq!(h.load(b.offset(i)), 0, "reallocated memory must be zeroed");
        }
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let h = TmHeap::new(16);
        assert!(h.alloc(32).is_none());
        assert!(h.alloc(15).is_some());
        assert!(h.alloc(1).is_none());
    }

    #[test]
    fn dealloc_coalesces_and_allows_reuse() {
        let h = TmHeap::new(64);
        let a = h.alloc(16).unwrap();
        let b = h.alloc(16).unwrap();
        let c = h.alloc(16).unwrap();
        h.dealloc(a, 16);
        h.dealloc(c, 16);
        h.dealloc(b, 16);
        // After freeing everything the full region is available again.
        let big = h.alloc(60).unwrap();
        assert!(!big.is_null());
    }

    #[test]
    fn small_blocks_are_reused_from_the_bin() {
        let h = TmHeap::new(256);
        let a = h.alloc(4).unwrap();
        h.dealloc(a, 4);
        // The very next same-size allocation must come from the bin (the
        // freed block), not carve fresh space.
        let b = h.alloc(4).unwrap();
        assert_eq!(a, b, "bin reuse is LIFO on the freed block");
        // A different size must not be served from that bin.
        h.dealloc(b, 4);
        let c = h.alloc(5).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn binned_blocks_coalesce_when_a_large_alloc_needs_them() {
        let h = TmHeap::new(64);
        // Carve the whole heap into small binned-size pieces and free them.
        let blocks: Vec<_> = (0..7).map(|_| h.alloc(9).unwrap()).collect();
        for &b in &blocks {
            h.dealloc(b, 9);
        }
        assert_eq!(h.allocated_words(), 0);
        // 63 contiguous words exist only after the bins are flushed and
        // coalesced; a first-fit over the (empty) region list alone fails.
        let big = h.alloc(63).unwrap();
        assert!(!big.is_null());
        h.dealloc(big, 63);
    }

    #[test]
    fn mixed_bin_and_large_blocks_coalesce_together() {
        // Heap tail (39 words) cannot satisfy the final allocation, so it
        // must come from coalescing binned blocks with the large region.
        let h = TmHeap::new(256);
        let small = h.alloc(8).unwrap();
        let large = h.alloc(200).unwrap();
        let small2 = h.alloc(8).unwrap();
        h.dealloc(small, 8);
        h.dealloc(large, 200);
        h.dealloc(small2, 8);
        // small + large + small2 are adjacent; the full span is available
        // again once the bins spill into the region list.
        let all = h.alloc(216).unwrap();
        assert_eq!(all, small, "coalesced span starts at the first block");
    }

    #[test]
    fn allocated_words_tracks_outstanding_allocations() {
        let h = TmHeap::new(128);
        assert_eq!(h.allocated_words(), 0);
        let a = h.alloc(10).unwrap();
        assert_eq!(h.allocated_words(), 10);
        h.dealloc(a, 10);
        assert_eq!(h.allocated_words(), 0);
    }

    #[test]
    fn concurrent_allocations_do_not_overlap() {
        use std::sync::Arc;
        let h = Arc::new(TmHeap::new(4096));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                (0..50).map(|_| h.alloc(8).unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|x| x.join().unwrap())
            .map(|a| a.0)
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[1] - w[0] >= 8, "allocations overlap: {} {}", w[0], w[1]);
        }
    }
}
