//! The word-addressable transactional heap.
//!
//! The paper's mechanisms instrument loads and stores of ordinary C memory.
//! Our stand-in is a contiguous array of `AtomicU64` words: transactional
//! reads and writes go through the runtime instrumentation, while the atomics
//! keep the eager runtime's racy in-place updates well defined in Rust.
//!
//! The heap also provides a segregated free-list allocator so that
//! transactions can `malloc`/`free` words (Appendix A defers reclamation
//! until commit and undoes allocation on abort; the runtimes implement that
//! policy on top of these primitives).  Small allocations — the common case
//! for transactional nodes — are O(1) pushes/pops on exact-size bins;
//! address-ordered coalescing is preserved by lazily flushing the bins back
//! into the sorted region list whenever a carve fails.
//!
//! On top of the global allocator sits an optional **arena plane**
//! (`ArenaPlane`): per-thread front-ends that serve small allocations
//! mutex-free.  Each registered thread owns one `ArenaSlot` holding
//! exact-size bins that refill in batches from the global allocator; a free
//! of *another* thread's block is pushed onto the owner's lock-free
//! remote-free stack (threaded through the free blocks' own heap words) and
//! reclaimed when the owner refills.  Exhaustion spills every arena back
//! into the global allocator and retries, so "heap full" means exactly what
//! it meant without arenas, and conservation accounting
//! ([`TmHeap::allocated_words`]) still balances to zero.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, AtomicUsize, Ordering};

use crate::lock::Mutex;

use crate::addr::Addr;
use crate::pad::CachePadded;
use crate::stats::TxStats;
use crate::thread::ThreadCtx;

/// A contiguous, word-addressable shared heap.
#[derive(Debug)]
pub struct TmHeap {
    words: Box<[AtomicU64]>,
    alloc: Mutex<Allocator>,
    arenas: Option<ArenaPlane>,
}

impl TmHeap {
    /// Creates a heap with `words` 64-bit words, all initialised to zero,
    /// and no arena plane (every allocation takes the global lock — the
    /// pre-arena behavior, kept as the plain constructor because most unit
    /// tests want the allocator's exact global free-list geometry).
    ///
    /// Word 0 is reserved as the null address and never handed out.
    pub fn new(words: usize) -> Self {
        Self::build(words, 0)
    }

    /// Creates a heap with a per-thread arena plane sized for `threads`
    /// registered threads (a system passes its `max_threads`).
    pub fn with_arenas(words: usize, threads: usize) -> Self {
        Self::build(words, threads)
    }

    fn build(words: usize, arena_threads: usize) -> Self {
        assert!(words >= 2, "heap must have at least two words");
        let cells = (0..words).map(|_| AtomicU64::new(0)).collect::<Vec<_>>();
        TmHeap {
            words: cells.into_boxed_slice(),
            alloc: Mutex::new(Allocator::new(words)),
            arenas: (arena_threads > 0).then(|| ArenaPlane::new(words, arena_threads)),
        }
    }

    /// True when the per-thread arena plane is installed.
    pub fn has_arenas(&self) -> bool {
        self.arenas.is_some()
    }

    /// Number of words in the heap.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the heap has no words (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads the word at `addr` directly (no transactional instrumentation).
    #[inline]
    pub fn load(&self, addr: Addr) -> u64 {
        self.words[addr.0].load(Ordering::Acquire)
    }

    /// Writes the word at `addr` directly (no transactional instrumentation).
    #[inline]
    pub fn store(&self, addr: Addr, val: u64) {
        self.words[addr.0].store(val, Ordering::Release);
    }

    /// Atomically compare-and-swaps the word at `addr`.
    ///
    /// Used by non-transactional setup code and by the HTM simulator's
    /// commit path.
    #[inline]
    pub fn cas(&self, addr: Addr, old: u64, new: u64) -> bool {
        self.words[addr.0]
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Allocates `words` contiguous words, returning the base address, or
    /// `None` if the heap is exhausted.
    ///
    /// Always takes the global allocator path; transactional call sites use
    /// [`TmHeap::alloc_for`] so small allocations ride the caller's arena.
    pub fn alloc(&self, words: usize) -> Option<Addr> {
        if words == 0 {
            return Some(Addr::NULL);
        }
        let addr = self.global_alloc(words)?;
        self.zero(addr, words);
        Some(addr)
    }

    /// Allocates `words` contiguous words on behalf of registered thread
    /// `th`: small requests are served mutex-free from the thread's arena
    /// when the plane is installed, everything else (and every
    /// arena-exhausted request) falls through to the global allocator.
    pub fn alloc_for(&self, th: &ThreadCtx, words: usize) -> Option<Addr> {
        if words == 0 {
            return Some(Addr::NULL);
        }
        if let Some(plane) = &self.arenas {
            if words <= ARENA_MAX_WORDS && th.id < plane.slots.len() {
                if let Some(addr) = plane.alloc_small(self, th, words) {
                    self.zero(addr, words);
                    return Some(addr);
                }
            }
        }
        let addr = self.global_alloc(words)?;
        self.zero(addr, words);
        Some(addr)
    }

    /// Returns `words` words starting at `addr` to the allocator.
    ///
    /// A block that belongs to some thread's arena (it was carved by a
    /// refill) goes back to that arena — onto the owner's remote-free stack,
    /// since the caller has no thread identity here — so arena blocks are
    /// never leaked into the global free list by identity-less frees.
    pub fn dealloc(&self, addr: Addr, words: usize) {
        if words == 0 || addr.is_null() {
            return;
        }
        if let Some(plane) = &self.arenas {
            let tag = plane.owner_tag(addr);
            if tag != 0 {
                plane.push_remote(self, tag as usize - 1, addr, words);
                return;
            }
        }
        self.alloc.lock().dealloc(addr, words);
    }

    /// Returns `words` words starting at `addr` on behalf of registered
    /// thread `th`: the owner's free is an O(1) push onto its own bin, a
    /// free of another thread's block is a lock-free push onto the owner's
    /// remote-free stack, and untagged (globally carved) blocks take the
    /// global lock as before.
    pub fn dealloc_for(&self, th: &ThreadCtx, addr: Addr, words: usize) {
        if words == 0 || addr.is_null() {
            return;
        }
        if let Some(plane) = &self.arenas {
            let tag = plane.owner_tag(addr);
            if tag != 0 {
                let owner = tag as usize - 1;
                if owner == th.id && plane.free_local(self, owner, addr, words) {
                    return;
                }
                // Someone else's block — or our own slot was busy, which
                // only happens if a context is misused across threads; the
                // remote stack is correct in either case.
                plane.push_remote(self, owner, addr, words);
                if owner != th.id {
                    TxStats::bump(&th.stats.heap_remote_frees);
                }
                return;
            }
        }
        self.alloc.lock().dealloc(addr, words);
    }

    /// Number of words currently handed out by the allocator (for tests and
    /// leak detection).
    ///
    /// Arena-cached blocks (bins and remote-free stacks) are *free* memory
    /// that the global allocator still counts as carved, so they are
    /// subtracted back out: conservation tests see 0 after all frees even
    /// when the blocks are parked in arenas.  Reads are relaxed, so the
    /// value is exact only at rest.
    pub fn allocated_words(&self) -> usize {
        let allocated = self.alloc.lock().allocated;
        let cached: usize = self
            .arenas
            .as_ref()
            .map(|p| {
                p.slots
                    .iter()
                    .map(|s| s.cached_words.load(Ordering::Relaxed))
                    .sum()
            })
            .unwrap_or(0);
        allocated.saturating_sub(cached)
    }

    /// Zeroes a freshly allocated block, mirroring calloc semantics and
    /// preventing stale values (including remote-free link words) from
    /// leaking between allocations.
    fn zero(&self, addr: Addr, words: usize) {
        for i in 0..words {
            self.store(Addr(addr.0 + i), 0);
        }
    }

    /// Global allocation with the arena-aware exhaustion path: if the fully
    /// coalesced global free space cannot satisfy the request, every
    /// arena's cached blocks are spilled back and the carve is retried, so
    /// "heap full" still means the whole heap genuinely cannot satisfy it.
    fn global_alloc(&self, words: usize) -> Option<Addr> {
        if let Some(addr) = self.alloc.lock().alloc(words) {
            return Some(addr);
        }
        self.arenas.as_ref()?;
        self.spill_arenas();
        self.alloc.lock().alloc(words)
    }

    /// Returns every arena-cached block (bins and remote stacks, all slots)
    /// to the global allocator.  Never holds the global lock while waiting
    /// on a slot's busy flag, so it cannot deadlock against a refilling
    /// owner that holds its flag while waiting for the global lock.
    fn spill_arenas(&self) {
        let Some(plane) = &self.arenas else { return };
        for slot in plane.slots.iter() {
            // The owner holds its flag only for short, bounded arena
            // operations, so spinning here terminates.
            let mut guard = loop {
                if let Some(g) = slot.try_enter() {
                    break g;
                }
                std::hint::spin_loop();
            };
            let mut blocks: Vec<(usize, usize)> = Vec::new();
            let bins = guard.bins();
            for size in 1..=ARENA_MAX_WORDS {
                for base in std::mem::take(&mut bins.by_size[size - 1]) {
                    blocks.push((base, size));
                }
            }
            let mut head = slot.remote_head.swap(0, Ordering::Acquire);
            while head != 0 {
                let (base, size) = unpack_remote(head);
                head = self.words[base].load(Ordering::Acquire);
                blocks.push((base, size));
            }
            drop(guard);
            if blocks.is_empty() {
                continue;
            }
            let total: usize = blocks.iter().map(|&(_, w)| w).sum();
            let mut global = self.alloc.lock();
            for &(base, size) in &blocks {
                plane.owner[base].store(0, Ordering::Release);
                global.dealloc(Addr(base), size);
            }
            drop(global);
            slot.cached_words.fetch_sub(total, Ordering::Relaxed);
        }
    }
}

/// Largest allocation size (in words) served by a per-thread arena bin.
/// Transactional nodes — list cells, tree nodes, queue slots — are a handful
/// of words; anything bigger goes straight to the global allocator.
const ARENA_MAX_WORDS: usize = 32;

/// Blocks carved from the global allocator per arena refill.  One refill
/// amortizes the global lock over this many subsequent mutex-free
/// allocations.
const REFILL_BLOCKS: usize = 8;

/// Per-bin block cap; exceeding it spills half the bin back to the global
/// allocator so one thread's free-heavy phase cannot strand the whole heap
/// in its arena.
const BIN_CAP: usize = 64;

/// Packs a remote-free stack entry: block base address in the high 32 bits,
/// size in words in the low 32.  Zero (the null address) means "empty".
#[inline]
fn pack_remote(addr: Addr, words: usize) -> u64 {
    ((addr.0 as u64) << 32) | words as u64
}

#[inline]
fn unpack_remote(entry: u64) -> (usize, usize) {
    ((entry >> 32) as usize, (entry & 0xFFFF_FFFF) as usize)
}

/// The per-thread exact-size free lists, guarded by [`ArenaSlot::busy`].
#[derive(Debug, Default)]
struct ArenaBins {
    /// `by_size[s-1]` holds bases of free blocks of exactly `s` words.
    by_size: [Vec<usize>; ARENA_MAX_WORDS],
}

/// One thread's arena: exact-size bins plus the lock-free stack other
/// threads push this thread's blocks onto when they free them.
struct ArenaSlot {
    /// Exclusive-access flag for `bins`.  The owner is the only thread that
    /// takes it on the hot path, so the swap is an uncontended RMW on a
    /// line nobody else writes; the exhaustion spiller takes it rarely.
    /// Acquire/Release on swap/store make the bins' contents visible.
    busy: AtomicBool,
    /// The owner's free lists; safe to touch only while holding `busy`.
    bins: UnsafeCell<ArenaBins>,
    /// Treiber stack of blocks freed by other threads, threaded through the
    /// free blocks' first heap words; `0` is empty.  Push-only CAS — the
    /// owner (or the spiller) detaches the whole list with a swap, so the
    /// classic ABA pop hazard does not arise.
    remote_head: CachePadded<AtomicU64>,
    /// Words parked in this arena (bins + remote stack): free memory the
    /// global allocator still counts as carved.  Padded because remote
    /// freers on other cores add to it.
    cached_words: CachePadded<AtomicUsize>,
}

// SAFETY: `bins` is only accessed while `busy` is held (enforced by
// `try_enter` returning the sole `BusyGuard`); every other field is atomic.
unsafe impl Sync for ArenaSlot {}

impl ArenaSlot {
    fn new() -> Self {
        ArenaSlot {
            busy: AtomicBool::new(false),
            bins: UnsafeCell::new(ArenaBins::default()),
            remote_head: CachePadded::new(AtomicU64::new(0)),
            cached_words: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Claims exclusive access to the bins; `None` if another thread holds
    /// it (callers fall back to a path that does not need the bins).
    fn try_enter(&self) -> Option<BusyGuard<'_>> {
        if self.busy.swap(true, Ordering::Acquire) {
            None
        } else {
            Some(BusyGuard(self))
        }
    }
}

impl std::fmt::Debug for ArenaSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaSlot")
            .field("cached_words", &self.cached_words.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// RAII for [`ArenaSlot::busy`]; the only way to reach the bins.
struct BusyGuard<'a>(&'a ArenaSlot);

impl BusyGuard<'_> {
    fn bins(&mut self) -> &mut ArenaBins {
        // SAFETY: holding the guard means we won the `busy` swap; the flag
        // is not released until drop, so this is the only live reference.
        unsafe { &mut *self.0.bins.get() }
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.busy.store(false, Ordering::Release);
    }
}

/// The per-thread arena front-ends over the global allocator, plus the
/// owner-tag side table that routes frees back to the carving arena.
struct ArenaPlane {
    /// One slot per registrable thread, indexed by `ThreadCtx::id`.
    slots: Box<[ArenaSlot]>,
    /// Per-word owner tags, meaningful at block base addresses: `0` means
    /// globally carved, `tid + 1` means the block belongs to thread `tid`'s
    /// arena.  Set when a refill carves the block, cleared when a spill
    /// returns it to the global allocator; stable while a block is live, so
    /// the freeing thread's read cannot race a transition.
    owner: Box<[AtomicU16]>,
}

impl std::fmt::Debug for ArenaPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArenaPlane")
            .field("slots", &self.slots.len())
            .finish_non_exhaustive()
    }
}

impl ArenaPlane {
    fn new(heap_words: usize, threads: usize) -> Self {
        assert!(
            heap_words < (1 << 32),
            "remote-free entries pack addresses into 32 bits"
        );
        // Owner tags are `tid + 1` in a u16; threads beyond the tag space
        // simply use the global path (`alloc_for` guards on slot count).
        let threads = threads.min(u16::MAX as usize - 1);
        ArenaPlane {
            slots: (0..threads)
                .map(|_| ArenaSlot::new())
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            owner: (0..heap_words)
                .map(|_| AtomicU16::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// The owner tag at a block base address.
    #[inline]
    fn owner_tag(&self, addr: Addr) -> u16 {
        self.owner[addr.0].load(Ordering::Acquire)
    }

    /// Serves a small allocation from `th`'s arena: bin pop, else drain the
    /// remote-free stack and retry, else refill a batch from the global
    /// allocator.  `None` when the global heap is exhausted (the caller
    /// runs the spill-coalesce-retry path) or the slot is busy.
    fn alloc_small(&self, heap: &TmHeap, th: &ThreadCtx, words: usize) -> Option<Addr> {
        let slot = &self.slots[th.id];
        let mut guard = slot.try_enter()?;
        if let Some(base) = guard.bins().by_size[words - 1].pop() {
            slot.cached_words.fetch_sub(words, Ordering::Relaxed);
            TxStats::bump(&th.stats.heap_arena_allocs);
            return Some(Addr(base));
        }
        if self.drain_remote(heap, slot, guard.bins()) {
            if let Some(base) = guard.bins().by_size[words - 1].pop() {
                slot.cached_words.fetch_sub(words, Ordering::Relaxed);
                TxStats::bump(&th.stats.heap_arena_allocs);
                return Some(Addr(base));
            }
        }
        self.refill(heap, th, slot, guard.bins(), words)
    }

    /// Moves every block on the remote-free stack into the bins; returns
    /// whether anything arrived.  The whole list is detached with one swap,
    /// so concurrent pushes land on the fresh empty stack.
    fn drain_remote(&self, heap: &TmHeap, slot: &ArenaSlot, bins: &mut ArenaBins) -> bool {
        let mut head = slot.remote_head.swap(0, Ordering::Acquire);
        let any = head != 0;
        while head != 0 {
            let (base, size) = unpack_remote(head);
            head = heap.words[base].load(Ordering::Acquire);
            bins.by_size[size - 1].push(base);
        }
        any
    }

    /// Carves a batch of `REFILL_BLOCKS` blocks of `words` words from the
    /// global allocator (degrading to a single block near exhaustion),
    /// tags them for `th`, keeps one for the caller and bins the rest.
    fn refill(
        &self,
        heap: &TmHeap,
        th: &ThreadCtx,
        slot: &ArenaSlot,
        bins: &mut ArenaBins,
        words: usize,
    ) -> Option<Addr> {
        let (base, blocks) = {
            let mut global = heap.alloc.lock();
            if let Some(a) = global.alloc(REFILL_BLOCKS * words) {
                (a.0, REFILL_BLOCKS)
            } else if let Some(a) = global.alloc(words) {
                (a.0, 1)
            } else {
                return None;
            }
        };
        TxStats::bump(&th.stats.heap_global_refills);
        let tag = th.id as u16 + 1;
        for i in 0..blocks {
            let block = base + i * words;
            self.owner[block].store(tag, Ordering::Release);
            if i > 0 {
                bins.by_size[words - 1].push(block);
            }
        }
        if blocks > 1 {
            slot.cached_words
                .fetch_add((blocks - 1) * words, Ordering::Relaxed);
        }
        Some(Addr(base))
    }

    /// The owner's O(1) free: push onto the exact-size bin, spilling half
    /// the bin back to the global allocator if it overflows.  Returns
    /// `false` if the slot was busy (context misuse; the caller routes the
    /// block through the remote stack instead).
    fn free_local(&self, heap: &TmHeap, tid: usize, addr: Addr, words: usize) -> bool {
        let slot = &self.slots[tid];
        let Some(mut guard) = slot.try_enter() else {
            return false;
        };
        let bins = guard.bins();
        bins.by_size[words - 1].push(addr.0);
        slot.cached_words.fetch_add(words, Ordering::Relaxed);
        if bins.by_size[words - 1].len() > BIN_CAP {
            let spill: Vec<usize> = bins.by_size[words - 1].drain(..BIN_CAP / 2).collect();
            let total = spill.len() * words;
            let mut global = heap.alloc.lock();
            for base in spill {
                self.owner[base].store(0, Ordering::Release);
                global.dealloc(Addr(base), words);
            }
            drop(global);
            slot.cached_words.fetch_sub(total, Ordering::Relaxed);
        }
        true
    }

    /// Lock-free push of a block onto its owner's remote-free stack.  The
    /// link lives in the free block's own first heap word.  Push-only CAS:
    /// success means the observed head is still the top, and since pops
    /// happen only via whole-list detachment, a recycled head value always
    /// carries a valid link — the packed entry fully identifies the block.
    fn push_remote(&self, heap: &TmHeap, owner: usize, addr: Addr, words: usize) {
        let slot = &self.slots[owner];
        // Count the block as cached *before* it becomes poppable, so the
        // owner's matching decrement can never race this below zero.
        slot.cached_words.fetch_add(words, Ordering::Relaxed);
        let entry = pack_remote(addr, words);
        let mut head = slot.remote_head.load(Ordering::Acquire);
        loop {
            heap.words[addr.0].store(head, Ordering::Release);
            match slot.remote_head.compare_exchange_weak(
                head,
                entry,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }
}

/// Largest allocation size (in words) served by an exact-size bin.
const BIN_SIZES: usize = 64;

/// A segregated free-list allocator over the heap's word space.
///
/// Two tiers:
///
/// * `bins[s-1]` holds blocks of exactly `s` words (`s <= BIN_SIZES`) as a
///   LIFO stack, so the common alloc/free cycle of small transactional nodes
///   is a push or pop — O(1) instead of the old first-fit scan over every
///   free region.
/// * `free` holds address-ordered coalesced regions: large blocks, the
///   untouched tail of the heap, and whatever the bins spill back.
///
/// Binned blocks are not coalesced eagerly (that is what makes the fast path
/// O(1)); instead, when carving from `free` fails, every binned block is
/// flushed back into `free` and coalesced, then the carve is retried.  An
/// allocation therefore fails only when the fully-coalesced heap genuinely
/// cannot satisfy it — the same answer the old first-fit allocator gave.
#[derive(Debug)]
struct Allocator {
    /// Free regions as (start, length), kept sorted by start address.
    free: Vec<(usize, usize)>,
    /// Exact-size free lists for 1..=BIN_SIZES words.
    bins: Vec<Vec<usize>>,
    allocated: usize,
}

impl Allocator {
    fn new(total_words: usize) -> Self {
        // Word 0 is reserved for the null address.
        Allocator {
            free: vec![(1, total_words - 1)],
            bins: (0..BIN_SIZES).map(|_| Vec::new()).collect(),
            allocated: 0,
        }
    }

    fn alloc(&mut self, words: usize) -> Option<Addr> {
        // Fast path: pop an exact-size block off the bin.
        if words <= BIN_SIZES {
            if let Some(start) = self.bins[words - 1].pop() {
                self.allocated += words;
                return Some(Addr(start));
            }
        }
        let start = self.carve(words).or_else(|| {
            // Spill the binned blocks back, coalesce, and retry before
            // declaring the heap exhausted.
            self.flush_bins();
            self.carve(words)
        })?;
        self.allocated += words;
        Some(Addr(start))
    }

    /// First-fit carve from the coalesced region list.
    fn carve(&mut self, words: usize) -> Option<usize> {
        for i in 0..self.free.len() {
            let (start, len) = self.free[i];
            if len >= words {
                if len == words {
                    self.free.remove(i);
                } else {
                    self.free[i] = (start + words, len - words);
                }
                return Some(start);
            }
        }
        None
    }

    fn dealloc(&mut self, addr: Addr, words: usize) {
        self.allocated = self.allocated.saturating_sub(words);
        // Fast path: cache small blocks at their exact size for reuse.
        if words <= BIN_SIZES {
            self.bins[words - 1].push(addr.0);
            return;
        }
        self.insert_region(addr.0, words);
        self.coalesce();
    }

    fn insert_region(&mut self, start: usize, words: usize) {
        let pos = self
            .free
            .binary_search_by_key(&start, |&(s, _)| s)
            .unwrap_or_else(|p| p);
        self.free.insert(pos, (start, words));
    }

    /// Returns every binned block to the region list and coalesces, so the
    /// next carve sees the fully merged free space.
    fn flush_bins(&mut self) {
        let mut spilled = false;
        for size in 1..=BIN_SIZES {
            let bin = &mut self.bins[size - 1];
            if bin.is_empty() {
                continue;
            }
            spilled = true;
            for start in std::mem::take(bin) {
                self.insert_region(start, size);
            }
        }
        if spilled {
            self.coalesce();
        }
    }

    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.free.len() {
            let (s0, l0) = self.free[i];
            let (s1, l1) = self.free[i + 1];
            if s0 + l0 >= s1 {
                let end = (s0 + l0).max(s1 + l1);
                self.free[i] = (s0, end - s0);
                self.free.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_round_trip() {
        let h = TmHeap::new(64);
        h.store(Addr(3), 0xdead_beef);
        assert_eq!(h.load(Addr(3)), 0xdead_beef);
        assert_eq!(h.load(Addr(4)), 0);
    }

    #[test]
    fn cas_succeeds_only_with_expected_value() {
        let h = TmHeap::new(16);
        h.store(Addr(1), 10);
        assert!(h.cas(Addr(1), 10, 20));
        assert!(!h.cas(Addr(1), 10, 30));
        assert_eq!(h.load(Addr(1)), 20);
    }

    #[test]
    fn alloc_never_returns_null_word() {
        let h = TmHeap::new(128);
        for _ in 0..10 {
            let a = h.alloc(4).unwrap();
            assert!(!a.is_null());
        }
    }

    #[test]
    fn alloc_zero_words_is_null() {
        let h = TmHeap::new(16);
        assert_eq!(h.alloc(0), Some(Addr::NULL));
    }

    #[test]
    fn alloc_returns_zeroed_memory() {
        let h = TmHeap::new(64);
        let a = h.alloc(8).unwrap();
        for i in 0..8 {
            h.store(a.offset(i), 7);
        }
        h.dealloc(a, 8);
        let b = h.alloc(8).unwrap();
        for i in 0..8 {
            assert_eq!(h.load(b.offset(i)), 0, "reallocated memory must be zeroed");
        }
    }

    #[test]
    fn alloc_exhaustion_returns_none() {
        let h = TmHeap::new(16);
        assert!(h.alloc(32).is_none());
        assert!(h.alloc(15).is_some());
        assert!(h.alloc(1).is_none());
    }

    #[test]
    fn dealloc_coalesces_and_allows_reuse() {
        let h = TmHeap::new(64);
        let a = h.alloc(16).unwrap();
        let b = h.alloc(16).unwrap();
        let c = h.alloc(16).unwrap();
        h.dealloc(a, 16);
        h.dealloc(c, 16);
        h.dealloc(b, 16);
        // After freeing everything the full region is available again.
        let big = h.alloc(60).unwrap();
        assert!(!big.is_null());
    }

    #[test]
    fn small_blocks_are_reused_from_the_bin() {
        let h = TmHeap::new(256);
        let a = h.alloc(4).unwrap();
        h.dealloc(a, 4);
        // The very next same-size allocation must come from the bin (the
        // freed block), not carve fresh space.
        let b = h.alloc(4).unwrap();
        assert_eq!(a, b, "bin reuse is LIFO on the freed block");
        // A different size must not be served from that bin.
        h.dealloc(b, 4);
        let c = h.alloc(5).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn binned_blocks_coalesce_when_a_large_alloc_needs_them() {
        let h = TmHeap::new(64);
        // Carve the whole heap into small binned-size pieces and free them.
        let blocks: Vec<_> = (0..7).map(|_| h.alloc(9).unwrap()).collect();
        for &b in &blocks {
            h.dealloc(b, 9);
        }
        assert_eq!(h.allocated_words(), 0);
        // 63 contiguous words exist only after the bins are flushed and
        // coalesced; a first-fit over the (empty) region list alone fails.
        let big = h.alloc(63).unwrap();
        assert!(!big.is_null());
        h.dealloc(big, 63);
    }

    #[test]
    fn mixed_bin_and_large_blocks_coalesce_together() {
        // Heap tail (39 words) cannot satisfy the final allocation, so it
        // must come from coalescing binned blocks with the large region.
        let h = TmHeap::new(256);
        let small = h.alloc(8).unwrap();
        let large = h.alloc(200).unwrap();
        let small2 = h.alloc(8).unwrap();
        h.dealloc(small, 8);
        h.dealloc(large, 200);
        h.dealloc(small2, 8);
        // small + large + small2 are adjacent; the full span is available
        // again once the bins spill into the region list.
        let all = h.alloc(216).unwrap();
        assert_eq!(all, small, "coalesced span starts at the first block");
    }

    #[test]
    fn allocated_words_tracks_outstanding_allocations() {
        let h = TmHeap::new(128);
        assert_eq!(h.allocated_words(), 0);
        let a = h.alloc(10).unwrap();
        assert_eq!(h.allocated_words(), 10);
        h.dealloc(a, 10);
        assert_eq!(h.allocated_words(), 0);
    }

    #[test]
    fn arena_alloc_refills_then_reuses_own_blocks() {
        let reg = crate::thread::ThreadRegistry::new();
        let th = reg.register();
        let h = TmHeap::with_arenas(4096, 64);
        assert!(h.has_arenas());
        assert!(!TmHeap::new(64).has_arenas());
        let a = h.alloc_for(&th, 4).unwrap();
        h.dealloc_for(&th, a, 4);
        let b = h.alloc_for(&th, 4).unwrap();
        assert_eq!(a, b, "an owner's free-then-alloc is a LIFO bin pop");
        let snap = th.stats.snapshot();
        assert_eq!(snap.heap_global_refills, 1, "one batch carve serves both");
        assert_eq!(snap.heap_arena_allocs, 1, "the second alloc was mutex-free");
        assert_eq!(snap.heap_remote_frees, 0);
        h.dealloc_for(&th, b, 4);
        assert_eq!(h.allocated_words(), 0, "cached blocks are free memory");
    }

    #[test]
    fn arena_blocks_are_zeroed_on_reuse() {
        let reg = crate::thread::ThreadRegistry::new();
        let th = reg.register();
        let h = TmHeap::with_arenas(1024, 64);
        let a = h.alloc_for(&th, 8).unwrap();
        for i in 0..8 {
            h.store(a.offset(i), 7);
        }
        h.dealloc_for(&th, a, 8);
        let b = h.alloc_for(&th, 8).unwrap();
        for i in 0..8 {
            assert_eq!(h.load(b.offset(i)), 0, "reallocated memory must be zeroed");
        }
    }

    #[test]
    fn cross_thread_frees_ride_the_remote_stack_home() {
        let reg = crate::thread::ThreadRegistry::new();
        let a = reg.register();
        let b = reg.register();
        let h = TmHeap::with_arenas(4096, 64);
        // Empty thread A's first refill batch so its bin is dry.
        let blocks: Vec<Addr> = (0..8).map(|_| h.alloc_for(&a, 8).unwrap()).collect();
        // Thread B frees one of A's blocks: a lock-free push, not a global
        // dealloc and not B's own bin.
        h.dealloc_for(&b, blocks[0], 8);
        assert_eq!(b.stats.snapshot().heap_remote_frees, 1);
        assert_eq!(b.stats.snapshot().heap_global_refills, 0);
        // A's next same-size allocation drains the stack and reuses it.
        let again = h.alloc_for(&a, 8).unwrap();
        assert_eq!(again, blocks[0], "the remote-freed block came home");
        h.dealloc_for(&a, again, 8);
        for &blk in &blocks[1..] {
            h.dealloc_for(&a, blk, 8);
        }
        assert_eq!(h.allocated_words(), 0);
    }

    #[test]
    fn identity_less_frees_route_tagged_blocks_to_the_owner() {
        let reg = crate::thread::ThreadRegistry::new();
        let th = reg.register();
        let h = TmHeap::with_arenas(1024, 64);
        let a = h.alloc_for(&th, 4).unwrap();
        // A plain `dealloc` (no thread identity) of an arena block must not
        // hand it to the global allocator: the owner tag routes it onto the
        // owner's remote stack, and conservation still balances.
        h.dealloc(a, 4);
        assert_eq!(h.allocated_words(), 0);
        let again = h.alloc_for(&th, 4).unwrap();
        assert!(!again.is_null());
        h.dealloc_for(&th, again, 4);
        assert_eq!(h.allocated_words(), 0);
    }

    #[test]
    fn exhaustion_spills_arenas_and_retries() {
        let reg = crate::thread::ThreadRegistry::new();
        let th = reg.register();
        let h = TmHeap::with_arenas(128, 64);
        // One refill carves 64 words; freeing parks them all in the arena.
        let a = h.alloc_for(&th, 8).unwrap();
        h.dealloc_for(&th, a, 8);
        // 100 contiguous words exist only if the arena-cached blocks are
        // spilled back and coalesced with the untouched tail.
        let big = h.alloc(100).unwrap();
        assert!(!big.is_null());
        h.dealloc(big, 100);
        assert_eq!(h.allocated_words(), 0);
        // Genuine exhaustion still reports as before.
        assert!(h.alloc(500).is_none());
        assert!(h.alloc_for(&th, 32).is_some());
    }

    #[test]
    fn large_allocations_bypass_the_arena() {
        let reg = crate::thread::ThreadRegistry::new();
        let th = reg.register();
        let h = TmHeap::with_arenas(4096, 64);
        let big = h.alloc_for(&th, ARENA_MAX_WORDS + 1).unwrap();
        let snap = th.stats.snapshot();
        assert_eq!(snap.heap_arena_allocs, 0);
        assert_eq!(snap.heap_global_refills, 0);
        h.dealloc_for(&th, big, ARENA_MAX_WORDS + 1);
        assert_eq!(h.allocated_words(), 0);
    }

    #[test]
    fn overflowing_bins_spill_back_to_the_global_allocator() {
        let reg = crate::thread::ThreadRegistry::new();
        let th = reg.register();
        let h = TmHeap::with_arenas(4096, 64);
        // Drive one bin past its cap; the spill keeps conservation exact
        // and the blocks stay allocatable.
        let blocks: Vec<Addr> = (0..(BIN_CAP + 8))
            .map(|_| h.alloc_for(&th, 1).unwrap())
            .collect();
        for &b in &blocks {
            h.dealloc_for(&th, b, 1);
        }
        assert_eq!(h.allocated_words(), 0);
        let big = h.alloc(2048).unwrap();
        h.dealloc(big, 2048);
        assert_eq!(h.allocated_words(), 0);
    }

    #[test]
    fn concurrent_allocations_do_not_overlap() {
        use std::sync::Arc;
        let h = Arc::new(TmHeap::new(4096));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                (0..50).map(|_| h.alloc(8).unwrap()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|x| x.join().unwrap())
            .map(|a| a.0)
            .collect();
        all.sort_unstable();
        for w in all.windows(2) {
            assert!(w[1] - w[0] >= 8, "allocations overlap: {} {}", w[0], w[1]);
        }
    }
}
