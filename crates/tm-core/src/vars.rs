//! Typed views over heap words: [`TmVar`] and [`TmArray`].
//!
//! The runtimes operate on raw 64-bit words; data structures want typed
//! fields.  A [`TmVar<T>`] is a single word interpreted as `T`, and a
//! [`TmArray<T>`] is a contiguous run of words.  Both expose transactional
//! accessors (taking `&mut dyn Tx`) and direct accessors for
//! non-transactional setup and verification code.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::addr::Addr;
use crate::ctl::TxResult;
use crate::system::TmSystem;
use crate::tx::Tx;

/// Values that fit into a single heap word.
pub trait TmValue: Copy {
    /// Encodes the value as a word.
    fn into_word(self) -> u64;
    /// Decodes the value from a word.
    fn from_word(word: u64) -> Self;
}

impl TmValue for u64 {
    fn into_word(self) -> u64 {
        self
    }
    fn from_word(word: u64) -> Self {
        word
    }
}

impl TmValue for u32 {
    fn into_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as u32
    }
}

impl TmValue for usize {
    fn into_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as usize
    }
}

impl TmValue for i64 {
    fn into_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word as i64
    }
}

impl TmValue for i32 {
    fn into_word(self) -> u64 {
        self as u32 as u64
    }
    fn from_word(word: u64) -> Self {
        word as u32 as i32
    }
}

impl TmValue for bool {
    fn into_word(self) -> u64 {
        self as u64
    }
    fn from_word(word: u64) -> Self {
        word != 0
    }
}

impl TmValue for Addr {
    fn into_word(self) -> u64 {
        self.0 as u64
    }
    fn from_word(word: u64) -> Self {
        Addr(word as usize)
    }
}

/// A single transactional variable of type `T`, occupying one heap word.
#[derive(Debug)]
pub struct TmVar<T: TmValue> {
    addr: Addr,
    _marker: PhantomData<T>,
}

// The variable itself is just an address; sharing it across threads is safe.
impl<T: TmValue> Clone for TmVar<T> {
    fn clone(&self) -> Self {
        TmVar {
            addr: self.addr,
            _marker: PhantomData,
        }
    }
}

impl<T: TmValue> TmVar<T> {
    /// Allocates a new variable in `system`'s heap with the given initial
    /// value (non-transactional; used during setup).
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn alloc(system: &Arc<TmSystem>, init: T) -> Self {
        let addr = system.heap.alloc(1).expect("transactional heap exhausted");
        system.heap.store(addr, init.into_word());
        TmVar {
            addr,
            _marker: PhantomData,
        }
    }

    /// Wraps an existing heap word.
    pub fn from_addr(addr: Addr) -> Self {
        TmVar {
            addr,
            _marker: PhantomData,
        }
    }

    /// The underlying word address (usable with `Await`).
    pub fn addr(&self) -> Addr {
        self.addr
    }

    /// Transactionally reads the variable.
    pub fn get(&self, tx: &mut dyn Tx) -> TxResult<T> {
        Ok(T::from_word(tx.read(self.addr)?))
    }

    /// Transactionally writes the variable.
    pub fn set(&self, tx: &mut dyn Tx, value: T) -> TxResult<()> {
        tx.write(self.addr, value.into_word())
    }

    /// Reads the variable with the read-for-write optimisation (the caller
    /// intends to write it in the same transaction).
    pub fn get_for_update(&self, tx: &mut dyn Tx) -> TxResult<T> {
        Ok(T::from_word(tx.read_for_write(self.addr)?))
    }

    /// Transactionally updates the variable with `f`, returning the previous
    /// value.
    pub fn update<F: FnOnce(T) -> T>(&self, tx: &mut dyn Tx, f: F) -> TxResult<T> {
        let old = self.get_for_update(tx)?;
        self.set(tx, f(old))?;
        Ok(old)
    }

    /// Non-transactional read (setup / verification only).
    pub fn load_direct(&self, system: &TmSystem) -> T {
        T::from_word(system.heap.load(self.addr))
    }

    /// Non-transactional write (setup only).
    pub fn store_direct(&self, system: &TmSystem, value: T) {
        system.heap.store(self.addr, value.into_word());
    }
}

/// A fixed-length array of transactional values.
#[derive(Debug)]
pub struct TmArray<T: TmValue> {
    base: Addr,
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: TmValue> Clone for TmArray<T> {
    fn clone(&self) -> Self {
        TmArray {
            base: self.base,
            len: self.len,
            _marker: PhantomData,
        }
    }
}

impl<T: TmValue> TmArray<T> {
    /// Allocates an array of `len` elements, all initialised to `init`.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted or `len` is zero.
    pub fn alloc(system: &Arc<TmSystem>, len: usize, init: T) -> Self {
        assert!(len > 0, "TmArray length must be positive");
        let base = system
            .heap
            .alloc(len)
            .expect("transactional heap exhausted");
        for i in 0..len {
            system.heap.store(base.offset(i), init.into_word());
        }
        TmArray {
            base,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the array has zero length (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Address of element `i` (usable with `Await`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn addr_of(&self, i: usize) -> Addr {
        assert!(
            i < self.len,
            "TmArray index {i} out of bounds ({})",
            self.len
        );
        self.base.offset(i)
    }

    /// Transactionally reads element `i`.
    pub fn get(&self, tx: &mut dyn Tx, i: usize) -> TxResult<T> {
        Ok(T::from_word(tx.read(self.addr_of(i))?))
    }

    /// Transactionally writes element `i`.
    pub fn set(&self, tx: &mut dyn Tx, i: usize, value: T) -> TxResult<()> {
        tx.write(self.addr_of(i), value.into_word())
    }

    /// Non-transactional read of element `i` (setup / verification only).
    pub fn load_direct(&self, system: &TmSystem, i: usize) -> T {
        T::from_word(system.heap.load(self.addr_of(i)))
    }

    /// Non-transactional write of element `i` (setup only).
    pub fn store_direct(&self, system: &TmSystem, i: usize, value: T) {
        system.heap.store(self.addr_of(i), value.into_word());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TmConfig;
    use crate::ctl::{AbortReason, TxCtl};
    use crate::tx::{TxCommon, TxMode};

    /// Minimal pass-through transaction for exercising the typed views.
    struct RawTx {
        common: TxCommon,
        system: Arc<TmSystem>,
    }

    impl Tx for RawTx {
        fn read(&mut self, addr: Addr) -> TxResult<u64> {
            Ok(self.system.heap.load(addr))
        }
        fn write(&mut self, addr: Addr, val: u64) -> TxResult<()> {
            self.system.heap.store(addr, val);
            Ok(())
        }
        fn alloc(&mut self, words: usize) -> TxResult<Addr> {
            self.system
                .heap
                .alloc(words)
                .ok_or(TxCtl::Abort(AbortReason::OutOfMemory))
        }
        fn free(&mut self, addr: Addr, words: usize) -> TxResult<()> {
            self.system.heap.dealloc(addr, words);
            Ok(())
        }
        fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()> {
            block();
            Ok(())
        }
        fn explicit_abort(&mut self, code: u8) -> TxCtl {
            TxCtl::Abort(AbortReason::Explicit(code))
        }
        fn common(&self) -> &TxCommon {
            &self.common
        }
        fn common_mut(&mut self) -> &mut TxCommon {
            &mut self.common
        }
        fn system(&self) -> &Arc<TmSystem> {
            &self.system
        }
    }

    fn raw_tx(system: &Arc<TmSystem>) -> RawTx {
        let th = system.register_thread();
        RawTx {
            common: TxCommon::new(th, TxMode::Serial, 0),
            system: Arc::clone(system),
        }
    }

    #[test]
    fn word_encoding_round_trips() {
        assert_eq!(u64::from_word(17u64.into_word()), 17);
        assert_eq!(i64::from_word((-5i64).into_word()), -5);
        assert_eq!(i32::from_word((-5i32).into_word()), -5);
        assert_eq!(u32::from_word(7u32.into_word()), 7);
        assert_eq!(usize::from_word(123usize.into_word()), 123);
        assert!(bool::from_word(true.into_word()));
        assert!(!bool::from_word(false.into_word()));
        assert_eq!(Addr::from_word(Addr(9).into_word()), Addr(9));
    }

    #[test]
    fn tmvar_get_set_update() {
        let system = TmSystem::new(TmConfig::small());
        let v = TmVar::<u64>::alloc(&system, 10);
        let mut tx = raw_tx(&system);
        assert_eq!(v.get(&mut tx).unwrap(), 10);
        v.set(&mut tx, 20).unwrap();
        assert_eq!(v.get(&mut tx).unwrap(), 20);
        let old = v.update(&mut tx, |x| x + 5).unwrap();
        assert_eq!(old, 20);
        assert_eq!(v.load_direct(&system), 25);
    }

    #[test]
    fn tmvar_direct_access() {
        let system = TmSystem::new(TmConfig::small());
        let v = TmVar::<i64>::alloc(&system, -1);
        assert_eq!(v.load_direct(&system), -1);
        v.store_direct(&system, 7);
        assert_eq!(v.load_direct(&system), 7);
    }

    #[test]
    fn tmarray_indexing_and_bounds() {
        let system = TmSystem::new(TmConfig::small());
        let a = TmArray::<u64>::alloc(&system, 8, 3);
        assert_eq!(a.len(), 8);
        assert!(!a.is_empty());
        let mut tx = raw_tx(&system);
        for i in 0..8 {
            assert_eq!(a.get(&mut tx, i).unwrap(), 3);
        }
        a.set(&mut tx, 5, 99).unwrap();
        assert_eq!(a.load_direct(&system, 5), 99);
        assert_eq!(a.load_direct(&system, 4), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn tmarray_out_of_bounds_panics() {
        let system = TmSystem::new(TmConfig::small());
        let a = TmArray::<u64>::alloc(&system, 4, 0);
        let _ = a.addr_of(4);
    }

    #[test]
    fn distinct_vars_get_distinct_addresses() {
        let system = TmSystem::new(TmConfig::small());
        let a = TmVar::<u64>::alloc(&system, 0);
        let b = TmVar::<u64>::alloc(&system, 0);
        assert_ne!(a.addr(), b.addr());
    }
}
