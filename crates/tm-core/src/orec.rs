//! Ownership records ("orecs"): the per-stripe lock/version words used by the
//! software runtimes.
//!
//! Every heap address hashes to one entry in a fixed-size table of ownership
//! records, as in TinySTM and the paper's Appendix A.  An orec is a single
//! 64-bit word packing:
//!
//! ```text
//!   bit 0        : locked flag
//!   bits 1..16   : owner thread id + 1 (meaningful only while locked)
//!   bits 16..64  : version (the global-clock value of the last unlock)
//! ```
//!
//! The paper's `Lock` object has fields `locked`, `owner` and `version`
//! (Algorithm 8); packing them into one word lets us read all fields
//! atomically and update them with a single compare-and-swap, which the
//! pseudocode assumes.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::{Addr, LineId, LINE_WORDS};
use crate::pad::CachePadded;
use crate::thread::ThreadId;

const LOCK_BIT: u64 = 1;
const OWNER_SHIFT: u32 = 1;
const OWNER_BITS: u32 = 15;
const OWNER_MASK: u64 = ((1u64 << OWNER_BITS) - 1) << OWNER_SHIFT;
const VERSION_SHIFT: u32 = 16;

/// Maximum number of threads an orec can name as owner.
pub const MAX_THREADS: usize = (1 << OWNER_BITS) - 2;

/// A decoded ownership-record value (the paper's `Lock` object).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct OrecValue(u64);

impl OrecValue {
    /// An unlocked orec with the given version (time of last unlock).
    #[inline]
    pub fn unlocked(version: u64) -> Self {
        OrecValue(version << VERSION_SHIFT)
    }

    /// A locked orec owned by `owner`, preserving `version` from before the
    /// acquisition so it can be restored (incremented) on abort.
    #[inline]
    pub fn locked(version: u64, owner: ThreadId) -> Self {
        debug_assert!(owner < MAX_THREADS);
        OrecValue(
            (version << VERSION_SHIFT)
                | (((owner as u64 + 1) << OWNER_SHIFT) & OWNER_MASK)
                | LOCK_BIT,
        )
    }

    /// Reconstructs an orec value from its raw packed form.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        OrecValue(raw)
    }

    /// Returns the raw packed form.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True if some transaction currently holds this orec.
    #[inline]
    pub fn is_locked(self) -> bool {
        self.0 & LOCK_BIT != 0
    }

    /// The version (global-clock value at last unlock).
    #[inline]
    pub fn version(self) -> u64 {
        self.0 >> VERSION_SHIFT
    }

    /// The owning thread, if locked.
    #[inline]
    pub fn owner(self) -> Option<ThreadId> {
        if self.is_locked() {
            Some((((self.0 & OWNER_MASK) >> OWNER_SHIFT) - 1) as ThreadId)
        } else {
            None
        }
    }

    /// True if this orec is locked by `tid`.
    #[inline]
    pub fn is_locked_by(self, tid: ThreadId) -> bool {
        self.owner() == Some(tid)
    }
}

/// One shard of the ownership-record plane: an independently heap-allocated
/// slice of padded lock words plus its own CAS-failure counter.
///
/// Separate allocations are the point of sharding: with one flat 4MB box the
/// whole plane is first-touched (and on a NUMA machine physically placed) by
/// whichever thread constructs the system.  Per-shard boxes let the allocator
/// spread them, and give each shard a private contention counter that does
/// not bounce between shards.
#[derive(Debug)]
struct OrecShard {
    slots: Box<[CachePadded<AtomicU64>]>,
    /// Failed `cas` attempts on this shard's stripes — the direct measure of
    /// lock-word contention the memory-plane report surfaces.
    cas_failures: CachePadded<AtomicU64>,
}

impl OrecShard {
    fn new(slots: usize) -> Self {
        OrecShard {
            slots: (0..slots)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            cas_failures: CachePadded::new(AtomicU64::new(0)),
        }
    }
}

/// The global table of ownership records, indexed by a hash of the address.
///
/// Entries are cache-line padded: a stripe's lock word is CAS-hammered by
/// every writer that hashes onto it, and without padding eight stripes share
/// one line, so transactions on completely disjoint data still ping-pong
/// that line between cores ("false conflicts at the coherence level", as
/// opposed to the hash-collision kind).
///
/// The table is split into power-of-two `OrecShard`s, each its own heap
/// allocation.  A global stripe index `idx` maps to shard `idx & shard_mask`
/// and slot `idx >> shard_bits`; every public operation still speaks global
/// indices, so read/write covers, waitlist shard targeting and `line_cover`
/// coupling are byte-for-byte what they were with the flat table.
#[derive(Debug)]
pub struct OrecTable {
    shards: Box<[OrecShard]>,
    /// `shard_count - 1`; low bits of a global index select the shard, so
    /// hash-adjacent stripes land on different shards.
    shard_mask: usize,
    /// `log2(shard_count)`; high bits of a global index select the slot.
    shard_bits: u32,
    mask: usize,
}

impl OrecTable {
    /// Creates a table with `size` entries and the default shard count;
    /// `size` is rounded up to a power of two so indexing can use a mask.
    pub fn new(size: usize) -> Self {
        Self::new_sharded(size, crate::config::default_orec_shards())
    }

    /// Creates a table with `size` entries split into `shards` shards.  Both
    /// are rounded up to powers of two, and the shard count is clamped so
    /// every shard holds at least one slot.
    pub fn new_sharded(size: usize, shards: usize) -> Self {
        let size = size.next_power_of_two().max(2);
        let shards = shards.next_power_of_two().clamp(1, size);
        let shard_bits = shards.trailing_zeros();
        let slots_per_shard = size / shards;
        let shards = (0..shards)
            .map(|_| OrecShard::new(slots_per_shard))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        OrecTable {
            shard_mask: shards.len() - 1,
            shard_bits,
            shards,
            mask: size - 1,
        }
    }

    /// The slot holding the orec at global index `idx`.
    #[inline]
    fn slot(&self, idx: usize) -> &CachePadded<AtomicU64> {
        &self.shards[idx & self.shard_mask].slots[idx >> self.shard_bits]
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        (self.shard_mask + 1) * self.shards[0].slots.len()
    }

    /// True if the table has no entries (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards the table is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Failed `cas` attempts on shard `shard` (contention telemetry).
    pub fn shard_cas_failures(&self, shard: usize) -> u64 {
        self.shards[shard].cas_failures.load(Ordering::Relaxed)
    }

    /// Failed `cas` attempts summed over every shard.
    pub fn cas_failure_total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.cas_failures.load(Ordering::Relaxed))
            .sum()
    }

    /// Maps an address to its orec index (`hash(addr)` in the paper).
    ///
    /// Uses a Fibonacci multiplicative hash so that adjacent words spread
    /// across the table, reducing false conflicts between unrelated objects.
    #[inline]
    pub fn index_for(&self, addr: Addr) -> usize {
        // 2^64 / golden ratio, the usual Fibonacci hashing constant.
        const K: u64 = 0x9E37_79B9_7F4A_7C15;
        ((addr.0 as u64).wrapping_mul(K) >> 32) as usize & self.mask
    }

    /// The orec indices covering every word of a cache line, in word order
    /// (not deduplicated).
    ///
    /// This is the stripe cover a line-granular writer (a hardware commit)
    /// may have touched: a superset of the written words' stripes, so wake
    /// targeting built on it can never miss a sleeper.  The single source of
    /// truth for that mapping — the HTM simulator, the wake-path tests and
    /// the `wake_scaling` bench all derive from it.
    ///
    /// Returned as an iterator: this sits on the HTM simulator's per-access
    /// hot path, which used to pay a fresh `Vec` allocation per call.
    pub fn line_indices(&self, line: LineId) -> impl Iterator<Item = usize> + '_ {
        let base = line.first_word();
        (0..LINE_WORDS).map(move |i| self.index_for(base.offset(i)))
    }

    /// Selects up to `want` addresses from `candidates` whose orec stripes
    /// are pairwise distinct, preserving candidate order.
    ///
    /// Orec-cover helper for containers that co-design their layout with
    /// this table: hot per-container metadata words (e.g. a striped map's
    /// occupancy counters) are picked from an over-allocated block so that
    /// no two of them share a stripe, and therefore no two independent
    /// writers ever CAS the same ownership record.  Returns fewer than
    /// `want` addresses when the candidate set cannot cover that many
    /// distinct stripes (callers top up from the unused candidates).
    pub fn select_distinct_stripes<I>(&self, candidates: I, want: usize) -> Vec<Addr>
    where
        I: IntoIterator<Item = Addr>,
    {
        let mut picked = Vec::with_capacity(want);
        let mut stripes = Vec::with_capacity(want);
        for addr in candidates {
            if picked.len() == want {
                break;
            }
            let stripe = self.index_for(addr);
            if !stripes.contains(&stripe) {
                stripes.push(stripe);
                picked.push(addr);
            }
        }
        picked
    }

    /// Atomically reads the orec for `addr`.
    #[inline]
    pub fn load_for(&self, addr: Addr) -> OrecValue {
        self.load(self.index_for(addr))
    }

    /// Atomically reads the orec at table index `idx`.
    #[inline]
    pub fn load(&self, idx: usize) -> OrecValue {
        OrecValue(self.slot(idx).load(Ordering::Acquire))
    }

    /// Attempts to atomically transition the orec at `idx` from `old` to
    /// `new`; returns `true` on success.  A failed attempt bumps the shard's
    /// contention counter.
    #[inline]
    pub fn cas(&self, idx: usize, old: OrecValue, new: OrecValue) -> bool {
        let shard = &self.shards[idx & self.shard_mask];
        let ok = shard.slots[idx >> self.shard_bits]
            .compare_exchange(old.0, new.0, Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if !ok {
            shard.cas_failures.fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Unconditionally stores a new orec value at `idx`.
    ///
    /// Only the lock owner may do this (release on commit/abort).
    #[inline]
    pub fn store(&self, idx: usize, val: OrecValue) {
        self.slot(idx).store(val.0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_unlocked() {
        let v = OrecValue::unlocked(12345);
        assert!(!v.is_locked());
        assert_eq!(v.version(), 12345);
        assert_eq!(v.owner(), None);
    }

    #[test]
    fn pack_unpack_locked() {
        let v = OrecValue::locked(777, 9);
        assert!(v.is_locked());
        assert_eq!(v.version(), 777);
        assert_eq!(v.owner(), Some(9));
        assert!(v.is_locked_by(9));
        assert!(!v.is_locked_by(8));
    }

    #[test]
    fn owner_zero_is_distinguishable_from_unlocked() {
        let v = OrecValue::locked(0, 0);
        assert!(v.is_locked());
        assert_eq!(v.owner(), Some(0));
        let u = OrecValue::unlocked(0);
        assert_ne!(v, u);
    }

    #[test]
    fn table_size_rounds_to_power_of_two() {
        assert_eq!(OrecTable::new(1000).len(), 1024);
        assert_eq!(OrecTable::new(1024).len(), 1024);
        assert_eq!(OrecTable::new(1).len(), 2);
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let t = OrecTable::new(4096);
        for i in 0..10_000 {
            let a = Addr(i);
            let idx = t.index_for(a);
            assert!(idx < t.len());
            assert_eq!(idx, t.index_for(a), "hash must be deterministic");
        }
    }

    #[test]
    fn adjacent_words_usually_map_to_distinct_orecs() {
        let t = OrecTable::new(4096);
        let mut distinct = 0;
        for i in 0..1000 {
            if t.index_for(Addr(i)) != t.index_for(Addr(i + 1)) {
                distinct += 1;
            }
        }
        assert!(distinct > 900, "hashing should spread adjacent words");
    }

    #[test]
    fn cas_acquire_release_cycle() {
        let t = OrecTable::new(16);
        let idx = t.index_for(Addr(5));
        let before = t.load(idx);
        assert!(!before.is_locked());
        let locked = OrecValue::locked(before.version(), 3);
        assert!(t.cas(idx, before, locked));
        assert!(t.load(idx).is_locked_by(3));
        // A second acquisition attempt with the stale snapshot fails.
        assert!(!t.cas(idx, before, OrecValue::locked(before.version(), 4)));
        // Release at a new version.
        t.store(idx, OrecValue::unlocked(42));
        assert_eq!(t.load(idx).version(), 42);
        assert!(!t.load(idx).is_locked());
    }

    #[test]
    fn table_entries_do_not_share_cache_lines() {
        use crate::pad::CACHE_LINE_BYTES;
        let t = OrecTable::new_sharded(8, 2);
        for shard in &t.shards {
            let base = shard.slots.as_ptr() as usize;
            assert_eq!(base % CACHE_LINE_BYTES, 0);
        }
        let stride = std::mem::size_of::<CachePadded<AtomicU64>>();
        assert!(stride >= CACHE_LINE_BYTES);
    }

    #[test]
    fn shards_are_separate_allocations_and_partition_the_table() {
        let t = OrecTable::new_sharded(64, 4);
        assert_eq!(t.shard_count(), 4);
        assert_eq!(t.len(), 64);
        // Distinct boxes: shard base pointers differ (separate allocations,
        // so a NUMA first-touch policy can place them independently).
        let bases: Vec<usize> = t.shards.iter().map(|s| s.slots.as_ptr() as usize).collect();
        for (i, a) in bases.iter().enumerate() {
            for b in &bases[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Every global index maps to exactly one (shard, slot) pair.
        let mut seen = std::collections::HashSet::new();
        for idx in 0..t.len() {
            let pair = (idx & t.shard_mask, idx >> t.shard_bits);
            assert!(pair.0 < 4 && pair.1 < 16);
            assert!(seen.insert(pair), "index {idx} collided");
        }
    }

    #[test]
    fn shard_count_is_clamped_and_rounded() {
        assert_eq!(OrecTable::new_sharded(16, 1).shard_count(), 1);
        assert_eq!(OrecTable::new_sharded(16, 3).shard_count(), 4);
        // More shards than slots: clamp so every shard holds >= 1 slot.
        assert_eq!(OrecTable::new_sharded(4, 64).shard_count(), 4);
        assert_eq!(OrecTable::new_sharded(4, 64).len(), 4);
    }

    #[test]
    fn global_indices_are_stable_across_shard_counts() {
        // The public stripe id of an address must not depend on how the
        // plane is sharded: waitlist targeting and line covers are keyed by
        // these ids, and a resharded system must agree with itself.
        let flat = OrecTable::new_sharded(4096, 1);
        let split = OrecTable::new_sharded(4096, 8);
        for i in 0..10_000 {
            assert_eq!(flat.index_for(Addr(i)), split.index_for(Addr(i)));
        }
        let line = Addr(128).line();
        assert!(flat.line_indices(line).eq(split.line_indices(line)));
    }

    #[test]
    fn values_survive_the_shard_slot_mapping() {
        // Store through one index, read it back, and make sure no other
        // index aliases onto the same slot.
        let t = OrecTable::new_sharded(32, 4);
        for idx in 0..t.len() {
            t.store(idx, OrecValue::unlocked(idx as u64 + 1));
        }
        for idx in 0..t.len() {
            assert_eq!(t.load(idx).version(), idx as u64 + 1);
        }
    }

    #[test]
    fn failed_cas_bumps_the_shard_contention_counter() {
        let t = OrecTable::new_sharded(16, 2);
        let idx = 3;
        let before = t.load(idx);
        assert_eq!(t.cas_failure_total(), 0);
        // A successful CAS is not contention.
        assert!(t.cas(idx, before, OrecValue::locked(before.version(), 1)));
        assert_eq!(t.cas_failure_total(), 0);
        // A stale-snapshot CAS is.
        assert!(!t.cas(idx, before, OrecValue::locked(before.version(), 2)));
        assert_eq!(t.cas_failure_total(), 1);
        assert_eq!(t.shard_cas_failures(idx & t.shard_mask), 1);
    }

    #[test]
    fn version_survives_large_clock_values() {
        let v = OrecValue::unlocked(1 << 40);
        assert_eq!(v.version(), 1 << 40);
        let l = OrecValue::locked(1 << 40, 100);
        assert_eq!(l.version(), 1 << 40);
        assert_eq!(l.owner(), Some(100));
    }

    #[test]
    fn select_distinct_stripes_never_reuses_a_stripe() {
        let t = OrecTable::new_sharded(64, 4);
        let candidates: Vec<Addr> = (0..256).map(Addr).collect();
        let picked = t.select_distinct_stripes(candidates.iter().copied(), 8);
        assert_eq!(picked.len(), 8, "plenty of candidates for 8 stripes");
        let stripes: Vec<usize> = picked.iter().map(|&a| t.index_for(a)).collect();
        for (i, s) in stripes.iter().enumerate() {
            assert!(
                !stripes[i + 1..].contains(s),
                "stripe {s} selected twice in {stripes:?}"
            );
        }
        // Asking for more stripes than the table has comes up short instead
        // of looping forever.
        let tiny = OrecTable::new_sharded(2, 1);
        let picked = tiny.select_distinct_stripes(candidates.iter().copied(), 8);
        assert!(picked.len() <= 2);
    }
}
