//! Ownership records ("orecs"): the per-stripe lock/version words used by the
//! software runtimes.
//!
//! Every heap address hashes to one entry in a fixed-size table of ownership
//! records, as in TinySTM and the paper's Appendix A.  An orec is a single
//! 64-bit word packing:
//!
//! ```text
//!   bit 0        : locked flag
//!   bits 1..16   : owner thread id + 1 (meaningful only while locked)
//!   bits 16..64  : version (the global-clock value of the last unlock)
//! ```
//!
//! The paper's `Lock` object has fields `locked`, `owner` and `version`
//! (Algorithm 8); packing them into one word lets us read all fields
//! atomically and update them with a single compare-and-swap, which the
//! pseudocode assumes.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::addr::{Addr, LineId, LINE_WORDS};
use crate::pad::CachePadded;
use crate::thread::ThreadId;

const LOCK_BIT: u64 = 1;
const OWNER_SHIFT: u32 = 1;
const OWNER_BITS: u32 = 15;
const OWNER_MASK: u64 = ((1u64 << OWNER_BITS) - 1) << OWNER_SHIFT;
const VERSION_SHIFT: u32 = 16;

/// Maximum number of threads an orec can name as owner.
pub const MAX_THREADS: usize = (1 << OWNER_BITS) - 2;

/// A decoded ownership-record value (the paper's `Lock` object).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct OrecValue(u64);

impl OrecValue {
    /// An unlocked orec with the given version (time of last unlock).
    #[inline]
    pub fn unlocked(version: u64) -> Self {
        OrecValue(version << VERSION_SHIFT)
    }

    /// A locked orec owned by `owner`, preserving `version` from before the
    /// acquisition so it can be restored (incremented) on abort.
    #[inline]
    pub fn locked(version: u64, owner: ThreadId) -> Self {
        debug_assert!(owner < MAX_THREADS);
        OrecValue(
            (version << VERSION_SHIFT)
                | (((owner as u64 + 1) << OWNER_SHIFT) & OWNER_MASK)
                | LOCK_BIT,
        )
    }

    /// Reconstructs an orec value from its raw packed form.
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        OrecValue(raw)
    }

    /// Returns the raw packed form.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// True if some transaction currently holds this orec.
    #[inline]
    pub fn is_locked(self) -> bool {
        self.0 & LOCK_BIT != 0
    }

    /// The version (global-clock value at last unlock).
    #[inline]
    pub fn version(self) -> u64 {
        self.0 >> VERSION_SHIFT
    }

    /// The owning thread, if locked.
    #[inline]
    pub fn owner(self) -> Option<ThreadId> {
        if self.is_locked() {
            Some((((self.0 & OWNER_MASK) >> OWNER_SHIFT) - 1) as ThreadId)
        } else {
            None
        }
    }

    /// True if this orec is locked by `tid`.
    #[inline]
    pub fn is_locked_by(self, tid: ThreadId) -> bool {
        self.owner() == Some(tid)
    }
}

/// The global table of ownership records, indexed by a hash of the address.
///
/// Entries are cache-line padded: a stripe's lock word is CAS-hammered by
/// every writer that hashes onto it, and without padding eight stripes share
/// one line, so transactions on completely disjoint data still ping-pong
/// that line between cores ("false conflicts at the coherence level", as
/// opposed to the hash-collision kind).
#[derive(Debug)]
pub struct OrecTable {
    orecs: Box<[CachePadded<AtomicU64>]>,
    mask: usize,
}

impl OrecTable {
    /// Creates a table with `size` entries; `size` is rounded up to a power of
    /// two so indexing can use a mask.
    pub fn new(size: usize) -> Self {
        let size = size.next_power_of_two().max(2);
        let orecs = (0..size)
            .map(|_| CachePadded::new(AtomicU64::new(0)))
            .collect::<Vec<_>>();
        OrecTable {
            orecs: orecs.into_boxed_slice(),
            mask: size - 1,
        }
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.orecs.len()
    }

    /// True if the table has no entries (never the case in practice).
    pub fn is_empty(&self) -> bool {
        self.orecs.is_empty()
    }

    /// Maps an address to its orec index (`hash(addr)` in the paper).
    ///
    /// Uses a Fibonacci multiplicative hash so that adjacent words spread
    /// across the table, reducing false conflicts between unrelated objects.
    #[inline]
    pub fn index_for(&self, addr: Addr) -> usize {
        // 2^64 / golden ratio, the usual Fibonacci hashing constant.
        const K: u64 = 0x9E37_79B9_7F4A_7C15;
        ((addr.0 as u64).wrapping_mul(K) >> 32) as usize & self.mask
    }

    /// The orec indices covering every word of a cache line, in word order
    /// (not deduplicated).
    ///
    /// This is the stripe cover a line-granular writer (a hardware commit)
    /// may have touched: a superset of the written words' stripes, so wake
    /// targeting built on it can never miss a sleeper.  The single source of
    /// truth for that mapping — the HTM simulator, the wake-path tests and
    /// the `wake_scaling` bench all derive from it.
    ///
    /// Returned as an iterator: this sits on the HTM simulator's per-access
    /// hot path, which used to pay a fresh `Vec` allocation per call.
    pub fn line_indices(&self, line: LineId) -> impl Iterator<Item = usize> + '_ {
        let base = line.first_word();
        (0..LINE_WORDS).map(move |i| self.index_for(base.offset(i)))
    }

    /// Atomically reads the orec for `addr`.
    #[inline]
    pub fn load_for(&self, addr: Addr) -> OrecValue {
        self.load(self.index_for(addr))
    }

    /// Atomically reads the orec at table index `idx`.
    #[inline]
    pub fn load(&self, idx: usize) -> OrecValue {
        OrecValue(self.orecs[idx].load(Ordering::Acquire))
    }

    /// Attempts to atomically transition the orec at `idx` from `old` to
    /// `new`; returns `true` on success.
    #[inline]
    pub fn cas(&self, idx: usize, old: OrecValue, new: OrecValue) -> bool {
        self.orecs[idx]
            .compare_exchange(old.0, new.0, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Unconditionally stores a new orec value at `idx`.
    ///
    /// Only the lock owner may do this (release on commit/abort).
    #[inline]
    pub fn store(&self, idx: usize, val: OrecValue) {
        self.orecs[idx].store(val.0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_unlocked() {
        let v = OrecValue::unlocked(12345);
        assert!(!v.is_locked());
        assert_eq!(v.version(), 12345);
        assert_eq!(v.owner(), None);
    }

    #[test]
    fn pack_unpack_locked() {
        let v = OrecValue::locked(777, 9);
        assert!(v.is_locked());
        assert_eq!(v.version(), 777);
        assert_eq!(v.owner(), Some(9));
        assert!(v.is_locked_by(9));
        assert!(!v.is_locked_by(8));
    }

    #[test]
    fn owner_zero_is_distinguishable_from_unlocked() {
        let v = OrecValue::locked(0, 0);
        assert!(v.is_locked());
        assert_eq!(v.owner(), Some(0));
        let u = OrecValue::unlocked(0);
        assert_ne!(v, u);
    }

    #[test]
    fn table_size_rounds_to_power_of_two() {
        assert_eq!(OrecTable::new(1000).len(), 1024);
        assert_eq!(OrecTable::new(1024).len(), 1024);
        assert_eq!(OrecTable::new(1).len(), 2);
    }

    #[test]
    fn index_is_stable_and_in_range() {
        let t = OrecTable::new(4096);
        for i in 0..10_000 {
            let a = Addr(i);
            let idx = t.index_for(a);
            assert!(idx < t.len());
            assert_eq!(idx, t.index_for(a), "hash must be deterministic");
        }
    }

    #[test]
    fn adjacent_words_usually_map_to_distinct_orecs() {
        let t = OrecTable::new(4096);
        let mut distinct = 0;
        for i in 0..1000 {
            if t.index_for(Addr(i)) != t.index_for(Addr(i + 1)) {
                distinct += 1;
            }
        }
        assert!(distinct > 900, "hashing should spread adjacent words");
    }

    #[test]
    fn cas_acquire_release_cycle() {
        let t = OrecTable::new(16);
        let idx = t.index_for(Addr(5));
        let before = t.load(idx);
        assert!(!before.is_locked());
        let locked = OrecValue::locked(before.version(), 3);
        assert!(t.cas(idx, before, locked));
        assert!(t.load(idx).is_locked_by(3));
        // A second acquisition attempt with the stale snapshot fails.
        assert!(!t.cas(idx, before, OrecValue::locked(before.version(), 4)));
        // Release at a new version.
        t.store(idx, OrecValue::unlocked(42));
        assert_eq!(t.load(idx).version(), 42);
        assert!(!t.load(idx).is_locked());
    }

    #[test]
    fn table_entries_do_not_share_cache_lines() {
        use crate::pad::CACHE_LINE_BYTES;
        let t = OrecTable::new(4);
        let base = t.orecs.as_ptr() as usize;
        assert_eq!(base % CACHE_LINE_BYTES, 0);
        let stride = std::mem::size_of::<CachePadded<AtomicU64>>();
        assert!(stride >= CACHE_LINE_BYTES);
    }

    #[test]
    fn version_survives_large_clock_values() {
        let v = OrecValue::unlocked(1 << 40);
        assert_eq!(v.version(), 1 << 40);
        let l = OrecValue::locked(1 << 40, 100);
        assert_eq!(l.version(), 1 << 40);
        assert_eq!(l.owner(), Some(100));
    }
}
