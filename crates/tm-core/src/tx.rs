//! The object-safe transaction handle used by transaction bodies.
//!
//! Data structures and workloads are written once against `&mut dyn Tx` and
//! run unchanged on the eager STM, the lazy STM and the HTM simulator.  The
//! handle exposes word reads and writes (the paper's `TxRead`/`TxWrite`
//! instrumentation), transactional allocation, the `read-for-write`
//! optimisation used by production STMs (§2.2.4), and the commit-and-reopen
//! hook needed by transaction-safe condition variables.

use std::sync::Arc;
use std::time::Instant;

use crate::access::WriteLog;
use crate::addr::Addr;
use crate::ctl::{TxCtl, TxResult};
use crate::system::TmSystem;
use crate::thread::ThreadCtx;
use crate::waitlist::WakeReason;

/// The execution mode of the current transaction attempt.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TxMode {
    /// Running as a (simulated) hardware transaction.
    Hardware,
    /// Running under software instrumentation.
    Software,
    /// Running under software instrumentation *and* logging `(addr, value)`
    /// pairs on every read, because the previous attempt called `Retry`
    /// (Algorithm 5's `is_retry` flag).
    SoftwareRetry,
    /// Running serially/irrevocably (all other transactions excluded).
    Serial,
}

impl TxMode {
    /// True for the software modes (instrumented reads and writes).
    pub fn is_software(self) -> bool {
        !matches!(self, TxMode::Hardware)
    }
}

/// Whether the transaction is a full update transaction or a declared
/// read-only transaction eligible for the snapshot read path.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum TxKind {
    /// A full transaction: reads are tracked and validated, writes allowed.
    #[default]
    Update,
    /// A read-only transaction: software attempts read against the begin
    /// snapshot with no read set and commit without validation (see
    /// [`crate::config::SnapshotMode`]).  A write upgrades the transaction
    /// to [`TxKind::Update`] and restarts it.
    ReadOnly,
}

/// Per-attempt metadata shared by all runtimes.
#[derive(Debug)]
pub struct TxCommon {
    /// The executing thread.
    pub thread: Arc<ThreadCtx>,
    /// Execution mode of this attempt.
    pub mode: TxMode,
    /// Update or declared read-only (snapshot-eligible).  Defaults to
    /// [`TxKind::Update`]; the driver sets [`TxKind::ReadOnly`] for
    /// `atomically_read` attempts and clears it again on upgrade.
    pub kind: TxKind,
    /// Value log for `Retry`: populated on every read when
    /// `mode == SoftwareRetry` (Algorithm 5, `TxRead`).  A pooled
    /// [`WriteLog`] in first-value-wins mode, so re-reads deduplicate in
    /// O(1) and the capacity is recycled across attempts; drain it with
    /// [`WriteLog::drain_pairs`] when materialising the wait condition.
    pub waitset: WriteLog,
    /// How many times this transaction has been attempted (for backoff and
    /// the HTM fallback policy).
    pub attempts: u32,
    /// How the transaction's most recent deschedule ended, set by the driver
    /// loop when it re-executes the body after a sleep.  `None` until the
    /// transaction deschedules for the first time.  This is the hand-off
    /// that lets a timed wait observe its own timeout: the body reads it
    /// through `condsync::wake_reason` / `condsync::timed_out` and decides
    /// whether to give up instead of waiting again.
    pub wake_reason: Option<WakeReason>,
    /// Deadline requested by a timed wait construct (`retry_for` and
    /// friends) during *this* attempt; the driver reads it when the body
    /// requests a deschedule and forwards it to `deschedule_until`.  Plain
    /// (unbounded) constructs reset it to `None`, so each deschedule request
    /// carries exactly the deadline of the construct that raised it.
    pub wait_deadline: Option<Instant>,
}

impl TxCommon {
    /// Creates attempt metadata for `thread` in `mode`.
    ///
    /// The `Retry` value log is taken from the thread's
    /// [`crate::access::LogPool`] only in value-logging mode; other modes
    /// never touch it, so they carry an allocation-free empty log.
    pub fn new(thread: Arc<ThreadCtx>, mode: TxMode, attempts: u32) -> Self {
        let waitset = if mode == TxMode::SoftwareRetry {
            thread.take_write_log()
        } else {
            WriteLog::new()
        };
        TxCommon {
            thread,
            mode,
            kind: TxKind::Update,
            waitset,
            attempts,
            wake_reason: None,
            wait_deadline: None,
        }
    }

    /// Sets the transaction kind (builder-style, used by the driver when
    /// beginning a declared read-only attempt).
    pub fn with_kind(mut self, kind: TxKind) -> Self {
        self.kind = kind;
        self
    }

    /// Records a read in the `Retry` value log when in retry-logging mode.
    ///
    /// Deduplicates by address in O(1); keeping the *first* observed value
    /// makes the log reflect the state the transaction actually observed.
    #[inline]
    pub fn log_retry_read(&mut self, addr: Addr, val: u64) {
        if self.mode == TxMode::SoftwareRetry {
            self.waitset.record_first(addr, val, || 0);
        }
    }
}

impl Drop for TxCommon {
    fn drop(&mut self) {
        // Recycle the value log's capacity for the next attempt.  Straight
        // to the pool: the waitset logs *reads*, so it must not feed the
        // `write_set_max` high-water mark the way real write logs do.
        self.thread
            .pool
            .put_write_log(std::mem::take(&mut self.waitset));
    }
}

/// The transaction handle passed to transaction bodies.
///
/// All methods may return `Err(TxCtl::…)`, which the body must propagate
/// (with `?`) so the runtime can roll back and act on the control request.
pub trait Tx {
    /// Transactionally reads the word at `addr`.
    fn read(&mut self, addr: Addr) -> TxResult<u64>;

    /// Transactionally writes `val` to `addr`.
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()>;

    /// Reads a word that the caller intends to subsequently write.
    ///
    /// Production STMs implement this as "read for write" (§2.2.4): the
    /// location is locked immediately and is *not* added to the read set.
    /// The default implementation is a plain read.
    fn read_for_write(&mut self, addr: Addr) -> TxResult<u64> {
        self.read(addr)
    }

    /// Transactionally allocates `words` contiguous heap words.
    ///
    /// The allocation is undone if the transaction aborts ("captured
    /// memory", §2.2.4).
    fn alloc(&mut self, words: usize) -> TxResult<Addr>;

    /// Transactionally frees `words` words at `addr`; reclamation is deferred
    /// until the transaction commits.
    fn free(&mut self, addr: Addr, words: usize) -> TxResult<()>;

    /// Commits the transaction's work so far, runs `block` outside any
    /// transaction, then begins a fresh transaction for the remainder of the
    /// body.
    ///
    /// This deliberately *breaks atomicity* and exists only to implement
    /// transaction-safe condition variables (the `TMCondVar` baseline); the
    /// paper's own mechanisms never need it.
    fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()>;

    /// Requests an explicit abort with an 8-bit code (Intel `xabort` style).
    fn explicit_abort(&mut self, code: u8) -> TxCtl;

    /// Access to the attempt metadata.
    fn common(&self) -> &TxCommon;

    /// Mutable access to the attempt metadata.
    fn common_mut(&mut self) -> &mut TxCommon;

    /// The system (heap, clocks, registries) this transaction runs against.
    fn system(&self) -> &Arc<TmSystem>;

    /// The current execution mode.
    fn mode(&self) -> TxMode {
        self.common().mode
    }

    /// The executing thread.
    fn thread(&self) -> Arc<ThreadCtx> {
        Arc::clone(&self.common().thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TmConfig;

    #[test]
    fn mode_software_classification() {
        assert!(TxMode::Software.is_software());
        assert!(TxMode::SoftwareRetry.is_software());
        assert!(TxMode::Serial.is_software());
        assert!(!TxMode::Hardware.is_software());
    }

    #[test]
    fn kind_defaults_to_update_and_with_kind_overrides() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let c = TxCommon::new(Arc::clone(&th), TxMode::Software, 0);
        assert_eq!(c.kind, TxKind::Update);
        let c = TxCommon::new(th, TxMode::Software, 0).with_kind(TxKind::ReadOnly);
        assert_eq!(c.kind, TxKind::ReadOnly);
    }

    #[test]
    fn retry_log_only_in_retry_mode_and_deduplicates() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let mut c = TxCommon::new(Arc::clone(&th), TxMode::Software, 0);
        c.log_retry_read(Addr(1), 10);
        assert!(c.waitset.is_empty(), "not logging outside retry mode");

        let mut c = TxCommon::new(th, TxMode::SoftwareRetry, 0);
        c.log_retry_read(Addr(1), 10);
        c.log_retry_read(Addr(2), 20);
        c.log_retry_read(Addr(1), 99);
        assert_eq!(c.waitset.pairs(), vec![(Addr(1), 10), (Addr(2), 20)]);
    }

    #[test]
    fn dropped_attempts_recycle_the_value_log() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        {
            let mut c = TxCommon::new(Arc::clone(&th), TxMode::SoftwareRetry, 0);
            c.log_retry_read(Addr(1), 10);
        }
        // The next retry-mode attempt takes the recycled log back out.
        let c = TxCommon::new(Arc::clone(&th), TxMode::SoftwareRetry, 1);
        assert!(c.waitset.is_empty());
        assert_eq!(th.stats.snapshot().log_pool_reuses, 1);
    }
}
