//! The object-safe transaction handle used by transaction bodies.
//!
//! Data structures and workloads are written once against `&mut dyn Tx` and
//! run unchanged on the eager STM, the lazy STM and the HTM simulator.  The
//! handle exposes word reads and writes (the paper's `TxRead`/`TxWrite`
//! instrumentation), transactional allocation, the `read-for-write`
//! optimisation used by production STMs (§2.2.4), and the commit-and-reopen
//! hook needed by transaction-safe condition variables.

use std::sync::Arc;
use std::time::Instant;

use crate::addr::Addr;
use crate::ctl::{TxCtl, TxResult};
use crate::system::TmSystem;
use crate::thread::ThreadCtx;
use crate::waitlist::WakeReason;

/// The execution mode of the current transaction attempt.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TxMode {
    /// Running as a (simulated) hardware transaction.
    Hardware,
    /// Running under software instrumentation.
    Software,
    /// Running under software instrumentation *and* logging `(addr, value)`
    /// pairs on every read, because the previous attempt called `Retry`
    /// (Algorithm 5's `is_retry` flag).
    SoftwareRetry,
    /// Running serially/irrevocably (all other transactions excluded).
    Serial,
}

impl TxMode {
    /// True for the software modes (instrumented reads and writes).
    pub fn is_software(self) -> bool {
        !matches!(self, TxMode::Hardware)
    }
}

/// Per-attempt metadata shared by all runtimes.
#[derive(Debug)]
pub struct TxCommon {
    /// The executing thread.
    pub thread: Arc<ThreadCtx>,
    /// Execution mode of this attempt.
    pub mode: TxMode,
    /// Value log for `Retry`: populated on every read when
    /// `mode == SoftwareRetry` (Algorithm 5, `TxRead`).
    pub waitset: Vec<(Addr, u64)>,
    /// How many times this transaction has been attempted (for backoff and
    /// the HTM fallback policy).
    pub attempts: u32,
    /// How the transaction's most recent deschedule ended, set by the driver
    /// loop when it re-executes the body after a sleep.  `None` until the
    /// transaction deschedules for the first time.  This is the hand-off
    /// that lets a timed wait observe its own timeout: the body reads it
    /// through `condsync::wake_reason` / `condsync::timed_out` and decides
    /// whether to give up instead of waiting again.
    pub wake_reason: Option<WakeReason>,
    /// Deadline requested by a timed wait construct (`retry_for` and
    /// friends) during *this* attempt; the driver reads it when the body
    /// requests a deschedule and forwards it to `deschedule_until`.  Plain
    /// (unbounded) constructs reset it to `None`, so each deschedule request
    /// carries exactly the deadline of the construct that raised it.
    pub wait_deadline: Option<Instant>,
}

impl TxCommon {
    /// Creates attempt metadata for `thread` in `mode`.
    pub fn new(thread: Arc<ThreadCtx>, mode: TxMode, attempts: u32) -> Self {
        TxCommon {
            thread,
            mode,
            waitset: Vec::new(),
            attempts,
            wake_reason: None,
            wait_deadline: None,
        }
    }

    /// Records a read in the `Retry` value log when in retry-logging mode.
    ///
    /// Deduplicates by address so re-reads do not bloat the waitset; keeping
    /// the *first* observed value makes the log reflect the state the
    /// transaction actually observed.
    #[inline]
    pub fn log_retry_read(&mut self, addr: Addr, val: u64) {
        if self.mode == TxMode::SoftwareRetry && !self.waitset.iter().any(|&(a, _)| a == addr) {
            self.waitset.push((addr, val));
        }
    }
}

/// The transaction handle passed to transaction bodies.
///
/// All methods may return `Err(TxCtl::…)`, which the body must propagate
/// (with `?`) so the runtime can roll back and act on the control request.
pub trait Tx {
    /// Transactionally reads the word at `addr`.
    fn read(&mut self, addr: Addr) -> TxResult<u64>;

    /// Transactionally writes `val` to `addr`.
    fn write(&mut self, addr: Addr, val: u64) -> TxResult<()>;

    /// Reads a word that the caller intends to subsequently write.
    ///
    /// Production STMs implement this as "read for write" (§2.2.4): the
    /// location is locked immediately and is *not* added to the read set.
    /// The default implementation is a plain read.
    fn read_for_write(&mut self, addr: Addr) -> TxResult<u64> {
        self.read(addr)
    }

    /// Transactionally allocates `words` contiguous heap words.
    ///
    /// The allocation is undone if the transaction aborts ("captured
    /// memory", §2.2.4).
    fn alloc(&mut self, words: usize) -> TxResult<Addr>;

    /// Transactionally frees `words` words at `addr`; reclamation is deferred
    /// until the transaction commits.
    fn free(&mut self, addr: Addr, words: usize) -> TxResult<()>;

    /// Commits the transaction's work so far, runs `block` outside any
    /// transaction, then begins a fresh transaction for the remainder of the
    /// body.
    ///
    /// This deliberately *breaks atomicity* and exists only to implement
    /// transaction-safe condition variables (the `TMCondVar` baseline); the
    /// paper's own mechanisms never need it.
    fn commit_and_reopen(&mut self, block: &mut dyn FnMut()) -> TxResult<()>;

    /// Requests an explicit abort with an 8-bit code (Intel `xabort` style).
    fn explicit_abort(&mut self, code: u8) -> TxCtl;

    /// Access to the attempt metadata.
    fn common(&self) -> &TxCommon;

    /// Mutable access to the attempt metadata.
    fn common_mut(&mut self) -> &mut TxCommon;

    /// The system (heap, clocks, registries) this transaction runs against.
    fn system(&self) -> &Arc<TmSystem>;

    /// The current execution mode.
    fn mode(&self) -> TxMode {
        self.common().mode
    }

    /// The executing thread.
    fn thread(&self) -> Arc<ThreadCtx> {
        Arc::clone(&self.common().thread)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TmConfig;

    #[test]
    fn mode_software_classification() {
        assert!(TxMode::Software.is_software());
        assert!(TxMode::SoftwareRetry.is_software());
        assert!(TxMode::Serial.is_software());
        assert!(!TxMode::Hardware.is_software());
    }

    #[test]
    fn retry_log_only_in_retry_mode_and_deduplicates() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let mut c = TxCommon::new(Arc::clone(&th), TxMode::Software, 0);
        c.log_retry_read(Addr(1), 10);
        assert!(c.waitset.is_empty(), "not logging outside retry mode");

        let mut c = TxCommon::new(th, TxMode::SoftwareRetry, 0);
        c.log_retry_read(Addr(1), 10);
        c.log_retry_read(Addr(2), 20);
        c.log_retry_read(Addr(1), 99);
        assert_eq!(c.waitset, vec![(Addr(1), 10), (Addr(2), 20)]);
    }
}
