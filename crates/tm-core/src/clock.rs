//! The version clock plane shared by all transactions.
//!
//! As in TL2 and TinySTM (paper Appendix A, Algorithm 8), a monotonically
//! increasing logical clock orders writer commits: ownership records store
//! the clock value at which their stripe was last unlocked, and readers
//! compare those versions against the clock value sampled at transaction
//! begin.  *How* that clock advances is the scalability lever, and
//! [`ClockPlane`] offers two schemes behind one API:
//!
//! * [`ClockMode::Gv1`] — the textbook scheme: every writer commit
//!   `fetch_add`s one shared counter (`end ← atomicIncrement(clock)` in
//!   Algorithm 9).  Timestamps are globally unique, which enables the
//!   `end == start + 1` "nobody else committed" validation-skip, but every
//!   commit writes the same cache line, the classic TL2/GV1 ceiling.
//! * [`ClockMode::LazyGv5`] — the decentralized scheme: the logical "now"
//!   is `max(shared counter, per-thread commit epochs)` over the
//!   [`EpochTable`], a committing writer stamps `now() + 1` **without
//!   touching the shared counter** and afterwards publishes the timestamp
//!   only to its own padded epoch slot.  The shared line is CAS-advanced
//!   only on the conflict path ([`ClockPlane::note_stale`]) — when a reader
//!   actually observes a version newer than its snapshot — so uncontended
//!   commits never write shared state.
//!
//! # Why the lazy scheme is safe
//!
//! Timestamps are no longer unique: two concurrent committers may both
//! stamp `t + 1`.  That is the same situation GV4's "pass on failure"
//! creates, and it is sound for the same reason — the commit timestamp is
//! computed **after** the writer holds every ownership record it will
//! stamp.  Consider a reader with begin snapshot `rv` and any writer commit
//! with stamp `ts`:
//!
//! * If the writer computed `ts` after the reader's begin, then
//!   `ts = now() + 1 > rv` (the scan's result is at least the counter
//!   floor, and epochs only grow), so every location it stamps becomes
//!   invisible to the reader's validation — too new, abort, no torn read.
//! * If the writer computed `ts ≤ rv`, the writer's lock phase completed
//!   before the reader's begin-time scan could observe `ts` anywhere, so
//!   the reader sees either the lock (abort/retry) or the fully written
//!   final values — never a mix.
//!
//! The epoch publish happens only after write-back and lock release, so a
//! slot's epoch never advertises a commit whose effects are not yet
//! visible.  The window between lock release and epoch publish can make a
//! fresh reader begin "in the past" and promptly abort on the new
//! versions; [`ClockPlane::note_stale`] folds the observed version into the
//! shared counter so the retry begins current — that conflict path is the
//! *only* shared-line write the lazy mode performs, counted by the
//! `clock_cas` statistic (reuses are counted by `clock_reuse`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::epoch::EpochTable;
use crate::pad::CachePadded;
use crate::stats::TxStats;

/// How the version clock advances (see the module docs for the schemes).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash)]
pub enum ClockMode {
    /// One shared `fetch_add` per writer commit; unique timestamps.  Kept as
    /// the deterministic baseline and test double.
    Gv1,
    /// Lazy GV5-style reuse over the per-thread epoch table; the shared
    /// counter is CAS-advanced only on observed conflicts.
    #[default]
    LazyGv5,
}

impl ClockMode {
    /// The label used in bench output and JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            ClockMode::Gv1 => "gv1",
            ClockMode::LazyGv5 => "lazy-gv5",
        }
    }
}

/// A writer commit timestamp handed out by [`ClockPlane::commit_stamp`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CommitStamp {
    /// The timestamp to store into released ownership records.
    pub ts: u64,
    /// True when `ts` is globally unique (GV1).  Only then may an engine use
    /// the `ts == start + 1` shortcut to skip read-set validation; lazy
    /// stamps can collide with a concurrent committer's, so holders of a
    /// non-unique stamp must always validate.
    pub unique: bool,
}

/// The version clock: a shared counter plus (in lazy mode) the decentralized
/// epoch table it hides behind.
#[derive(Debug)]
pub struct ClockPlane {
    mode: ClockMode,
    /// The shared counter: the whole clock in GV1, the conflict-path floor
    /// in lazy mode.  Padded so neighbours in `TmSystem` don't share its
    /// line.
    value: CachePadded<AtomicU64>,
    /// Per-thread commit epochs; scanned by [`now`](Self::now) in lazy mode.
    epochs: Arc<EpochTable>,
}

impl Default for ClockPlane {
    fn default() -> Self {
        Self::new()
    }
}

/// The historical name for the version clock, kept for the engine crates and
/// any code written against the single-counter API.
pub type GlobalClock = ClockPlane;

impl ClockPlane {
    /// Creates a standalone GV1 clock starting at time 0 (unit-test
    /// convenience; systems build theirs with [`ClockPlane::for_system`]).
    pub fn new() -> Self {
        ClockPlane::for_system(ClockMode::Gv1, Arc::new(EpochTable::new(1)))
    }

    /// Creates a clock in `mode` over the system's shared epoch table.
    pub fn for_system(mode: ClockMode, epochs: Arc<EpochTable>) -> Self {
        ClockPlane {
            mode,
            value: CachePadded::new(AtomicU64::new(0)),
            epochs,
        }
    }

    /// Which advancement scheme this clock runs.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Samples the current time (used at transaction begin).
    ///
    /// In lazy mode this is the max of the shared counter and every
    /// registered thread's published commit epoch — the counter alone may
    /// lag arbitrarily far behind, since uncontended commits never write it.
    #[inline]
    pub fn now(&self) -> u64 {
        let floor = self.value.load(Ordering::Acquire);
        match self.mode {
            ClockMode::Gv1 => floor,
            ClockMode::LazyGv5 => floor.max(self.epochs.max_epoch()),
        }
    }

    /// Atomically increments the shared counter and returns the *new* value.
    ///
    /// This is the GV1 commit path, and in **both** modes the serial gate's
    /// release fence: a gate release must be globally visible as a clock
    /// advance immediately, not after an epoch publish race.
    #[inline]
    pub fn tick(&self) -> u64 {
        let bumped = self.value.fetch_add(1, Ordering::AcqRel) + 1;
        match self.mode {
            ClockMode::Gv1 => bumped,
            // The counter may trail the epochs; the caller needs a value
            // above every published commit, not floor + 1.
            ClockMode::LazyGv5 => bumped.max(self.epochs.max_epoch() + 1),
        }
    }

    /// Hands a committing writer its timestamp.
    ///
    /// Must be called **after** the writer has acquired every ownership
    /// record it will stamp — encounter-time locks in the eager STM, the
    /// sorted commit-time cover in the lazy STM, the coupled CAS cover in
    /// the HTM simulator.  That ordering is what makes non-unique lazy
    /// stamps sound (see the module docs).
    #[inline]
    pub fn commit_stamp(&self, stats: &TxStats) -> CommitStamp {
        match self.mode {
            ClockMode::Gv1 => {
                TxStats::bump(&stats.clock_cas);
                CommitStamp {
                    ts: self.tick(),
                    unique: true,
                }
            }
            ClockMode::LazyGv5 => {
                TxStats::bump(&stats.clock_reuse);
                CommitStamp {
                    ts: self.now() + 1,
                    unique: false,
                }
            }
        }
    }

    /// Reports that a reader observed `version` newer than its snapshot.
    ///
    /// In lazy mode this folds the version into the shared counter
    /// (CAS-max), so the aborted transaction's retry — and every later
    /// begin — starts at or above it even before the committer publishes
    /// its epoch.  This is the lazy scheme's only shared-line write and is
    /// what the `clock_cas` statistic counts there.  No-op under GV1, where
    /// the commit tick already advanced the counter.
    #[inline]
    pub fn note_stale(&self, version: u64, stats: &TxStats) {
        if self.mode == ClockMode::LazyGv5 && version > self.value.load(Ordering::Relaxed) {
            self.value.fetch_max(version, Ordering::AcqRel);
            TxStats::bump(&stats.clock_cas);
        }
    }

    /// The clock side of an eager-STM rollback that bumped orec versions.
    ///
    /// The eager STM releases rolled-back stripes at `version + 1` so
    /// readers that raced the undo can't validate against torn data.  Under
    /// GV1 the clock must cover those inflated versions, hence a tick; in
    /// lazy mode inflated versions are harmless — the stripe still holds its
    /// last committed data, and any reader that trips on the higher version
    /// aborts and folds it in via [`note_stale`](Self::note_stale).
    #[inline]
    pub fn rollback_bump(&self, stats: &TxStats) {
        if self.mode == ClockMode::Gv1 {
            self.tick();
            TxStats::bump(&stats.clock_cas);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lazy_clock(threads: usize) -> (ClockPlane, Arc<EpochTable>) {
        let epochs = Arc::new(EpochTable::new(threads));
        for id in 0..threads {
            epochs.activate(id);
        }
        (
            ClockPlane::for_system(ClockMode::LazyGv5, Arc::clone(&epochs)),
            epochs,
        )
    }

    #[test]
    fn starts_at_zero() {
        assert_eq!(GlobalClock::new().now(), 0);
        assert_eq!(GlobalClock::new().mode(), ClockMode::Gv1);
    }

    #[test]
    fn tick_returns_new_value() {
        let c = GlobalClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn ticks_are_unique_across_threads() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every tick must be unique");
        assert_eq!(c.now(), 4000);
    }

    #[test]
    fn gv1_commit_stamp_is_a_unique_tick() {
        let c = GlobalClock::new();
        let stats = TxStats::default();
        let s = c.commit_stamp(&stats);
        assert_eq!(
            s,
            CommitStamp {
                ts: 1,
                unique: true
            }
        );
        assert_eq!(c.now(), 1);
        assert_eq!(stats.snapshot().clock_cas, 1);
        assert_eq!(stats.snapshot().clock_reuse, 0);
    }

    #[test]
    fn lazy_commit_stamp_reuses_without_writing_shared_state() {
        let (c, epochs) = lazy_clock(2);
        let stats = TxStats::default();
        let a = c.commit_stamp(&stats);
        let b = c.commit_stamp(&stats);
        assert_eq!(
            a,
            CommitStamp {
                ts: 1,
                unique: false
            }
        );
        assert_eq!(b.ts, 1, "no publish yet, so the stamp repeats");
        // The shared counter never moved; only epoch publishes advance time.
        epochs.slot(0).set_epoch(a.ts);
        assert_eq!(c.now(), 1);
        assert_eq!(c.commit_stamp(&stats).ts, 2);
        assert_eq!(stats.snapshot().clock_cas, 0, "no shared-line writes");
        assert_eq!(stats.snapshot().clock_reuse, 3);
    }

    #[test]
    fn lazy_now_is_the_epoch_and_counter_max() {
        let (c, epochs) = lazy_clock(3);
        assert_eq!(c.now(), 0);
        epochs.slot(1).set_epoch(7);
        assert_eq!(c.now(), 7);
        let stats = TxStats::default();
        c.note_stale(9, &stats);
        assert_eq!(c.now(), 9, "note_stale raised the counter floor");
        assert_eq!(stats.snapshot().clock_cas, 1);
        c.note_stale(4, &stats);
        assert_eq!(
            stats.snapshot().clock_cas,
            1,
            "stale hint below now is free"
        );
    }

    #[test]
    fn lazy_tick_lands_above_every_epoch() {
        let (c, epochs) = lazy_clock(2);
        epochs.slot(0).set_epoch(10);
        assert!(
            c.tick() > 10,
            "serial-gate release must advance past all commits"
        );
    }

    #[test]
    fn rollback_bump_ticks_only_under_gv1() {
        let stats = TxStats::default();
        let gv1 = GlobalClock::new();
        gv1.rollback_bump(&stats);
        assert_eq!(gv1.now(), 1);
        let (lazy, _) = lazy_clock(1);
        lazy.rollback_bump(&stats);
        assert_eq!(lazy.now(), 0, "lazy rollback leaves the shared line alone");
    }
}
