//! The global version clock shared by all transactions.
//!
//! As in TL2 and TinySTM (paper Appendix A, Algorithm 8), a monotonically
//! increasing logical clock is incremented on every writer commit; ownership
//! records store the clock value at which their stripe was last unlocked, and
//! readers compare those versions against the clock value sampled at
//! transaction begin.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing logical clock counting writer commits.
#[derive(Debug)]
pub struct GlobalClock {
    value: AtomicU64,
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl GlobalClock {
    /// Creates a clock starting at time 0.
    pub fn new() -> Self {
        GlobalClock {
            value: AtomicU64::new(0),
        }
    }

    /// Samples the current time (used at transaction begin).
    #[inline]
    pub fn now(&self) -> u64 {
        self.value.load(Ordering::Acquire)
    }

    /// Atomically increments the clock and returns the *new* value.
    ///
    /// This is the commit timestamp of a writer transaction
    /// (`end ← atomicIncrement(clock)` in Algorithm 9).
    #[inline]
    pub fn tick(&self) -> u64 {
        self.value.fetch_add(1, Ordering::AcqRel) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero() {
        assert_eq!(GlobalClock::new().now(), 0);
    }

    #[test]
    fn tick_returns_new_value() {
        let c = GlobalClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn ticks_are_unique_across_threads() {
        let c = Arc::new(GlobalClock::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| c.tick()).collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000, "every tick must be unique");
        assert_eq!(c.now(), 4000);
    }
}
