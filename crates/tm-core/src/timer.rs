//! A hashed timer wheel delivering deadlines to descheduled transactions.
//!
//! Timed waits (`retry_for` / `await_for` / `wait_pred_for` in `condsync`)
//! need someone to notice that a sleeper's deadline has passed and wake it
//! with [`WakeReason::Timeout`].  Spawning a background ticker thread would
//! burden the common case (the paper's design goal is that condition
//! synchronization costs nothing while nobody waits), so the wheel is driven
//! **lazily** by threads that are already running:
//!
//! * committing writers poll it from the `wakeWaiters` path — behind the
//!   existing empty-registry fast path, so the no-sleeper commit still costs
//!   a single atomic load,
//! * aborted transactions poll it before backing off (a spinning thread has
//!   time to spare),
//! * and the sleeper itself blocks with [`crate::sem::Semaphore::wait_deadline`],
//!   which is the correctness backstop: even if no other thread ever runs,
//!   the sleeper wakes itself at its deadline and claims the timeout.
//!
//! The wheel therefore only affects *promptness* (a busy system delivers
//! timeouts without waiting for the sleeper's own semaphore to expire) and
//! *accounting* (timer ticks show up in [`crate::stats::TxStats`]); it is
//! never the only thing standing between a sleeper and its deadline.
//!
//! # Structure
//!
//! Classic hashed wheel: time is divided into coarse ticks
//! ([`TimerConfig::tick_micros`]); a deadline hashes to slot
//! `tick(deadline) & mask` over a power-of-two slot array.  [`TimerWheel::poll`]
//! advances a shared cursor from the last processed tick to the current one
//! and visits each slot in between (capped at one full lap), expiring
//! entries whose deadline has passed and discarding entries whose waiter was
//! already claimed by a writer or a cancel.  Deadlines further than one lap
//! away simply stay in their slot and are re-examined once per lap, which is
//! correct because expiry compares the stored [`Waiter::deadline`] instant,
//! not the slot index.
//!
//! Claiming is the same compare-and-swap used by writers
//! ([`Waiter::claim`]), so a sleeper whose deadline races with a wake-up is
//! still woken exactly once, with exactly one reason.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::config::TimerConfig;
use crate::lock::Mutex;
use crate::waitlist::{Waiter, WakeReason};

/// What one [`TimerWheel::poll`] accomplished, for statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct TimerPoll {
    /// Ticks the cursor advanced (0 when another poller got there first or
    /// no tick boundary has passed).
    pub ticks: u64,
    /// Waiters claimed with [`WakeReason::Timeout`] and signalled.
    pub expired: u64,
}

/// The lazily driven hashed timer wheel (see the module docs).
#[derive(Debug)]
pub struct TimerWheel {
    /// Construction instant; ticks count from here.
    epoch: Instant,
    /// Microseconds per tick (≥ 1).
    tick_micros: u64,
    /// One mutex-protected list of armed waiters per slot.
    slots: Box<[Mutex<Vec<Arc<Waiter>>>]>,
    mask: u64,
    /// Number of currently armed entries; the poll fast path is one load of
    /// this count.
    armed: AtomicUsize,
    /// The last tick fully processed by a poll.
    cursor: AtomicU64,
}

impl TimerWheel {
    /// Builds a wheel from `config` (slot count rounded up to a power of
    /// two, minimum 2; tick length clamped to at least 1µs).
    pub fn new(config: TimerConfig) -> Self {
        let slots = config.slots.next_power_of_two().max(2);
        TimerWheel {
            epoch: Instant::now(),
            tick_micros: config.tick_micros.max(1),
            slots: (0..slots).map(|_| Mutex::new(Vec::new())).collect(),
            mask: slots as u64 - 1,
            armed: AtomicUsize::new(0),
            cursor: AtomicU64::new(0),
        }
    }

    /// Number of slots in the wheel.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of currently armed entries.
    pub fn armed(&self) -> usize {
        self.armed.load(Ordering::Acquire)
    }

    /// Fast check used by pollers: is any timer armed?  One atomic load.
    #[inline]
    pub fn idle(&self) -> bool {
        self.armed.load(Ordering::Acquire) == 0
    }

    /// The coarse tick an instant falls into.
    fn tick_of(&self, t: Instant) -> u64 {
        (t.saturating_duration_since(self.epoch).as_micros() as u64) / self.tick_micros
    }

    fn slot_for(&self, deadline: Instant) -> &Mutex<Vec<Arc<Waiter>>> {
        &self.slots[(self.tick_of(deadline) & self.mask) as usize]
    }

    /// Registers `w` (which must carry a deadline) for expiry delivery.
    ///
    /// The caller must have already registered the waiter in the
    /// [`crate::waitlist::WaitList`] — arming is an optimisation layered on
    /// top of a published waiter, never a substitute for publication.
    ///
    /// # Panics
    ///
    /// Panics if the waiter has no deadline.
    pub fn arm(&self, w: &Arc<Waiter>) {
        let deadline = w.deadline.expect("arming a waiter without a deadline");
        if self.armed.fetch_add(1, Ordering::AcqRel) == 0 {
            // The wheel was idle, so nothing behind the current tick can be
            // armed: fast-forward the cursor so the next poll does not walk
            // a lap of empty slots to catch up.
            self.cursor
                .fetch_max(self.tick_of(Instant::now()), Ordering::AcqRel);
        }
        self.slot_for(deadline).lock().push(Arc::clone(w));
    }

    /// Removes `w` from its slot (no-op if it is not armed, e.g. because a
    /// poll already expired it).  Called by the sleeper after it wakes, so
    /// stale entries never outlive their sleep.
    pub fn disarm(&self, w: &Arc<Waiter>) {
        let Some(deadline) = w.deadline else { return };
        let mut list = self.slot_for(deadline).lock();
        let before = list.len();
        list.retain(|x| !Arc::ptr_eq(x, w));
        if list.len() != before {
            self.armed.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Advances the wheel to `now`, claiming and signalling every armed
    /// waiter whose deadline has passed.
    ///
    /// Safe to call from any thread at any time; concurrent polls race on
    /// the cursor and exactly one advances it per tick range.  The cost is
    /// one atomic load when no timer is armed.
    pub fn poll(&self, now: Instant) -> TimerPoll {
        let mut out = TimerPoll::default();
        if self.idle() {
            return out;
        }
        let now_tick = self.tick_of(now);
        let cur = self.cursor.load(Ordering::Acquire);
        if now_tick <= cur
            || self
                .cursor
                .compare_exchange(cur, now_tick, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
        {
            return out;
        }
        out.ticks = now_tick - cur;
        // Visiting more than one lap would revisit slots; cap the walk.
        let span = out.ticks.min(self.slots.len() as u64);
        for t in (now_tick - span + 1)..=now_tick {
            let slot = &self.slots[(t & self.mask) as usize];
            let mut list = slot.lock();
            if list.is_empty() {
                continue;
            }
            list.retain(|w| {
                if !w.is_asleep() {
                    // Already woken or cancelled; drop the stale entry.
                    self.armed.fetch_sub(1, Ordering::AcqRel);
                    return false;
                }
                match w.deadline {
                    Some(d) if d <= now => {
                        if w.claim(WakeReason::Timeout) {
                            w.sem.post();
                            out.expired += 1;
                        }
                        self.armed.fetch_sub(1, Ordering::AcqRel);
                        false
                    }
                    // Deadline in a later lap of this slot: keep waiting.
                    _ => true,
                }
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    use crate::addr::Addr;
    use crate::ctl::WaitCondition;
    use crate::sem::Semaphore;

    fn wheel() -> TimerWheel {
        TimerWheel::new(TimerConfig {
            slots: 8,
            tick_micros: 100,
        })
    }

    fn timed_waiter(deadline: Instant) -> Arc<Waiter> {
        Waiter::with_deadline(
            0,
            WaitCondition::ValuesChanged(vec![(Addr(1), 0)]),
            Arc::new(Semaphore::new()),
            Some(deadline),
        )
    }

    #[test]
    fn config_rounds_slots_and_clamps_tick() {
        let w = TimerWheel::new(TimerConfig {
            slots: 5,
            tick_micros: 0,
        });
        assert_eq!(w.slot_count(), 8);
        assert_eq!(w.tick_micros, 1);
        assert!(w.idle());
    }

    #[test]
    fn poll_with_nothing_armed_is_a_noop() {
        let w = wheel();
        let p = w.poll(Instant::now() + Duration::from_secs(1));
        assert_eq!(p, TimerPoll::default());
    }

    #[test]
    fn expired_deadline_is_claimed_exactly_once() {
        let w = wheel();
        let deadline = Instant::now() + Duration::from_millis(1);
        let timed = timed_waiter(deadline);
        w.arm(&timed);
        assert_eq!(w.armed(), 1);

        // Before the deadline nothing fires.
        let p = w.poll(deadline - Duration::from_millis(1));
        assert_eq!(p.expired, 0);
        assert!(timed.is_asleep());

        // At/after the deadline the waiter is claimed and signalled once,
        // no matter how often the wheel is polled afterwards.
        let p = w.poll(deadline + Duration::from_millis(1));
        assert_eq!(p.expired, 1);
        assert_eq!(timed.wake_reason(), Some(WakeReason::Timeout));
        assert_eq!(timed.sem.permits(), 1);
        assert_eq!(w.armed(), 0);
        for extra in 2..5u64 {
            let p = w.poll(deadline + Duration::from_millis(extra));
            assert_eq!(p.expired, 0);
        }
        assert_eq!(timed.sem.permits(), 1, "never double-signalled");
    }

    #[test]
    fn stale_entries_are_dropped_without_signalling() {
        let w = wheel();
        let deadline = Instant::now() + Duration::from_millis(1);
        let timed = timed_waiter(deadline);
        w.arm(&timed);
        // A writer wins the race and claims the waiter first.
        assert!(timed.claim(WakeReason::Woken));
        let p = w.poll(deadline + Duration::from_millis(5));
        assert_eq!(p.expired, 0, "claimed waiters must not be re-signalled");
        assert_eq!(timed.sem.permits(), 0);
        assert_eq!(w.armed(), 0, "stale entry cleaned up");
    }

    #[test]
    fn disarm_removes_the_entry() {
        let w = wheel();
        let timed = timed_waiter(Instant::now() + Duration::from_millis(2));
        w.arm(&timed);
        assert_eq!(w.armed(), 1);
        w.disarm(&timed);
        assert_eq!(w.armed(), 0);
        // Disarming twice (or disarming an unarmed waiter) is harmless.
        w.disarm(&timed);
        assert_eq!(w.armed(), 0);
        let p = w.poll(Instant::now() + Duration::from_secs(1));
        assert_eq!(p.expired, 0);
    }

    #[test]
    fn deadlines_beyond_one_lap_wait_for_their_lap() {
        let w = wheel(); // 8 slots x 100µs = 800µs per lap
        let start = Instant::now();
        let far = start + Duration::from_millis(10); // many laps out
        let timed = timed_waiter(far);
        w.arm(&timed);
        // Sweeping a full lap early must not expire it.
        let p = w.poll(start + Duration::from_millis(1));
        assert_eq!(p.expired, 0);
        assert!(timed.is_asleep());
        assert_eq!(w.armed(), 1, "future-lap entry stays armed");
        // Once its instant passes, it fires.
        let p = w.poll(far + Duration::from_millis(1));
        assert_eq!(p.expired, 1);
        assert_eq!(timed.wake_reason(), Some(WakeReason::Timeout));
    }

    #[test]
    fn concurrent_polls_expire_each_waiter_once() {
        let w = Arc::new(TimerWheel::new(TimerConfig {
            slots: 16,
            tick_micros: 50,
        }));
        let deadline = Instant::now() + Duration::from_millis(1);
        let waiters: Vec<_> = (0..16).map(|_| timed_waiter(deadline)).collect();
        for timed in &waiters {
            w.arm(timed);
        }
        std::thread::sleep(Duration::from_millis(3));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                let mut expired = 0;
                for _ in 0..10 {
                    expired += w.poll(Instant::now()).expired;
                    std::thread::yield_now();
                }
                expired
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, 16, "every waiter expires exactly once in total");
        for timed in &waiters {
            assert_eq!(timed.sem.permits(), 1);
            assert_eq!(timed.wake_reason(), Some(WakeReason::Timeout));
        }
        assert_eq!(w.armed(), 0);
    }

    #[test]
    #[should_panic(expected = "without a deadline")]
    fn arming_an_unbounded_waiter_is_rejected() {
        let w = wheel();
        let unbounded = Waiter::new(
            0,
            WaitCondition::ValuesChanged(vec![(Addr(1), 0)]),
            Arc::new(Semaphore::new()),
        );
        w.arm(&unbounded);
    }
}
