//! The registry of descheduled (sleeping) transactions.
//!
//! This is the `waiting` list of Algorithms 1 and 4.  A thread that
//! deschedules publishes a [`Waiter`] record carrying its wake-up condition
//! and an `asleep` flag; committing writers take a shallow copy of the list
//! (`waiting.copy()` in `wakeWaiters`), evaluate each waiter's condition in a
//! read-only transaction, and signal the waiter's semaphore if the condition
//! holds.
//!
//! The list itself is protected by an ordinary mutex — the paper's
//! "good-faith implementation" uses an ad-hoc non-blocking scheme, but the
//! list is only touched when threads actually sleep or wake, which is off the
//! critical path.  A separate atomic count lets committing writers skip the
//! whole mechanism when nobody is waiting, which is the common case and is
//! what keeps the overhead on in-flight (hardware) transactions at zero.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::lock::Mutex;

use crate::ctl::WaitCondition;
use crate::sem::Semaphore;
use crate::thread::ThreadId;

/// A published record of a sleeping (descheduled) transaction.
#[derive(Debug)]
pub struct Waiter {
    /// The descheduled thread.
    pub thread: ThreadId,
    /// True while the thread still needs to be woken.  Cleared exactly once
    /// by whoever wakes it (waiter itself during the double-check, or a
    /// committing writer), so a waiter is signalled at most once per sleep.
    pub asleep: AtomicBool,
    /// The condition under which the thread should be re-scheduled.
    pub condition: WaitCondition,
    /// Semaphore the thread blocks on.
    pub sem: Arc<Semaphore>,
}

impl Waiter {
    /// Creates a new waiter record (initially marked asleep).
    pub fn new(thread: ThreadId, condition: WaitCondition, sem: Arc<Semaphore>) -> Arc<Self> {
        Arc::new(Waiter {
            thread,
            asleep: AtomicBool::new(true),
            condition,
            sem,
        })
    }

    /// Attempts to claim the right to wake this waiter; returns true for
    /// exactly one caller.
    pub fn claim_wake(&self) -> bool {
        self.asleep.swap(false, Ordering::AcqRel)
    }

    /// True if the waiter has not yet been claimed for wake-up.
    pub fn is_asleep(&self) -> bool {
        self.asleep.load(Ordering::Acquire)
    }
}

/// The global list of sleeping transactions.
#[derive(Debug, Default)]
pub struct WaiterRegistry {
    list: Mutex<Vec<Arc<Waiter>>>,
    count: AtomicUsize,
    /// Monotone counter of registrations, handy for tests and tracing.
    registrations: AtomicU64,
}

impl WaiterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        WaiterRegistry::default()
    }

    /// Fast check used by committing writers: is anyone possibly waiting?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }

    /// Number of currently registered waiters.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Acquire)
    }

    /// Total number of registrations ever performed.
    pub fn registrations(&self) -> u64 {
        self.registrations.load(Ordering::Relaxed)
    }

    /// Adds a waiter to the list.
    ///
    /// The caller must double-check its wait condition *after* this returns
    /// (Algorithm 4 lines 6–13): any writer that commits after this point
    /// will observe the waiter in its `wakeWaiters` scan, and any writer that
    /// committed before it is covered by the double-check.
    pub fn register(&self, w: Arc<Waiter>) {
        let mut list = self.list.lock();
        list.push(w);
        self.count.store(list.len(), Ordering::Release);
        self.registrations.fetch_add(1, Ordering::Relaxed);
    }

    /// Removes a waiter from the list (Algorithm 4 line 16, after wake-up).
    pub fn deregister(&self, w: &Arc<Waiter>) {
        let mut list = self.list.lock();
        list.retain(|x| !Arc::ptr_eq(x, w));
        self.count.store(list.len(), Ordering::Release);
    }

    /// A shallow copy of the current waiters (`waiting.copy()` in
    /// `wakeWaiters`): the scan happens outside the lock to avoid contention.
    pub fn snapshot(&self) -> Vec<Arc<Waiter>> {
        self.list.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    fn dummy_waiter(tid: ThreadId) -> Arc<Waiter> {
        Waiter::new(
            tid,
            WaitCondition::ValuesChanged(vec![(Addr(1), 0)]),
            Arc::new(Semaphore::new()),
        )
    }

    #[test]
    fn empty_registry_reports_empty() {
        let r = WaiterRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn register_and_deregister_round_trip() {
        let r = WaiterRegistry::new();
        let w1 = dummy_waiter(0);
        let w2 = dummy_waiter(1);
        r.register(Arc::clone(&w1));
        r.register(Arc::clone(&w2));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.registrations(), 2);
        r.deregister(&w1);
        assert_eq!(r.len(), 1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(Arc::ptr_eq(&snap[0], &w2));
    }

    #[test]
    fn deregister_unknown_waiter_is_harmless() {
        let r = WaiterRegistry::new();
        let w1 = dummy_waiter(0);
        r.register(Arc::clone(&w1));
        let unknown = dummy_waiter(9);
        r.deregister(&unknown);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn claim_wake_succeeds_exactly_once() {
        let w = dummy_waiter(0);
        assert!(w.is_asleep());
        assert!(w.claim_wake());
        assert!(!w.claim_wake());
        assert!(!w.is_asleep());
    }

    #[test]
    fn concurrent_claims_have_single_winner() {
        let w = dummy_waiter(0);
        let mut handles = Vec::new();
        for _ in 0..8 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || w.claim_wake()));
        }
        let winners = handles
            .into_iter()
            .filter(|_| true)
            .map(|h| h.join().unwrap())
            .filter(|&x| x)
            .count();
        assert_eq!(winners, 1);
    }

    #[test]
    fn snapshot_is_shallow_copy() {
        let r = WaiterRegistry::new();
        let w = dummy_waiter(0);
        r.register(Arc::clone(&w));
        let snap = r.snapshot();
        // Claiming through the snapshot is visible through the registry copy.
        assert!(snap[0].claim_wake());
        assert!(!r.snapshot()[0].is_asleep());
    }
}
