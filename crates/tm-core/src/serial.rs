//! The system-wide serial/irrevocable gate and the shared serial attempt.
//!
//! Serial (irrevocable) execution used to be an HTM-simulator private: its
//! GCC-style fallback lock lived inside `htm-sim`, and the software STMs had
//! no serial mode at all — `TxCtl::BecomeSerial` was dead weight on them.
//! This module lifts the whole facility into `tm-core`:
//!
//! * [`SerialGate`] — one flag per [`crate::system::TmSystem`] that every
//!   engine honors.  Hardware transactions subscribe to it exactly as they
//!   subscribed to the old fallback lock (refuse to start / abort while it is
//!   held); software transactions re-check it after publishing their start
//!   time, and the acquirer quiesces every in-flight software attempt before
//!   entering its serial section, so the holder runs truly alone.
//! * [`SerialAttempt`] — the one serial attempt shape shared by the software
//!   engines: direct heap access (no ownership records, no read set) with an
//!   undo log kept only so condition synchronization can still roll the
//!   attempt back and capture a wait condition.
//!
//! The acquisition protocol is a Dekker-style store/load handshake with the
//! per-thread published start times (see [`crate::thread::ThreadCtx`]):
//!
//! ```text
//!   acquirer                        software attempt
//!   ────────                        ────────────────
//!   flag.swap(true)   (SeqCst)      enter_tx(start)   (then SeqCst fence)
//!   fence(SeqCst)                   if gate.held() { exit_tx; wait; retry }
//!   wait: ∀ other t,
//!     t.published_start == NOT_IN_TX
//! ```
//!
//! Either the attempt sees the flag (and backs out), or the acquirer sees the
//! published start (and waits it out); both running concurrently is
//! impossible.  Hardware attempts never publish a start time — for them the
//! gate's doom sweep plus the simulator's commit barrier play the same role.
//!
//! Releasing the gate ticks the global clock (a "clock fence"): transactions
//! that begin after a serial section observe a commit event, so no
//! version-based fast path can conclude that nothing happened while they
//! were excluded.

use std::sync::atomic::{fence, AtomicBool, Ordering};
use std::sync::Arc;

use crate::access::WriteLog;
use crate::addr::Addr;
use crate::backoff::SpinWait;
use crate::clock::GlobalClock;
use crate::ctl::{TxCtl, WaitCondition, WaitSpec};
use crate::driver::CommitOutcome;
use crate::stats::TxStats;
use crate::system::TmSystem;
use crate::thread::{ThreadCtx, NOT_IN_TX};
use crate::tx::TxCommon;

/// The system-wide serial/irrevocable flag, honored by every engine.
///
/// Doubles as the HTM fallback lock's subscription word: hardware
/// transactions check [`SerialGate::held`] before starting and on every
/// access, exactly as lock-elided transactions subscribe to the fallback
/// lock on real hardware.
#[derive(Debug, Default)]
pub struct SerialGate {
    flag: AtomicBool,
}

impl SerialGate {
    /// Creates a released gate.
    pub fn new() -> Self {
        SerialGate::default()
    }

    /// True while some transaction runs serially.
    #[inline]
    pub fn held(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Spins until the gate is free (the hardware-transaction subscription,
    /// and the software engines' begin-time courtesy wait).
    pub fn wait_clear(&self) {
        let mut spin = SpinWait::new();
        while self.held() {
            spin.pause();
        }
    }

    /// Acquires the gate for `thread` and excludes every other transaction:
    ///
    /// 1. spins until the flag CAS succeeds (one serial holder at a time),
    /// 2. dooms every other thread's in-flight *hardware* transaction (the
    ///    coherence-triggered abort acquiring the fallback lock causes on
    ///    real hardware; harmless for software threads),
    /// 3. quiesces every other thread's in-flight *software* transaction by
    ///    waiting for its published start time to clear.
    ///
    /// Engines with additional commit machinery (the HTM simulator's commit
    /// barrier) layer their own drain on top after this returns.
    pub fn acquire(&self, system: &TmSystem, thread: &ThreadCtx) {
        let mut spin = SpinWait::new();
        while self
            .flag
            .compare_exchange(false, true, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            spin.pause();
        }
        TxStats::bump(&thread.stats.serial_acquires);
        // The flag store above must be ordered before the published-start
        // loads below (the other half of the Dekker handshake is in the
        // software engines' begin paths).
        fence(Ordering::SeqCst);
        system.threads.for_each_other(thread.id, |t| t.doom());
        // Quiesce over the padded epoch table: lock-free, allocation-free,
        // one isolated line per thread polled (same plane privatization
        // quiescence scans).
        let epochs = system.threads.epochs();
        for id in 0..epochs.len() {
            if id == thread.id {
                continue;
            }
            let slot = epochs.slot(id);
            let mut spin = SpinWait::new();
            while slot.start() != NOT_IN_TX {
                spin.pause();
            }
        }
    }

    /// Releases the gate, ticking the global clock so later transactions see
    /// a commit event for the serial section (the "clock fence").
    pub fn release(&self, clock: &GlobalClock) {
        clock.tick();
        self.flag.store(false, Ordering::SeqCst);
    }

    /// Software engines call this after publishing a start time: if the gate
    /// was taken concurrently, the attempt must back out (exit the published
    /// transaction) and wait, because the gate holder may already have
    /// missed it in the quiescence sweep.
    #[inline]
    pub fn must_back_out(&self) -> bool {
        // Pairs with the fence in `acquire`: the caller's `enter_tx` store
        // must be ordered before this load.
        fence(Ordering::SeqCst);
        self.held()
    }
}

/// Publishes a software attempt's start time while honoring the serial
/// gate: waits for the gate to clear, samples the clock, publishes via
/// [`ThreadCtx::enter_tx`], then re-checks the gate (the attempt's half of
/// the Dekker handshake with [`SerialGate::acquire`]).  Returns the sampled
/// start time; on return the attempt may run — any gate acquirer from here
/// on will quiesce on the published start.
pub fn subscribe_begin(system: &TmSystem, thread: &ThreadCtx) -> u64 {
    loop {
        system.serial.wait_clear();
        let start = system.clock.now();
        thread.enter_tx(start);
        if !system.serial.must_back_out() {
            return start;
        }
        thread.exit_tx();
    }
}

/// One serial (irrevocable) software attempt: direct heap access while
/// holding the [`SerialGate`].
///
/// No ownership records are read or written and no read set is kept — the
/// gate's quiescence guarantees the holder runs alone, which is what makes
/// serial mode a guaranteed-progress path for transactions that keep losing
/// (or that requested irrevocability via `TxCtl::BecomeSerial`).  The undo
/// log exists only so the attempt can still be rolled back when the body
/// requests a deschedule or an explicit abort.
#[derive(Debug)]
pub struct SerialAttempt {
    system: Arc<TmSystem>,
    thread: Arc<ThreadCtx>,
    /// Old values of written locations, one entry per address (first write
    /// wins, as in the eager STM's undo log).
    undo: WriteLog,
    holding: bool,
    mallocs: Vec<(Addr, usize)>,
    frees: Vec<(Addr, usize)>,
}

impl SerialAttempt {
    /// Acquires the gate and begins a serial attempt for `thread`.
    pub fn begin(system: &Arc<TmSystem>, thread: &Arc<ThreadCtx>) -> Self {
        system.serial.acquire(system, thread);
        SerialAttempt {
            system: Arc::clone(system),
            thread: Arc::clone(thread),
            undo: thread.take_write_log(),
            holding: true,
            mallocs: Vec::new(),
            frees: Vec::new(),
        }
    }

    /// Reads the word at `addr` directly.
    #[inline]
    pub fn read(&self, addr: Addr) -> u64 {
        self.system.heap.load(addr)
    }

    /// The pre-transaction value of `addr` if this attempt has written it
    /// (used to substitute undo values into the `Retry` value log).
    #[inline]
    pub fn undo_lookup(&self, addr: Addr) -> Option<u64> {
        self.undo.lookup(addr)
    }

    /// Writes `val` to `addr` in place, logging the old value once.
    pub fn write(&mut self, addr: Addr, val: u64) {
        let old = self.system.heap.load(addr);
        self.undo.record_first(addr, old, || 0);
        self.system.heap.store(addr, val);
    }

    /// Allocates `words` heap words, undone on rollback.  `None` when the
    /// allocator is exhausted (the caller converts that to `OutOfMemory`).
    pub fn alloc(&mut self, words: usize) -> Option<Addr> {
        let addr = self.system.heap.alloc_for(&self.thread, words)?;
        self.mallocs.push((addr, words));
        Some(addr)
    }

    /// Defers freeing `words` words at `addr` until commit.
    pub fn free(&mut self, addr: Addr, words: usize) {
        self.frees.push((addr, words));
    }

    fn note_sizes(&self) {
        TxStats::record_max(&self.thread.stats.write_set_max, self.undo.len() as u64);
    }

    fn release_if_holding(&mut self) {
        if self.holding {
            self.system.serial.release(&self.system.clock);
            self.holding = false;
        }
    }

    /// Rolls the attempt back: undoes writes in reverse order, undoes
    /// allocations, releases the gate.  Safe to call more than once.
    pub fn rollback(&mut self) {
        self.note_sizes();
        for e in self.undo.iter().rev() {
            self.system.heap.store(e.addr, e.val);
        }
        self.undo.clear();
        for &(addr, words) in &self.mallocs {
            self.system.heap.dealloc_for(&self.thread, addr, words);
        }
        self.mallocs.clear();
        self.frees.clear();
        self.release_if_holding();
    }

    /// Commits the attempt: finalizes deferred frees and releases the gate.
    /// Serial commits carry no metadata, so the outcome tells the wake path
    /// to scan conservatively.
    pub fn commit(&mut self) -> CommitOutcome {
        self.note_sizes();
        let was_writer = !self.undo.is_empty();
        self.undo.clear();
        for &(addr, words) in &self.frees {
            self.system.heap.dealloc_for(&self.thread, addr, words);
        }
        self.mallocs.clear();
        self.frees.clear();
        self.release_if_holding();
        CommitOutcome::serial(was_writer)
    }

    /// Rolls back and materialises the wait condition for a deschedule
    /// request, mirroring the instrumented engines' rollback paths.  As the
    /// gate holder runs alone, plain loads are a consistent snapshot.
    pub fn rollback_for_deschedule(
        &mut self,
        spec: WaitSpec,
        common: &mut TxCommon,
    ) -> Result<WaitCondition, TxCtl> {
        match spec {
            WaitSpec::ReadSetValues | WaitSpec::OrigReadLocks => {
                let pairs = common.waitset.drain_pairs();
                self.rollback();
                Ok(WaitCondition::ValuesChanged(pairs))
            }
            WaitSpec::Addrs(addrs) => {
                // Undo writes first so the captured snapshot reflects the
                // pre-transaction state.
                self.note_sizes();
                for e in self.undo.iter().rev() {
                    self.system.heap.store(e.addr, e.val);
                }
                self.undo.clear();
                let pairs = addrs
                    .iter()
                    .map(|&a| (a, self.system.heap.load(a)))
                    .collect();
                self.rollback();
                Ok(WaitCondition::ValuesChanged(pairs))
            }
            WaitSpec::Pred { f, args } => {
                self.rollback();
                Ok(WaitCondition::Pred { f, args })
            }
        }
    }
}

impl Drop for SerialAttempt {
    fn drop(&mut self) {
        // Defensive: never leak the gate if a body panics mid-attempt.
        self.rollback();
        self.thread
            .pool
            .put_write_log(std::mem::take(&mut self.undo));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TmConfig;

    #[test]
    fn gate_round_trip() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        assert!(!system.serial.held());
        system.serial.acquire(&system, &th);
        assert!(system.serial.held());
        let before = system.clock.now();
        system.serial.release(&system.clock);
        assert!(!system.serial.held());
        assert!(system.clock.now() > before, "release must fence the clock");
        assert_eq!(th.stats.snapshot().serial_acquires, 1);
    }

    #[test]
    fn acquire_quiesces_in_flight_software_transactions() {
        let system = TmSystem::new(TmConfig::small());
        let me = system.register_thread();
        let other = system.register_thread();
        other.enter_tx(3);
        let other2 = Arc::clone(&other);
        let system2 = Arc::clone(&system);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            other2.exit_tx();
            system2.heap.store(Addr(1), 1);
        });
        system.serial.acquire(&system, &me);
        assert_eq!(
            system.heap.load(Addr(1)),
            1,
            "acquire returned before the in-flight transaction exited"
        );
        assert!(other.is_doomed(), "acquire dooms in-flight hardware work");
        system.serial.release(&system.clock);
        h.join().unwrap();
    }

    #[test]
    fn serial_attempt_commits_writes_in_place() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        let mut s = SerialAttempt::begin(&system, &th);
        assert!(system.serial.held());
        s.write(Addr(5), 42);
        assert_eq!(s.read(Addr(5)), 42);
        assert_eq!(system.heap.load(Addr(5)), 42, "serial writes are direct");
        let outcome = s.commit();
        assert!(outcome.was_writer);
        assert!(outcome.serial);
        assert!(!outcome.hardware);
        assert!(!system.serial.held(), "commit releases the gate");
        assert_eq!(th.stats.snapshot().write_set_max, 1);
    }

    #[test]
    fn serial_attempt_rollback_restores_and_releases() {
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(7), 9);
        let th = system.register_thread();
        let mut s = SerialAttempt::begin(&system, &th);
        s.write(Addr(7), 100);
        s.write(Addr(7), 200);
        let a = s.alloc(4).unwrap();
        assert!(!a.is_null());
        s.rollback();
        assert_eq!(system.heap.load(Addr(7)), 9, "first-write-wins undo");
        assert!(!system.serial.held());
        // Idempotent.
        s.rollback();
        assert_eq!(system.heap.load(Addr(7)), 9);
    }

    #[test]
    fn serial_attempt_drop_releases_the_gate() {
        let system = TmSystem::new(TmConfig::small());
        let th = system.register_thread();
        {
            let mut s = SerialAttempt::begin(&system, &th);
            s.write(Addr(3), 1);
            // Dropped without commit or rollback (panic path).
        }
        assert!(!system.serial.held());
        assert_eq!(system.heap.load(Addr(3)), 0, "drop rolls the writes back");
    }

    #[test]
    fn deschedule_capture_reflects_pre_transaction_state() {
        use crate::tx::TxMode;
        let system = TmSystem::new(TmConfig::small());
        system.heap.store(Addr(20), 5);
        let th = system.register_thread();
        let mut common = TxCommon::new(Arc::clone(&th), TxMode::Serial, 0);
        let mut s = SerialAttempt::begin(&system, &th);
        s.write(Addr(20), 6);
        let cond = s
            .rollback_for_deschedule(WaitSpec::Addrs(vec![Addr(20)]), &mut common)
            .unwrap();
        match cond {
            WaitCondition::ValuesChanged(pairs) => assert_eq!(pairs, vec![(Addr(20), 5)]),
            other => panic!("unexpected condition {other:?}"),
        }
        assert_eq!(system.heap.load(Addr(20)), 5);
        assert!(!system.serial.held());
    }
}
