//! Transaction control flow: abort reasons, deschedule requests, and wait
//! conditions.
//!
//! Transaction bodies are closures returning [`TxResult`].  Returning
//! `Err(TxCtl::…)` unwinds to the runtime's driver loop, which rolls the
//! transaction back and then acts on the control request: re-execute
//! (abort), switch execution mode (HTM → software), or deschedule the
//! thread via the condition-synchronization layer.
//!
//! This mirrors the paper's structure: `Retry`, `Await` and `WaitPred` all
//! reduce to a rollback followed by `Deschedule(f, p)` (Algorithm 4), where
//! `f(p)` is a predicate over shared state that decides whether the thread
//! should wake.

use crate::addr::Addr;
use crate::orec::OrecTable;
use crate::tx::Tx;

/// Why a transaction attempt failed and must be re-executed.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AbortReason {
    /// A read observed a locked or too-new ownership record.
    ReadConflict,
    /// A write could not acquire an ownership record.
    WriteConflict,
    /// Commit-time validation of the read set failed.
    CommitValidation,
    /// The (simulated) hardware transaction was doomed by a conflicting
    /// access from another processor.
    HwConflict,
    /// The (simulated) hardware transaction overflowed its read or write
    /// capacity.
    HwCapacity,
    /// The fallback lock was acquired by another thread while a hardware
    /// transaction was in flight.
    HwFallbackLock,
    /// The hardware transaction aborted for an environmental reason with no
    /// data cause — an interrupt, an unfriendly instruction, or an abort
    /// manufactured by the fault-injection plane.  Not contention: the
    /// driver re-executes immediately without backing off, though the abort
    /// still spends hardware retry budget (`CmHistory::hw_failures`), so a
    /// persistent spurious-abort storm degrades to software like any other
    /// hardware failure.
    HwSpurious,
    /// The program requested an explicit abort with an 8-bit code
    /// (Intel `xabort`-style); used by the `Restart` baseline and by the
    /// WaitPred fast path discussed in §2.2.6.
    Explicit(u8),
    /// A speculative read-only snapshot attempt issued a write (or an
    /// allocation).  Not a conflict: the driver upgrades the transaction to
    /// a full update attempt and re-executes immediately, without contention
    /// management or backoff.
    ReadOnlyWrite,
    /// The heap allocator was exhausted inside a transaction.
    OutOfMemory,
}

impl AbortReason {
    /// True for aborts caused by data conflicts (as opposed to explicit or
    /// capacity aborts).
    pub fn is_conflict(self) -> bool {
        matches!(
            self,
            AbortReason::ReadConflict
                | AbortReason::WriteConflict
                | AbortReason::CommitValidation
                | AbortReason::HwConflict
        )
    }

    /// True for aborts where retrying immediately is likely to collide with
    /// the same contending thread again, so the driver should back off:
    /// data conflicts plus the fallback-lock abort (another thread holds the
    /// serial lock and will keep dooming speculative attempts until it is
    /// done).
    pub fn is_contention(self) -> bool {
        self.is_conflict() || matches!(self, AbortReason::HwFallbackLock)
    }
}

/// A control-flow request propagated out of a transaction body.
#[derive(Clone, Debug)]
pub enum TxCtl {
    /// Roll back and re-execute the transaction.
    Abort(AbortReason),
    /// Roll back, publish a wait condition, and put the thread to sleep until
    /// a later writer establishes that re-execution may be worthwhile
    /// (the paper's `Deschedule`).
    Deschedule(WaitSpec),
    /// The transaction is running in hardware and needs a facility hardware
    /// cannot provide (escape actions for descheduling, value logging for
    /// `Retry`); roll back and re-execute in a software mode.
    SwitchToSoftware,
    /// The transaction must re-execute serially (irrevocably), e.g. a
    /// hardware transaction that exhausted its retry budget.
    BecomeSerial,
}

/// Result type used by transaction bodies and instrumentation.
pub type TxResult<T> = Result<T, TxCtl>;

/// A user-supplied wake-up predicate: evaluated transactionally over shared
/// state, with the arguments the waiter marshalled into its wait record.
///
/// Returning `Ok(true)` means "the waiter should (re)run".
pub type PredFn = fn(&mut dyn Tx, &[u64]) -> TxResult<bool>;

/// What a descheduling transaction asks to wait for.
///
/// The runtime's rollback path converts a `WaitSpec` into a concrete
/// [`WaitCondition`] (reading memory where necessary) before handing it to
/// the condition-synchronization layer.
#[derive(Clone, Debug)]
pub enum WaitSpec {
    /// Wait until some location in the transaction's logged read set changes
    /// value (`Retry`, Algorithm 5).  The value log lives in
    /// [`crate::tx::TxCommon::waitset`]; the runtime drains it into the
    /// materialised condition's `(addr, value)` pairs, leaving the pooled
    /// log's capacity for the re-executed attempt.
    ReadSetValues,
    /// Wait until one of the given addresses changes value (`Await`,
    /// Algorithm 6).  The runtime captures the pre-transaction values of
    /// these addresses *after* rolling back writes, while still holding its
    /// locks, so the captured snapshot is consistent with the aborted
    /// transaction's view.
    Addrs(Vec<Addr>),
    /// Wait until the predicate returns true (`WaitPred`, Algorithm 7).
    Pred {
        /// The predicate function.
        f: PredFn,
        /// Arguments marshalled by value into the wait record (the paper
        /// cannot reference transactionally-written objects because those
        /// writes are undone).
        args: Vec<u64>,
    },
    /// Wait according to the *original* Retry mechanism (Algorithm 1): the
    /// waiter publishes the ownership records covering its read set and is
    /// woken by any committing writer whose lock set intersects it.
    ///
    /// Only the software runtimes support this; it exists as the
    /// `Retry-Orig` baseline the paper compares against.
    OrigReadLocks,
}

impl WaitSpec {
    /// A short human-readable label for statistics and tracing.
    pub fn kind(&self) -> &'static str {
        match self {
            WaitSpec::ReadSetValues => "retry",
            WaitSpec::Addrs(_) => "await",
            WaitSpec::Pred { .. } => "waitpred",
            WaitSpec::OrigReadLocks => "retry-orig",
        }
    }
}

/// The materialised condition a sleeping thread waits on.
///
/// Writers evaluate this after they commit (`wakeWaiters`, Algorithm 4), as
/// an ordinary read-only transaction over shared memory — which is what makes
/// the mechanism HTM-friendly.
#[derive(Clone, Debug)]
pub enum WaitCondition {
    /// Wake when any `(addr, value)` pair no longer matches memory
    /// (`findChanges`, Algorithm 5).  Immune to silent stores: rewriting the
    /// same value does not wake the waiter.
    ValuesChanged(Vec<(Addr, u64)>),
    /// Wake when the predicate evaluates to true.
    Pred {
        /// The predicate function.
        f: PredFn,
        /// Arguments captured at deschedule time.
        args: Vec<u64>,
    },
}

impl WaitCondition {
    /// Evaluates the condition inside the given transaction; `Ok(true)` means
    /// the waiter should be woken.
    pub fn should_wake(&self, tx: &mut dyn Tx) -> TxResult<bool> {
        match self {
            WaitCondition::ValuesChanged(pairs) => {
                for &(addr, val) in pairs {
                    if tx.read(addr)? != val {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            WaitCondition::Pred { f, args } => f(tx, args),
        }
    }

    /// A short human-readable label for statistics and tracing.
    pub fn kind(&self) -> &'static str {
        match self {
            WaitCondition::ValuesChanged(_) => "values",
            WaitCondition::Pred { .. } => "pred",
        }
    }

    /// Number of locations / arguments tracked (used by the ablation bench).
    pub fn tracked(&self) -> usize {
        match self {
            WaitCondition::ValuesChanged(pairs) => pairs.len(),
            WaitCondition::Pred { args, .. } => args.len(),
        }
    }

    /// The ownership-record stripes covering every address whose change
    /// could establish this condition, sorted and deduplicated.  Empty for
    /// predicate conditions, which name no addresses and therefore go to the
    /// waiter registry's unindexed shard (scanned by every writer).
    ///
    /// This is the indexing side of the no-lost-wakeups invariant: the
    /// waiter registers under exactly these stripes, and committing writers
    /// scan (a superset of) the stripes they wrote through the same hash.
    pub fn stripes(&self, orecs: &OrecTable) -> Vec<usize> {
        match self {
            WaitCondition::ValuesChanged(pairs) => {
                let mut stripes: Vec<usize> = pairs
                    .iter()
                    .map(|&(addr, _)| orecs.index_for(addr))
                    .collect();
                stripes.sort_unstable();
                stripes.dedup();
                stripes
            }
            WaitCondition::Pred { .. } => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_classification() {
        assert!(AbortReason::ReadConflict.is_conflict());
        assert!(AbortReason::CommitValidation.is_conflict());
        assert!(!AbortReason::Explicit(3).is_conflict());
        assert!(!AbortReason::HwCapacity.is_conflict());
        assert!(!AbortReason::HwSpurious.is_conflict());
        assert!(!AbortReason::ReadOnlyWrite.is_conflict());
    }

    #[test]
    fn waitspec_kinds() {
        assert_eq!(WaitSpec::ReadSetValues.kind(), "retry");
        assert_eq!(WaitSpec::Addrs(vec![]).kind(), "await");
        fn p(_: &mut dyn Tx, _: &[u64]) -> TxResult<bool> {
            Ok(true)
        }
        assert_eq!(WaitSpec::Pred { f: p, args: vec![] }.kind(), "waitpred");
    }

    #[test]
    fn waitcondition_tracked_counts() {
        let c = WaitCondition::ValuesChanged(vec![(Addr(1), 0), (Addr(2), 5)]);
        assert_eq!(c.tracked(), 2);
        assert_eq!(c.kind(), "values");
    }

    #[test]
    fn contention_classification_includes_fallback_lock() {
        assert!(AbortReason::HwFallbackLock.is_contention());
        assert!(!AbortReason::HwFallbackLock.is_conflict());
        assert!(AbortReason::WriteConflict.is_contention());
        assert!(!AbortReason::HwCapacity.is_contention());
        assert!(!AbortReason::HwSpurious.is_contention());
        assert!(!AbortReason::Explicit(1).is_contention());
        assert!(!AbortReason::ReadOnlyWrite.is_contention());
    }

    #[test]
    fn condition_stripes_follow_the_orec_hash() {
        let orecs = OrecTable::new(256);
        let c = WaitCondition::ValuesChanged(vec![(Addr(10), 0), (Addr(99), 5), (Addr(10), 7)]);
        let stripes = c.stripes(&orecs);
        let mut expected = vec![orecs.index_for(Addr(10)), orecs.index_for(Addr(99))];
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(stripes, expected);

        fn p(_: &mut dyn Tx, _: &[u64]) -> TxResult<bool> {
            Ok(true)
        }
        let pred = WaitCondition::Pred { f: p, args: vec![] };
        assert!(pred.stripes(&orecs).is_empty(), "predicates are unindexed");
    }
}
