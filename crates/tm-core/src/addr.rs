//! Word addresses within the transactional heap.
//!
//! The paper's mechanisms operate on raw machine addresses; our heap is a
//! contiguous array of 64-bit words, so an address is simply an index into
//! that array.  Hardware-transaction conflict detection happens at the
//! granularity of a cache line, which for a 64-byte line holds
//! [`LINE_WORDS`] = 8 words.

/// Number of 64-bit words per simulated cache line (64-byte lines).
pub const LINE_WORDS: usize = 8;

/// The null address.  Word 0 of the heap is reserved and never handed out by
/// the allocator, so `Addr::NULL` can be used as a sentinel.
pub const NULL_ADDR: Addr = Addr(0);

/// A word address inside a [`crate::heap::TmHeap`].
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Addr(pub usize);

impl Addr {
    /// The reserved null address.
    pub const NULL: Addr = NULL_ADDR;

    /// Returns the raw word index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }

    /// Returns the simulated cache line this word belongs to.
    #[inline]
    pub fn line(self) -> LineId {
        LineId(self.0 / LINE_WORDS)
    }

    /// Returns the address `offset` words after this one.
    #[inline]
    pub fn offset(self, offset: usize) -> Addr {
        Addr(self.0 + offset)
    }

    /// True if this is the reserved null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// Identifier of a simulated cache line (used by the HTM simulator's conflict
/// detection and capacity accounting).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LineId(pub usize);

impl LineId {
    /// Returns the first word address of this line.
    #[inline]
    pub fn first_word(self) -> Addr {
        Addr(self.0 * LINE_WORDS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_word_zero() {
        assert!(Addr::NULL.is_null());
        assert_eq!(Addr::NULL.index(), 0);
        assert!(!Addr(1).is_null());
    }

    #[test]
    fn line_mapping_groups_adjacent_words() {
        assert_eq!(Addr(0).line(), Addr(LINE_WORDS - 1).line());
        assert_ne!(Addr(0).line(), Addr(LINE_WORDS).line());
        assert_eq!(Addr(LINE_WORDS * 3 + 2).line(), LineId(3));
    }

    #[test]
    fn line_first_word_round_trips() {
        for i in 0..64 {
            let a = Addr(i);
            let line = a.line();
            assert!(line.first_word().index() <= a.index());
            assert!(a.index() < line.first_word().index() + LINE_WORDS);
        }
    }

    #[test]
    fn offset_advances_index() {
        assert_eq!(Addr(10).offset(5), Addr(15));
        assert_eq!(Addr(10).offset(0), Addr(10));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", Addr(42)), "@42");
    }
}
