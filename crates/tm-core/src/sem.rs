//! A counting semaphore used to park and wake descheduled threads.
//!
//! The paper uses per-thread semaphores (`sem.wait()` / `sem.signal()`,
//! Algorithms 1 and 4).  Posting before the waiter blocks must not lose the
//! wake-up, which a plain condition variable would; a counting semaphore has
//! exactly the required memory.

use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A counting semaphore built from a mutex and a condition variable.
#[derive(Debug, Default)]
pub struct Semaphore {
    count: Mutex<u64>,
    cv: Condvar,
}

impl Semaphore {
    /// Creates a semaphore with an initial count of zero.
    pub fn new() -> Self {
        Semaphore::default()
    }

    /// Blocks until the count is positive, then decrements it.
    pub fn wait(&self) {
        let mut count = self.count.lock().unwrap();
        while *count == 0 {
            count = self.cv.wait(count).unwrap();
        }
        *count -= 1;
    }

    /// Like [`Semaphore::wait`], but gives up after `timeout`.
    ///
    /// Returns `true` if a permit was consumed.  Used defensively by stress
    /// tests so a lost-wake-up bug fails the test instead of hanging it.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut count = self.count.lock().unwrap();
        let deadline = std::time::Instant::now() + timeout;
        while *count == 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, res) = self.cv.wait_timeout(count, deadline - now).unwrap();
            count = guard;
            if res.timed_out() && *count == 0 {
                return false;
            }
        }
        *count -= 1;
        true
    }

    /// Like [`Semaphore::wait`], but gives up once `deadline` passes.
    ///
    /// Returns `true` if a permit was consumed.  This is the sleeping side
    /// of timed descheduling (`deschedule_until`): the sleeper bounds its
    /// own block, so timeout delivery never depends on another thread
    /// polling the timer wheel.  A deadline already in the past degrades to
    /// [`Semaphore::try_wait`].
    pub fn wait_deadline(&self, deadline: Instant) -> bool {
        let now = Instant::now();
        if deadline <= now {
            return self.try_wait();
        }
        self.wait_timeout(deadline - now)
    }

    /// Increments the count and wakes one blocked waiter (the paper's
    /// `sem.signal()`).
    pub fn post(&self) {
        let mut count = self.count.lock().unwrap();
        *count += 1;
        drop(count);
        self.cv.notify_one();
    }

    /// Consumes a permit without blocking, if one is available.
    pub fn try_wait(&self) -> bool {
        let mut count = self.count.lock().unwrap();
        if *count > 0 {
            *count -= 1;
            true
        } else {
            false
        }
    }

    /// Current number of stored permits (for tests).
    pub fn permits(&self) -> u64 {
        *self.count.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn post_then_wait_does_not_block() {
        let s = Semaphore::new();
        s.post();
        s.wait();
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn try_wait_only_succeeds_with_permit() {
        let s = Semaphore::new();
        assert!(!s.try_wait());
        s.post();
        assert!(s.try_wait());
        assert!(!s.try_wait());
    }

    #[test]
    fn wait_timeout_expires_without_post() {
        let s = Semaphore::new();
        assert!(!s.wait_timeout(Duration::from_millis(20)));
    }

    #[test]
    fn wait_timeout_consumes_posted_permit() {
        let s = Semaphore::new();
        s.post();
        assert!(s.wait_timeout(Duration::from_millis(20)));
        assert_eq!(s.permits(), 0);
    }

    #[test]
    fn wait_deadline_expires_and_consumes_like_wait_timeout() {
        let s = Semaphore::new();
        assert!(!s.wait_deadline(Instant::now() + Duration::from_millis(10)));
        s.post();
        assert!(s.wait_deadline(Instant::now() + Duration::from_millis(10)));
        assert_eq!(s.permits(), 0);
        // A deadline already in the past is a non-blocking try_wait.
        assert!(!s.wait_deadline(Instant::now() - Duration::from_millis(1)));
        s.post();
        assert!(s.wait_deadline(Instant::now()));
    }

    #[test]
    fn permits_accumulate() {
        let s = Semaphore::new();
        s.post();
        s.post();
        s.post();
        assert_eq!(s.permits(), 3);
        s.wait();
        s.wait();
        assert_eq!(s.permits(), 1);
    }

    #[test]
    fn wakes_a_blocked_thread() {
        let s = Arc::new(Semaphore::new());
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.wait();
            42
        });
        // Give the waiter time to block, then wake it.
        std::thread::sleep(Duration::from_millis(10));
        s.post();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn many_posts_wake_many_waiters() {
        let s = Arc::new(Semaphore::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.wait_timeout(Duration::from_secs(5))
            }));
        }
        for _ in 0..4 {
            s.post();
        }
        for h in handles {
            assert!(h.join().unwrap());
        }
    }
}
