//! The [`TxEngine`] trait: the narrow interface a transaction runtime must
//! implement to plug into the shared driver loop ([`super::run`]).
//!
//! A runtime supplies begin/commit/rollback plus the one
//! condition-synchronization hook that genuinely differs between designs —
//! how a wait condition is materialised during rollback — and inherits the
//! whole retry/abort/deschedule state machine.  The hooks with defaults
//! encode the software-STM behaviour; the HTM simulator overrides them to
//! express its speculative/serial mode ladder.

use std::sync::Arc;

use crate::ctl::{TxCtl, WaitCondition, WaitSpec};
use crate::runtime::TmRuntime;
use crate::thread::ThreadCtx;
use crate::tx::{Tx, TxCommon, TxMode};
use crate::waitlist::WakeSet;

/// What a successful commit tells the driver loop.
///
/// One shape serves every runtime: the software STMs report the ownership
/// records they locked (feeding both the `Retry-Orig` intersection test and
/// the targeted `wakeWaiters` scan), while hardware commits — whose write
/// sets are architecturally invisible — report the stripes covered by their
/// committed cache lines, which the simulator *can* observe.
#[derive(Debug, Clone, Default)]
pub struct CommitOutcome {
    /// True if the transaction performed any write.
    pub was_writer: bool,
    /// True if the attempt committed in (simulated) hardware.
    pub hardware: bool,
    /// True if the attempt committed while holding the system's
    /// [`crate::serial::SerialGate`].  Serial commits carry no write-set
    /// metadata, so engines answer [`TxEngine::committed_stripes`] with the
    /// conservative scan-everything set for them.
    pub serial: bool,
    /// Ownership-record stripe indices covering the commit's write set: the
    /// lock set for software commits, the stripes of the written cache lines
    /// (a superset of the written words' stripes) for hardware commits.
    /// Empty for read-only and serial commits.
    pub written_orecs: Vec<usize>,
    /// The commit timestamp (global-clock value); 0 when no clock was
    /// ticked (read-only and hardware commits).
    pub commit_time: u64,
}

impl CommitOutcome {
    /// A read-only commit (no wake-ups required).
    pub fn read_only() -> Self {
        CommitOutcome::default()
    }

    /// A software writer commit with its lock set and timestamp.
    pub fn software_writer(written_orecs: Vec<usize>, commit_time: u64) -> Self {
        CommitOutcome {
            was_writer: true,
            hardware: false,
            serial: false,
            written_orecs,
            commit_time,
        }
    }

    /// A (simulated) hardware commit.  `line_stripes` are the ownership-
    /// record stripes covered by the committed cache lines (empty for
    /// read-only commits), which the targeted wake path uses in place of the
    /// architecturally invisible word-level write set.
    pub fn hardware(was_writer: bool, line_stripes: Vec<usize>) -> Self {
        CommitOutcome {
            was_writer,
            hardware: true,
            serial: false,
            written_orecs: line_stripes,
            commit_time: 0,
        }
    }

    /// A serial-mode commit (software-visible, but no metadata at all: the
    /// wake path must scan conservatively).
    pub fn serial(was_writer: bool) -> Self {
        CommitOutcome {
            was_writer,
            hardware: false,
            serial: true,
            written_orecs: Vec::new(),
            commit_time: 0,
        }
    }
}

/// The engine interface between a transaction runtime and the shared driver
/// loop.
///
/// Implementations are thin: they construct attempts and expose the
/// per-design commit/rollback/materialise primitives.  Everything that used
/// to be copied between the three runtime crates — re-execution, abort-reason
/// dispatch, `Retry` value-log restarts, the deschedule hand-off and
/// post-commit `wakeWaiters` — lives in [`super::run`] instead.
pub trait TxEngine: TmRuntime + Sized {
    /// The attempt descriptor; may borrow the engine (as the HTM simulator's
    /// does).
    type Tx<'eng>: Tx
    where
        Self: 'eng;

    /// Begins a fresh attempt with the given per-attempt metadata.
    fn begin(&self, common: TxCommon) -> Self::Tx<'_>;

    /// Attempts to commit.  On `Err` the driver rolls the attempt back and
    /// dispatches on the control request.
    fn try_commit(&self, tx: &mut Self::Tx<'_>) -> Result<CommitOutcome, TxCtl>;

    /// Rolls the attempt back completely.
    fn rollback(&self, tx: &mut Self::Tx<'_>);

    /// Rolls the attempt back *and* captures the condition the thread wants
    /// to sleep on, consistently with the aborted attempt's view of memory.
    ///
    /// `Err` means the condition could not be captured consistently; the
    /// attempt is already rolled back and the driver simply re-executes.
    fn materialise_wait(
        &self,
        tx: &mut Self::Tx<'_>,
        spec: WaitSpec,
    ) -> Result<WaitCondition, TxCtl>;

    /// The execution mode of the first attempt.
    fn initial_mode(&self) -> TxMode {
        TxMode::Software
    }

    /// True while `tx` is a speculative (hardware) attempt.
    fn attempt_is_hardware(&self, tx: &Self::Tx<'_>) -> bool {
        let _ = tx;
        false
    }

    /// Whether this engine supports the lock-metadata `Retry-Orig` baseline
    /// (requires STM ownership records; the HTM simulator does not).
    fn supports_orig_retry(&self) -> bool {
        false
    }

    /// The full `Retry-Orig` deschedule path (Algorithm 1): roll `tx` back,
    /// then atomically validate the read set against the waiting list and
    /// sleep if registration succeeded.
    ///
    /// Only called when [`TxEngine::supports_orig_retry`] returns true.
    fn deschedule_orig(&self, thread: &Arc<ThreadCtx>, tx: &mut Self::Tx<'_>) {
        let _ = (thread, tx);
        unreachable!("deschedule_orig called on an engine without Retry-Orig support");
    }

    /// The mode to re-execute in after returning from a deschedule (whether
    /// the thread slept or skipped the sleep).  Hardware engines restart
    /// speculatively; software engines drop back to plain instrumentation.
    fn mode_after_wake(&self) -> TxMode {
        TxMode::Software
    }

    /// The mode to re-execute in after a `SwitchToSoftware` request (or a
    /// hardware attempt that needs software facilities, e.g. escape actions
    /// for descheduling) in `current` mode.  Software engines just
    /// re-execute; the HTM simulator escalates to the serial fallback; the
    /// hybrid runtime drops from hardware to its instrumented STM path.
    fn mode_for_software_switch(&self, current: TxMode) -> TxMode {
        current
    }

    /// One rung up this engine's mode ladder from `current`, taken when the
    /// contention policy requests escalation
    /// ([`crate::policy::CmAction::escalate`]).
    ///
    /// The default — and every software engine's answer — is the
    /// guaranteed-progress [`TxMode::Serial`] path behind the system's
    /// [`crate::serial::SerialGate`]; the hybrid runtime interposes its
    /// software STM rung first (hardware → software → serial).
    fn escalated_mode(&self, current: TxMode) -> TxMode {
        let _ = current;
        TxMode::Serial
    }

    /// The waiter-registry shards a committed writer must scan: the stripes
    /// its commit may have changed, or [`WakeSet::All`] when the write set
    /// is unknown.
    ///
    /// The default is the conservative scan-everything answer, which is
    /// always correct; engines that know their write set (the software STMs
    /// via their lock sets, hardware commits via their written cache lines)
    /// override this so `wakeWaiters` only evaluates sleepers whose
    /// conditions could actually have been established.  An override must
    /// never under-report: returning a stripe set that misses a written
    /// address loses wakeups.
    fn committed_stripes(&self, outcome: &CommitOutcome) -> WakeSet {
        let _ = outcome;
        WakeSet::All
    }

    /// Post-commit hook for writer transactions, running after the generic
    /// `wakeWaiters` scan.  The software STMs use it to wake `Retry-Orig`
    /// sleepers whose read locks intersect the commit's write set.
    fn after_writer_commit(&self, thread: &Arc<ThreadCtx>, outcome: &CommitOutcome) {
        let _ = (thread, outcome);
    }
}
