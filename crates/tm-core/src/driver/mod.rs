//! The unified transaction driver: one loop, many engines.
//!
//! The paper's three runtime configurations (eager STM, lazy STM, simulated
//! HTM) differ in how an individual attempt reads, writes and commits — but
//! the *orchestration* around attempts is identical: re-execute on abort,
//! back off on conflicts, restart in value-logging mode when `Retry` needs a
//! waitset, roll back and hand off to `Deschedule` when a precondition fails,
//! and run `wakeWaiters` after every writer commit (Algorithm 4).
//!
//! Re-execution is also where the access-set pool pays off: every attempt's
//! logs (read set, write log, lock/line sets, the `Retry` value log in
//! [`crate::tx::TxCommon::waitset`]) are pooled [`crate::access`] containers
//! drawn from the thread's [`crate::access::LogPool`], so an aborted
//! attempt's capacity is handed straight to its re-execution instead of
//! being reallocated.
//!
//! This module owns that orchestration:
//!
//! * [`TxEngine`] — the narrow per-runtime interface (begin / commit /
//!   rollback / materialise_wait plus a few mode-policy hooks, including
//!   [`TxEngine::committed_stripes`], which tells the wake path which
//!   waiter-registry shards a commit must scan),
//! * [`run`] — the single generic driver loop,
//! * [`deschedule`] / [`deschedule_until`] / [`wake_waiters_matching`] — the
//!   paper's parking and waking protocol (unbounded and deadline-bounded),
//!   sharded by ownership-record stripe, called from the loop and
//!   re-exported through `condsync`.
//!
//! Timed waits thread two extra pieces of state through the loop: the
//! deadline a timed construct stashed in [`crate::tx::TxCommon::wait_deadline`]
//! is forwarded to [`deschedule_until`], and the resulting
//! [`crate::waitlist::WakeReason`] is handed to every subsequent attempt via
//! [`crate::tx::TxCommon::wake_reason`], so the re-executed body can observe
//! a timeout or cancellation.
//!
//! Runtime crates implement [`TxEngine`] and forward their public
//! [`crate::TmRuntime`] / [`crate::TmRt`] entry points to [`run`]; adding a
//! fourth runtime (e.g. a hybrid HTM/STM path) means implementing the engine
//! trait, not re-writing the protocol.

mod engine;
mod run;
mod wake;

pub use engine::{CommitOutcome, TxEngine};
pub use run::{run, run_kind};
pub use wake::{
    deschedule, deschedule_until, poll_timers, wake_waiters, wake_waiters_matching,
    DescheduleOutcome,
};
