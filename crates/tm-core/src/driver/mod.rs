//! The unified transaction driver: one loop, many engines.
//!
//! The paper's three runtime configurations (eager STM, lazy STM, simulated
//! HTM) differ in how an individual attempt reads, writes and commits — but
//! the *orchestration* around attempts is identical: re-execute on abort,
//! back off on conflicts, restart in value-logging mode when `Retry` needs a
//! waitset, roll back and hand off to `Deschedule` when a precondition fails,
//! and run `wakeWaiters` after every writer commit (Algorithm 4).
//!
//! This module owns that orchestration:
//!
//! * [`TxEngine`] — the narrow per-runtime interface (begin / commit /
//!   rollback / materialise_wait plus a few mode-policy hooks, including
//!   [`TxEngine::committed_stripes`], which tells the wake path which
//!   waiter-registry shards a commit must scan),
//! * [`run`] — the single generic driver loop,
//! * [`deschedule`] / [`wake_waiters_matching`] — the paper's parking and
//!   waking protocol, sharded by ownership-record stripe, called from the
//!   loop and re-exported through `condsync`.
//!
//! Runtime crates implement [`TxEngine`] and forward their public
//! [`crate::TmRuntime`] / [`crate::TmRt`] entry points to [`run`]; adding a
//! fourth runtime (e.g. a hybrid HTM/STM path) means implementing the engine
//! trait, not re-writing the protocol.

mod engine;
mod run;
mod wake;

pub use engine::{CommitOutcome, TxEngine};
pub use run::run;
pub use wake::{deschedule, wake_waiters, wake_waiters_matching, DescheduleOutcome};
